//! Bounded-memory smoke for the sharded intersection engine.
//!
//! Runs one sharded two-party intersection at a configurable scale under
//! the ring trace sink, then checks everything the sharding layer
//! promises at once:
//!
//!   * correctness — the receiver's intersection equals the clear-text
//!     answer of the generated workload;
//!   * §6.1 accounting — the per-bucket `*_bucket_done` events are
//!     assembled into `BucketTrace`s and held against
//!     `reconcile_sharded` together with the counted wire traffic;
//!   * bounded memory — with `--rss-cap-kb` the process peak RSS
//!     (`VmHWM`) must stay under the cap, and with `--require-spill` the
//!     external sorter must have genuinely hit disk (`runs_spilled > 0`
//!     in the engines' `spill_done` events), so the run priced the spill
//!     path rather than an in-memory sort.
//!
//! Prints a one-object JSON report to stdout; exits nonzero on any
//! failed check. `tools/verify.sh` runs this as its bounded-memory
//! smoke step.
//!
//! Usage:
//!   shard_smoke [--elements N] [--shards B] [--mem-budget BYTES]
//!               [--spill-dir PATH] [--group-bits BITS]
//!               [--rss-cap-kb KB] [--require-spill]

use std::sync::Arc;
use std::time::Instant;

use minshare::pipeline::PipelineConfig;
use minshare::prelude::*;
use minshare_bench::{bench_group, overlapping_sets};
use minshare_costmodel::reconcile::{reconcile_sharded, BucketTrace};
use minshare_costmodel::section6::Protocol;
use minshare_crypto::pool::EncryptPool;
use minshare_trace::sink::RingSink;
use minshare_trace::{Event, TraceSink, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Peak resident set of this process in KiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn field(event: &Event, name: &str) -> u64 {
    event
        .fields
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v.as_u64())
        .unwrap_or(0)
}

struct Opts {
    elements: usize,
    shards: u32,
    mem_budget: usize,
    spill_dir: Option<std::path::PathBuf>,
    group_bits: u64,
    rss_cap_kb: Option<u64>,
    require_spill: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        elements: 1_000,
        shards: 8,
        mem_budget: 1 << 16,
        spill_dir: None,
        group_bits: 256,
        rss_cap_kb: None,
        require_spill: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--elements" => {
                opts.elements = value("--elements")?
                    .parse()
                    .map_err(|_| "--elements expects a number".to_string())?
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards expects a number".to_string())?
            }
            "--mem-budget" => {
                opts.mem_budget = value("--mem-budget")?
                    .parse()
                    .map_err(|_| "--mem-budget expects bytes".to_string())?
            }
            "--spill-dir" => opts.spill_dir = Some(value("--spill-dir")?.into()),
            "--group-bits" => {
                opts.group_bits = value("--group-bits")?
                    .parse()
                    .map_err(|_| "--group-bits expects a number".to_string())?
            }
            "--rss-cap-kb" => {
                opts.rss_cap_kb = Some(
                    value("--rss-cap-kb")?
                        .parse()
                        .map_err(|_| "--rss-cap-kb expects KiB".to_string())?,
                )
            }
            "--require-spill" => opts.require_spill = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Opts) -> i32 {
    let group = bench_group(opts.group_bits);
    let n = opts.elements;
    let overlap = n / 2;
    let (vs, vr) = overlapping_sets(n, n, overlap);
    let pool = EncryptPool::new(4);
    let pipe = PipelineConfig::calibrated(&group, &pool);
    let shard_cfg = ShardConfig {
        shards: opts.shards,
        mem_budget: opts.mem_budget,
        spill_dir: opts.spill_dir.clone(),
        ..ShardConfig::default()
    };

    // One ring per party: per-thread tracer installation means streams
    // never interleave. Generously sized — the engines also emit pool,
    // net and stats events, and the one-shot `spill_done` summary lands
    // *before* the per-bucket stream, so it must survive eviction.
    let capacity = 1 << 16;
    let s_ring = Arc::new(RingSink::new(capacity));
    let r_ring = Arc::new(RingSink::new(capacity));

    let start = Instant::now();
    let result = run_two_party(
        |t| {
            let _trace =
                minshare_trace::install(Tracer::to_sink(Arc::clone(&s_ring) as Arc<dyn TraceSink>));
            let mut rng = StdRng::seed_from_u64(7);
            shard::run_intersection_sender(t, &group, &vs, &mut rng, &pool, pipe, &shard_cfg)
        },
        |t| {
            let _trace =
                minshare_trace::install(Tracer::to_sink(Arc::clone(&r_ring) as Arc<dyn TraceSink>));
            let mut rng = StdRng::seed_from_u64(8);
            shard::run_intersection_receiver(t, &group, &vr, &mut rng, &pool, pipe, &shard_cfg)
        },
    );
    let wall_s = start.elapsed().as_secs_f64();
    let run = match result {
        Ok(run) => run,
        Err(err) => {
            eprintln!("shard_smoke: protocol run failed: {err}");
            return 1;
        }
    };

    let mut failures: Vec<String> = Vec::new();

    // Correctness against the clear-text answer of the workload.
    let vr_set: std::collections::BTreeSet<&Vec<u8>> = vr.iter().collect();
    let mut expected: Vec<Vec<u8>> = vs
        .iter()
        .filter(|v| vr_set.contains(v))
        .cloned()
        .collect();
    expected.sort();
    expected.dedup();
    if run.receiver.intersection != expected {
        failures.push(format!(
            "intersection mismatch: got {} values, expected {}",
            run.receiver.intersection.len(),
            expected.len()
        ));
    }

    // Assemble per-bucket traces from both parties' event streams. The
    // receiver's `own_items` is `|V_R ∩ bucket|`, the sender's is
    // `|V_S ∩ bucket|`; the bucket's total Ce is the sum of both sides.
    let buckets = shard_cfg.effective_shards() as usize;
    let mut traces = vec![BucketTrace { vs: 0, vr: 0, ce: 0 }; buckets];
    let mut spill_runs = 0u64;
    let mut spill_bytes = 0u64;
    for event in s_ring.snapshot().iter().chain(r_ring.snapshot().iter()) {
        if event.scope != "shard" {
            continue;
        }
        match event.name {
            "sender_bucket_done" | "receiver_bucket_done" => {
                let b = field(event, "bucket") as usize;
                let Some(trace) = traces.get_mut(b) else {
                    failures.push(format!("event for out-of-range bucket {b}"));
                    continue;
                };
                if event.name == "sender_bucket_done" {
                    trace.vs += field(event, "own_items");
                } else {
                    trace.vr += field(event, "own_items");
                }
                trace.ce += field(event, "ce");
            }
            "spill_done" => {
                spill_runs += field(event, "runs_spilled");
                spill_bytes += field(event, "bytes_spilled");
            }
            _ => {}
        }
    }

    // Hold the traces and the counted traffic against §6.1. With
    // `--shards 1` the engines delegate to the unsharded path and emit
    // no bucket events; the single implicit bucket is the whole run.
    let k_bits = 8 * group.codeword_bytes() as u64;
    let measured_bytes =
        run.sender_traffic.bytes_sent() + run.receiver_traffic.bytes_sent();
    let frames = run.sender_traffic.frames_sent() + run.receiver_traffic.frames_sent();
    let reconciliation = if buckets > 1 {
        let r = reconcile_sharded(
            Protocol::Intersection,
            k_bits,
            0,
            &traces,
            measured_bytes,
            frames,
        );
        if !r.ok() {
            failures.push(format!(
                "sharded reconciliation failed: ce {}/{} bytes {} over {} frames",
                r.total.run.measured_ce, r.total.predicted_ce, measured_bytes, frames
            ));
        }
        Some(r)
    } else {
        None
    };

    if opts.require_spill && spill_runs == 0 {
        failures.push(format!(
            "spill never engaged (mem budget {} bytes, {} elements) — \
             the run priced an in-memory sort",
            opts.mem_budget, n
        ));
    }

    let peak_kb = vm_hwm_kb();
    if let (Some(cap), Some(peak)) = (opts.rss_cap_kb, peak_kb) {
        if peak > cap {
            failures.push(format!("peak RSS {peak} KiB exceeds cap {cap} KiB"));
        }
    }

    println!("{{");
    println!("  \"elements\": {n},");
    println!("  \"shards\": {},", shard_cfg.effective_shards());
    println!("  \"mem_budget_bytes\": {},", opts.mem_budget);
    println!("  \"group_bits\": {},", opts.group_bits);
    println!("  \"wall_s\": {wall_s:.3},");
    println!("  \"intersection\": {},", run.receiver.intersection.len());
    println!("  \"wire_bytes\": {measured_bytes},");
    println!("  \"frames\": {frames},");
    println!("  \"spill_runs\": {spill_runs},");
    println!("  \"spill_bytes\": {spill_bytes},");
    println!(
        "  \"vm_hwm_kb\": {},",
        peak_kb.map_or("null".to_string(), |kb| kb.to_string())
    );
    match &reconciliation {
        Some(r) => println!("  \"reconciliation\": {},", r.to_json()),
        None => println!("  \"reconciliation\": null,"),
    }
    println!("  \"ok\": {}", failures.is_empty());
    println!("}}");

    for f in &failures {
        eprintln!("shard_smoke: FAIL: {f}");
    }
    if failures.is_empty() {
        eprintln!(
            "shard_smoke: ok — {n} elements, {} shards, {spill_runs} spilled runs, \
             peak {} KiB",
            shard_cfg.effective_shards(),
            peak_kb.unwrap_or(0)
        );
        0
    } else {
        1
    }
}

fn main() {
    match parse_opts() {
        Ok(opts) => std::process::exit(run(&opts)),
        Err(err) => {
            eprintln!("shard_smoke: {err}");
            std::process::exit(2);
        }
    }
}
