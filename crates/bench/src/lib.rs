//! # minshare-bench
//!
//! Benchmark support: host calibration of the paper's cost units and
//! shared workload generators used by both the criterion benches and the
//! `paper_tables` binary (which regenerates every table and figure of
//! the paper — see DESIGN.md's experiment index E1–E17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use minshare_bignum::random::random_below;
use minshare_bignum::UBig;
use minshare_crypto::QrGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measures `Ce` on this machine: seconds per full-width modular
/// exponentiation in the well-known safe-prime group of `bits` bits
/// (experiment E11; the paper's reference is 0.02 s at 1024 bits on a
/// 2001 Pentium III).
pub fn measure_ce(bits: u64, iterations: u32) -> f64 {
    let group = QrGroup::well_known(bits).expect("well-known group size");
    let mut rng = StdRng::seed_from_u64(0xce);
    let base = group.sample_element(&mut rng);
    let exp = random_below(&mut rng, group.order());
    // Warm-up.
    let mut sink = group.pow(&base, &exp);
    let start = Instant::now();
    for _ in 0..iterations {
        sink = group.pow(&sink, &exp);
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Keep the result alive so the loop cannot be optimized out.
    assert!(!sink.is_zero());
    elapsed / iterations as f64
}

/// Measures the per-gate garbled-evaluation cost `Cr` (seconds):
/// garbles and evaluates an equality circuit and divides by gate count.
pub fn measure_cr(iterations: u32) -> f64 {
    use minshare_circuits::comparator::{equality_circuit, to_bits};
    use minshare_circuits::garble::{evaluate, garble, Label};
    let w = 32;
    let circuit = equality_circuit(w);
    let mut rng = StdRng::seed_from_u64(0xc4);
    let garbling = garble(&circuit, &mut rng);
    let mut input = to_bits(0xdead_beef, w);
    input.extend(to_bits(0xdead_beef, w));
    let labels: Vec<Label> = input
        .iter()
        .enumerate()
        .map(|(i, &v)| garbling.input_label(i, v))
        .collect();
    let start = Instant::now();
    let mut acc = false;
    for _ in 0..iterations {
        let out = evaluate(&circuit, &garbling.tables, &labels).expect("valid garbling");
        acc ^= out[0];
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    // The paper charges 2 PRF calls per gate; we report per-gate seconds.
    elapsed / iterations as f64 / circuit.gate_count() as f64
}

/// Generates `n` distinct byte values, `overlap` of which are shared with
/// the returned second set of `m` values (workload generator for the
/// protocol benches).
pub fn overlapping_sets(n: usize, m: usize, overlap: usize) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    assert!(overlap <= n.min(m));
    let value = |tag: &str, i: usize| format!("{tag}-{i}").into_bytes();
    let mut vs: Vec<Vec<u8>> = (0..overlap).map(|i| value("shared", i)).collect();
    vs.extend((0..n - overlap).map(|i| value("s-only", i)));
    let mut vr: Vec<Vec<u8>> = (0..overlap).map(|i| value("shared", i)).collect();
    vr.extend((0..m - overlap).map(|i| value("r-only", i)));
    (vs, vr)
}

/// A deterministic small group for protocol benchmarks where the group
/// size is not the variable under test.
pub fn bench_group(bits: u64) -> QrGroup {
    match bits {
        768 | 1024 | 1536 | 2048 => QrGroup::well_known(bits).expect("well-known"),
        _ => {
            let mut rng = StdRng::seed_from_u64(0xbe4c);
            QrGroup::generate(&mut rng, bits).expect("generated group")
        }
    }
}

/// Pretty-prints seconds-per-op with its ops-per-hour equivalent.
pub fn describe_rate(seconds_per_op: f64) -> String {
    format!(
        "{:.3} ms/op ({:.2e} ops/hour)",
        seconds_per_op * 1e3,
        3600.0 / seconds_per_op
    )
}

/// A full-width random exponent in the given group (helper for benches).
pub fn random_exponent(group: &QrGroup, seed: u64) -> UBig {
    let mut rng = StdRng::seed_from_u64(seed);
    random_below(&mut rng, group.order())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapping_sets_shapes() {
        let (vs, vr) = overlapping_sets(10, 7, 3);
        assert_eq!(vs.len(), 10);
        assert_eq!(vr.len(), 7);
        let vs_set: std::collections::HashSet<_> = vs.iter().collect();
        let shared = vr.iter().filter(|v| vs_set.contains(v)).count();
        assert_eq!(shared, 3);
        // All distinct within each set.
        assert_eq!(vs_set.len(), 10);
    }

    #[test]
    fn measure_ce_returns_positive() {
        let ce = measure_ce(768, 2);
        assert!(ce > 0.0 && ce < 10.0, "ce={ce}");
    }

    #[test]
    fn measure_cr_returns_positive() {
        let cr = measure_cr(3);
        assert!(cr > 0.0 && cr < 1.0, "cr={cr}");
    }

    #[test]
    fn bench_group_sizes() {
        assert_eq!(bench_group(768).codeword_bits(), 768);
        assert_eq!(bench_group(64).codeword_bits(), 64);
    }
}
