//! The commutative cipher `f_e` and the payload cipher `K`:
//! encrypt/decrypt round trips at the paper's parameter sizes.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minshare_bench::bench_group;
use minshare_crypto::kcipher::{ExtCipher, HybridCipher, MulBlockCipher};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn commutative_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("commutative_encrypt");
    group.sample_size(20);
    for bits in [768u64, 1024] {
        let g = bench_group(bits);
        let mut rng = StdRng::seed_from_u64(1);
        let key = g.gen_key(&mut rng);
        let x = g.sample_element(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(g.encrypt(&key, black_box(&x))))
        });
    }
    group.finish();
}

fn commutative_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("commutative_decrypt");
    group.sample_size(20);
    let g = bench_group(1024);
    let mut rng = StdRng::seed_from_u64(2);
    let key = g.gen_key(&mut rng);
    let x = g.sample_element(&mut rng);
    let y = g.encrypt(&key, &x);
    group.bench_function("1024", |b| {
        b.iter(|| black_box(g.decrypt(&key, black_box(&y))))
    });
    group.finish();
}

fn payload_ciphers(c: &mut Criterion) {
    let mut group = c.benchmark_group("payload_cipher");
    let g = bench_group(1024);
    let mut rng = StdRng::seed_from_u64(3);
    let kappa = g.sample_element(&mut rng);

    let mul = MulBlockCipher::new(g.clone()).expect("group > 5");
    let payload = vec![0x42u8; 64];
    group.bench_function("mulblock_encrypt_64B", |b| {
        b.iter(|| black_box(mul.encrypt(&kappa, black_box(&payload)).unwrap()))
    });

    let hybrid = HybridCipher::new(g.clone(), 256);
    let payload = vec![0x42u8; 256];
    group.bench_function("hybrid_encrypt_256B", |b| {
        b.iter(|| black_box(hybrid.encrypt(&kappa, black_box(&payload)).unwrap()))
    });
    let ct = hybrid.encrypt(&kappa, &payload).unwrap();
    group.bench_function("hybrid_decrypt_256B", |b| {
        b.iter(|| black_box(hybrid.decrypt(&kappa, black_box(&ct)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    commutative_encrypt,
    commutative_decrypt,
    payload_ciphers
);
criterion_main!(benches);
