//! Throughput-overhaul benches: the Montgomery squaring kernel, sliding
//! vs. fixed-window exponentiation, `EncryptPool` scaling (§6.2's `P`
//! processors), and the chunk-pipelined protocol engines end to end.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minshare::pipeline::{self, PipelineConfig};
use minshare::prelude::*;
use minshare_bench::{bench_group, overlapping_sets};
use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::UBig;
use minshare_crypto::pool::EncryptPool;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic odd full-width modulus of `bits` bits (no primality
/// needed: the kernels only require oddness).
fn odd_modulus(bits: usize, seed: u64) -> UBig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = vec![0u8; bits / 8];
    rng.fill_bytes(&mut bytes);
    bytes[0] |= 0x80; // full width
    let last = bytes.len() - 1;
    bytes[last] |= 1; // odd
    UBig::from_be_bytes(&bytes)
}

fn random_below_modulus(n: &UBig, seed: u64) -> UBig {
    let mut rng = StdRng::seed_from_u64(seed);
    minshare_bignum::random::random_below(&mut rng, n)
}

/// Dedicated squaring kernel vs. the general multiply, in the hot
/// in-representation loop shape (`MontElem` ops, no conversions).
fn square_vs_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("mont_kernel");
    group.sample_size(20);
    for bits in [512usize, 1024] {
        let n = odd_modulus(bits, 0x5d);
        let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
        let a = ctx.lift(&random_below_modulus(&n, 1));
        group.bench_with_input(BenchmarkId::new("mul_elem", bits), &bits, |b, _| {
            b.iter(|| black_box(ctx.mul_elem(&a, &a)))
        });
        group.bench_with_input(BenchmarkId::new("sqr_elem", bits), &bits, |b, _| {
            b.iter(|| black_box(ctx.sqr_elem(&a)))
        });
    }
    group.finish();
}

/// Window-width sweep at a fixed 512-bit exponent: the crossover the
/// `window_for_bits` table encodes.
fn window_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow_window_512");
    group.sample_size(10);
    let n = odd_modulus(512, 0x5d);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
    let base = random_below_modulus(&n, 2);
    let exp = random_below_modulus(&n, 3);
    for w in 1u32..=6 {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| black_box(ctx.pow_with_window(&base, &exp, w)))
        });
    }
    group.finish();
}

/// The headline number: fixed-exponent batch exponentiation at 512 bits,
/// old fixed-4-bit algorithm vs. the sliding-window + squaring-kernel
/// path (acceptance floor: ≥ 1.3× single-thread).
fn fixed4_vs_sliding(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow_batch_512");
    group.sample_size(10);
    let n = odd_modulus(512, 0x5d);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
    let exp = random_below_modulus(&n, 3);
    let bases: Vec<UBig> = (0..16).map(|i| random_below_modulus(&n, 100 + i)).collect();
    group.bench_function("fixed4_reference", |b| {
        b.iter(|| {
            for base in &bases {
                black_box(ctx.pow_fixed4_reference(base, &exp));
            }
        })
    });
    group.bench_function("sliding", |b| {
        b.iter(|| {
            for base in &bases {
                black_box(ctx.pow(base, &exp));
            }
        })
    });
    group.bench_function("pow_batch", |b| {
        b.iter(|| black_box(ctx.pow_batch(&bases, &exp)))
    });
    group.finish();
}

/// The multi-lane interleaved kernel against the scalar sliding-window
/// batch at the protocol's hot shape (512-bit modulus, 32-element batch),
/// plus the cached-plan front end the keys actually use.
fn pow_multi_lanes(c: &mut Criterion) {
    use std::sync::Arc;

    let mut group = c.benchmark_group("pow_multi_512");
    group.sample_size(10);
    let n = odd_modulus(512, 0x5d);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
    let exp = random_below_modulus(&n, 3);
    let bases: Vec<UBig> = (0..32).map(|i| random_below_modulus(&n, 200 + i)).collect();
    group.bench_function("scalar_sliding_batch32", |b| {
        b.iter(|| black_box(ctx.pow_batch(&bases, &exp)))
    });
    group.bench_function("multi_lane_batch32", |b| {
        b.iter(|| black_box(ctx.pow_multi_ctx(&bases, &exp)))
    });
    let plan =
        minshare_bignum::FixedExponentPlan::new(Arc::new(MontgomeryCtx::new(&n).unwrap()), &exp);
    group.bench_function("cached_plan_batch32", |b| {
        b.iter(|| black_box(plan.pow_batch(&bases)))
    });
    group.finish();
}

/// §6.2 P-processor scaling: one batch of commutative encryptions pushed
/// through the persistent pool at increasing worker counts. (On a
/// single-core host the curve flattens at 1; BENCH_protocols.json records
/// the host core count next to these numbers.)
fn pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_scaling");
    group.sample_size(10);
    let g = bench_group(256);
    let mut rng = StdRng::seed_from_u64(7);
    let key = g.gen_key(&mut rng);
    let items: Vec<UBig> = (0..64).map(|_| g.sample_element(&mut rng)).collect();
    for threads in [1usize, 2, 4] {
        let pool = EncryptPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(pool.encrypt_batch(&g, &key, &items)))
        });
    }
    group.finish();
}

/// End-to-end wall time: serial vs. chunk-pipelined engines over the
/// in-memory duplex link.
fn e2e_serial_vs_pipelined(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e");
    group.sample_size(10);
    let g = bench_group(256);
    let n = 48usize;
    let (vs, vr) = overlapping_sets(n, n, n / 2);
    let pool = EncryptPool::new(4);
    let cfg = PipelineConfig::chunked(8);

    group.bench_function("intersection_serial", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    intersection::run_sender(t, &g, &vs, &mut rng)
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    intersection::run_receiver(t, &g, &vr, &mut rng)
                },
            )
            .expect("run")
        })
    });
    group.bench_function("intersection_pipelined", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    pipeline::run_intersection_sender(t, &g, &vs, &mut rng, &pool, cfg)
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    pipeline::run_intersection_receiver(t, &g, &vr, &mut rng, &pool, cfg)
                },
            )
            .expect("run")
        })
    });

    let entries: Vec<(Vec<u8>, Vec<u8>)> = vs
        .iter()
        .map(|v| (v.clone(), b"record-payload".to_vec()))
        .collect();
    let cipher = HybridCipher::new(g.clone(), 32);
    group.bench_function("equijoin_serial", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    equijoin::run_sender(t, &g, &cipher, &entries, &mut rng)
                },
                |t| {
                    let cipher = HybridCipher::new(g.clone(), 32);
                    let mut rng = StdRng::seed_from_u64(2);
                    equijoin::run_receiver(t, &g, &cipher, &vr, &mut rng)
                },
            )
            .expect("run")
        })
    });
    group.bench_function("equijoin_pipelined", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    pipeline::run_equijoin_sender(t, &g, &cipher, &entries, &mut rng, &pool, cfg)
                },
                |t| {
                    let cipher = HybridCipher::new(g.clone(), 32);
                    let mut rng = StdRng::seed_from_u64(2);
                    pipeline::run_equijoin_receiver(t, &g, &cipher, &vr, &mut rng, &pool, cfg)
                },
            )
            .expect("run")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    square_vs_mul,
    window_widths,
    fixed4_vs_sliding,
    pow_multi_lanes,
    pool_scaling,
    e2e_serial_vs_pipelined
);
criterion_main!(benches);
