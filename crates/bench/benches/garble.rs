//! The Appendix-A baseline: garbling and evaluation cost per gate
//! (`Cr` calibration, experiment E14) and OT cost per input bit.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minshare_bench::bench_group;
use minshare_circuits::comparator::{equality_circuit, to_bits};
use minshare_circuits::garble::{evaluate, garble, Label};
use minshare_circuits::intersection_circuit::brute_force_intersection_circuit;
use minshare_crypto::ot::ObliviousTransfer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn garbling_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("garble_circuit");
    for w in [8usize, 32] {
        let circuit = equality_circuit(w);
        group.throughput(Throughput::Elements(circuit.gate_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| black_box(garble(&circuit, &mut rng)))
        });
    }
    group.finish();
}

fn evaluation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_garbled");
    for w in [8usize, 32] {
        let circuit = equality_circuit(w);
        let mut rng = StdRng::seed_from_u64(5);
        let garbling = garble(&circuit, &mut rng);
        let mut input = to_bits(0x1234, w);
        input.extend(to_bits(0x1234, w));
        let labels: Vec<Label> = input
            .iter()
            .enumerate()
            .map(|(i, &v)| garbling.input_label(i, v))
            .collect();
        group.throughput(Throughput::Elements(circuit.gate_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| black_box(evaluate(&circuit, &garbling.tables, &labels).unwrap()))
        });
    }
    group.finish();
}

fn brute_force_circuit_eval(c: &mut Criterion) {
    // Plain evaluation of the brute-force intersection circuit — shows
    // the quadratic blowup the partitioning construction fights.
    let mut group = c.benchmark_group("brute_force_plain_eval");
    let w = 16usize;
    for n in [4usize, 8, 16] {
        let circuit = brute_force_intersection_circuit(w, n, n);
        let inputs: Vec<bool> = (0..circuit.n_inputs).map(|i| i % 3 == 0).collect();
        group.throughput(Throughput::Elements(circuit.gate_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(circuit.eval(&inputs).unwrap()))
        });
    }
    group.finish();
}

fn ot_per_bit(c: &mut Criterion) {
    let mut group = c.benchmark_group("oblivious_transfer");
    group.sample_size(10);
    let g = bench_group(128);
    let ot = ObliviousTransfer::new(g, b"bench-session");
    group.bench_function("one_label_transfer", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            let (state, query) = ot.receiver_query(true, &mut rng).unwrap();
            let resp = ot
                .sender_respond(&query, &[0u8; 16], &[1u8; 16], &mut rng)
                .unwrap();
            black_box(ot.receiver_recover(&state, &resp).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    garbling_cost,
    evaluation_cost,
    brute_force_circuit_eval,
    ot_per_bit
);
criterion_main!(benches);
