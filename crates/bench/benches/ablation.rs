//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * Montgomery fixed-window exponentiation vs. naive binary
//!   square-and-multiply (why the `Ce` engine is built the way it is),
//! * the paper's `P`-processor parallel encryption assumption
//!   (speedup curve of the batch encryptors),
//! * the paper-exact multiplicative payload cipher vs. the hybrid
//!   (what the substitution costs),
//! * exact intersection vs. the §7 Bloom-prefiltered hybrid (the
//!   efficiency/disclosure tradeoff, measured).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minshare::prelude::*;
use minshare::tradeoff;
use minshare_bench::{bench_group, overlapping_sets, random_exponent};
use minshare_crypto::batch::encrypt_batch;
use minshare_crypto::kcipher::{ExtCipher, HybridCipher, MulBlockCipher};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn montgomery_vs_binary(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/modexp_strategy");
    group.sample_size(10);
    let g = bench_group(1024);
    let mut rng = StdRng::seed_from_u64(1);
    let base = g.sample_element(&mut rng);
    let exp = random_exponent(&g, 2);
    group.bench_function("montgomery_window", |b| {
        b.iter(|| black_box(g.pow(black_box(&base), black_box(&exp))))
    });
    group.bench_function("binary_division_reduce", |b| {
        b.iter(|| black_box(base.modpow_binary(black_box(&exp), g.modulus())))
    });
    let barrett = minshare_bignum::barrett::BarrettCtx::new(g.modulus()).expect("barrett context");
    group.bench_function("barrett_square_multiply", |b| {
        b.iter(|| black_box(barrett.pow(black_box(&base), black_box(&exp))))
    });
    group.finish();
}

fn parallel_encryption_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/parallel_encrypt");
    group.sample_size(10);
    let g = bench_group(1024);
    let mut rng = StdRng::seed_from_u64(3);
    let key = g.gen_key(&mut rng);
    let items: Vec<_> = (0..64).map(|_| g.sample_element(&mut rng)).collect();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| black_box(encrypt_batch(&g, &key, &items, threads))),
        );
    }
    group.finish();
}

fn payload_cipher_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/payload_cipher");
    let g = bench_group(1024);
    let mut rng = StdRng::seed_from_u64(4);
    let kappa = g.sample_element(&mut rng);
    let mul = MulBlockCipher::new(g.clone()).expect("group");
    let hybrid = HybridCipher::new(g.clone(), mul.max_plaintext_len());
    let payload = vec![0x42u8; mul.max_plaintext_len()];
    group.bench_function("mulblock_paper_exact", |b| {
        b.iter(|| black_box(mul.encrypt(&kappa, black_box(&payload)).unwrap()))
    });
    group.bench_function("hybrid_chacha_hmac", |b| {
        b.iter(|| black_box(hybrid.encrypt(&kappa, black_box(&payload)).unwrap()))
    });
    group.finish();
}

fn exact_vs_bloom_hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bloom_tradeoff");
    group.sample_size(10);
    let g = bench_group(128);
    // Big sender set, small intersection: the hybrid's favorable regime.
    let (vs, vr) = overlapping_sets(200, 10, 5);

    group.bench_function("exact_intersection", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    intersection::run_sender(t, &g, &vs, &mut rng)
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    intersection::run_receiver(t, &g, &vr, &mut rng)
                },
            )
            .expect("run")
        })
    });

    group.bench_function("bloom_hybrid_exact", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    tradeoff::hybrid_intersection::run_sender(t, &g, &vs, &mut rng)
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    tradeoff::hybrid_intersection::run_receiver(t, &g, &vr, 0.01, &mut rng)
                },
            )
            .expect("run")
        })
    });

    group.bench_function("bloom_approximate_size", |b| {
        b.iter(|| {
            run_two_party(
                |t| tradeoff::approximate_size::run_sender(t, &vs),
                |t| tradeoff::approximate_size::run_receiver(t, &vr, 0.01),
            )
            .expect("run")
        })
    });
    group.finish();
}

fn commutative_scheme_choice(c: &mut Criterion) {
    // Example 1 (QR_p, DDH) vs the cited mental-poker SRA construction:
    // one encryption each at comparable modulus sizes.
    let mut group = c.benchmark_group("ablation/commutative_scheme");
    group.sample_size(10);
    let qr = bench_group(768);
    let mut rng = StdRng::seed_from_u64(7);
    let qr_key = qr.gen_key(&mut rng);
    let qr_x = qr.sample_element(&mut rng);
    group.bench_function("qr_pohlig_hellman_768", |b| {
        b.iter(|| black_box(qr.encrypt(&qr_key, black_box(&qr_x))))
    });

    let sra = minshare_crypto::sra::SraContext::generate(&mut rng, 768).expect("SRA parameters");
    let sra_key = sra.gen_key(&mut rng);
    let sra_x = sra.hash_to_domain(b"bench-value");
    group.bench_function("sra_mental_poker_768", |b| {
        b.iter(|| black_box(sra.encrypt(&sra_key, black_box(&sra_x))))
    });
    group.finish();
}

criterion_group!(
    benches,
    montgomery_vs_binary,
    parallel_encryption_scaling,
    payload_cipher_choice,
    exact_vs_bloom_hybrid,
    commutative_scheme_choice
);
criterion_main!(benches);
