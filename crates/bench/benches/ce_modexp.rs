//! `Ce` — the paper's unit cost: one `k`-bit modular exponentiation
//! (experiment E11). The paper's reference point is 0.02 s at `k = 1024`
//! on a 2001 Pentium III.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minshare_bench::{bench_group, random_exponent};

fn ce_modexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ce_modexp");
    group.sample_size(20);
    for bits in [768u64, 1024, 1536, 2048] {
        let g = bench_group(bits);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7);
        let base = g.sample_element(&mut rng);
        let exp = random_exponent(&g, 13);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(g.pow(black_box(&base), black_box(&exp))))
        });
    }
    group.finish();
}

criterion_group!(benches, ce_modexp);
criterion_main!(benches);
