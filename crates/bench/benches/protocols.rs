//! End-to-end protocol runs (experiment E12): both parties on threads
//! over the byte-counted duplex link, across set sizes and group sizes.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minshare::prelude::*;
use minshare_bench::{bench_group, overlapping_sets};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn intersection_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection_e2e");
    group.sample_size(10);
    // Group size fixed at a fast 128 bits; n is the variable.
    let g = bench_group(128);
    for n in [8usize, 32, 128] {
        let (vs, vr) = overlapping_sets(n, n, n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let run = run_two_party(
                    |t| {
                        let mut rng = StdRng::seed_from_u64(1);
                        intersection::run_sender(t, &g, &vs, &mut rng)
                    },
                    |t| {
                        let mut rng = StdRng::seed_from_u64(2);
                        intersection::run_receiver(t, &g, &vr, &mut rng)
                    },
                )
                .expect("protocol run");
                black_box(run.receiver.intersection.len())
            })
        });
    }
    group.finish();
}

fn intersection_group_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection_group_bits");
    group.sample_size(10);
    let n = 16usize;
    let (vs, vr) = overlapping_sets(n, n, n / 2);
    for bits in [128u64, 768, 1024] {
        let g = bench_group(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                let run = run_two_party(
                    |t| {
                        let mut rng = StdRng::seed_from_u64(1);
                        intersection::run_sender(t, &g, &vs, &mut rng)
                    },
                    |t| {
                        let mut rng = StdRng::seed_from_u64(2);
                        intersection::run_receiver(t, &g, &vr, &mut rng)
                    },
                )
                .expect("protocol run");
                black_box(run.receiver.intersection.len())
            })
        });
    }
    group.finish();
}

fn all_four_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols_n32");
    group.sample_size(10);
    let g = bench_group(128);
    let n = 32usize;
    let (vs, vr) = overlapping_sets(n, n, n / 2);

    group.bench_function("intersection", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    intersection::run_sender(t, &g, &vs, &mut rng)
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    intersection::run_receiver(t, &g, &vr, &mut rng)
                },
            )
            .expect("run")
        })
    });

    group.bench_function("intersection_size", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    intersection_size::run_sender(t, &g, &vs, &mut rng)
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    intersection_size::run_receiver(t, &g, &vr, &mut rng)
                },
            )
            .expect("run")
        })
    });

    let entries: Vec<(Vec<u8>, Vec<u8>)> = vs
        .iter()
        .map(|v| (v.clone(), b"record-payload".to_vec()))
        .collect();
    group.bench_function("equijoin", |b| {
        b.iter(|| {
            let cipher = HybridCipher::new(g.clone(), 32);
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    equijoin::run_sender(t, &g, &cipher, &entries, &mut rng)
                },
                |t| {
                    let cipher = HybridCipher::new(g.clone(), 32);
                    let mut rng = StdRng::seed_from_u64(2);
                    equijoin::run_receiver(t, &g, &cipher, &vr, &mut rng)
                },
            )
            .expect("run")
        })
    });

    group.bench_function("equijoin_size", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    equijoin_size::run_sender(t, &g, &vs, &mut rng)
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    equijoin_size::run_receiver(t, &g, &vr, &mut rng)
                },
            )
            .expect("run")
        })
    });
    group.finish();
}

fn extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    let g = bench_group(128);

    // Private intersection-sum (E16 workload).
    let key = {
        let mut rng = StdRng::seed_from_u64(0x9a);
        minshare_aggregate::paillier::PrivateKey::generate(&mut rng, 128).expect("keygen")
    };
    let entries: Vec<(Vec<u8>, u64)> = (0..32u32)
        .map(|i| (format!("u{i}").into_bytes(), i as u64))
        .collect();
    let vr: Vec<Vec<u8>> = (16..48u32).map(|i| format!("u{i}").into_bytes()).collect();
    group.bench_function("intersection_sum_n32", |b| {
        b.iter(|| {
            run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(1);
                    minshare_aggregate::intersection_sum::run_sender(
                        t, &g, &key, &entries, &mut rng,
                    )
                    .map_err(|e| minshare::ProtocolError::MalformedMessage {
                        detail: e.to_string(),
                    })
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(2);
                    minshare_aggregate::intersection_sum::run_receiver(t, &g, &vr, &mut rng)
                        .map_err(|e| minshare::ProtocolError::MalformedMessage {
                            detail: e.to_string(),
                        })
                },
            )
            .expect("run")
        })
    });

    // N-party ring (E17 workload).
    for n in [3usize, 5] {
        let sets: Vec<Vec<Vec<u8>>> = (0..n)
            .map(|i| {
                (0..16u32)
                    .map(|j| format!("p{i}-or-common-{}", j % 8).into_bytes())
                    .collect()
            })
            .collect();
        group.bench_with_input(
            criterion::BenchmarkId::new("multiparty_ring", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    minshare::multiparty::multiparty_intersection_size(&g, &sets, n as u64)
                        .expect("run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    intersection_scaling,
    intersection_group_sizes,
    all_four_protocols,
    extensions
);
criterion_main!(benches);
