//! `Ch` — hashing costs: raw SHA-256 throughput and the full
//! hash-to-group mapping `h : V → QR_p` (supports the §6.1 assumption
//! `Ce ≫ Ch`).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minshare_bench::bench_group;
use minshare_hash::Sha256;

fn sha256_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| black_box(Sha256::digest(black_box(data))))
        });
    }
    group.finish();
}

fn hash_to_group(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_to_group");
    group.sample_size(30);
    for bits in [768u64, 1024] {
        let g = bench_group(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(g.hash_to_group(&i.to_be_bytes()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sha256_throughput, hash_to_group);
criterion_main!(benches);
