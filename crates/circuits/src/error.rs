//! Error type for circuit construction, evaluation and garbling.

use std::fmt;

/// Errors from the circuit layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// Evaluation received the wrong number of input bits.
    InputArity {
        /// Inputs the circuit declares.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// A gate references a wire that does not exist yet.
    DanglingWire {
        /// The offending wire id.
        wire: usize,
    },
    /// A garbled table entry failed to decrypt consistently.
    GarbleDecode,
    /// Oblivious transfer failed while coding evaluator inputs.
    OtFailed {
        /// Underlying failure.
        detail: String,
    },
    /// Output decoding information did not match the produced labels.
    OutputDecode,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InputArity { expected, got } => {
                write!(f, "circuit expects {expected} input bits, got {got}")
            }
            CircuitError::DanglingWire { wire } => {
                write!(f, "gate references undefined wire {wire}")
            }
            CircuitError::GarbleDecode => write!(f, "garbled-table decryption failed"),
            CircuitError::OtFailed { detail } => write!(f, "oblivious transfer failed: {detail}"),
            CircuitError::OutputDecode => write!(f, "output label did not decode"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(CircuitError::InputArity {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("4"));
        assert!(CircuitError::GarbleDecode.to_string().contains("garbled"));
    }
}
