//! The partitioning-circuit gate-count model of Appendix A.1.2.
//!
//! Instead of comparing all pairs, both sorted input arrays are split
//! into `m` intervals; at most `2m − 1` of the `m²` interval pairs can
//! interleave, and the circuit recurses into those. Choosing which pairs
//! interleave costs `2m²` comparisons (`2m²·G_l` gates). The paper lower-
//! bounds the resulting size by
//!
//! ```text
//! f(n) ≥ (m²/(m−1) · G_l + G_e) · (n^{log_m(2m−1)} − 1)
//! ```
//!
//! and evaluates it at `w = 32` for `n ∈ {10⁴, 10⁶, 10⁸}`, obtaining the
//! table `m = 11/19/32`, `f(n) = 2.3·10⁸ / 7.3·10¹⁰ / 1.9·10¹³`. This
//! module reproduces both the closed form and the optimal-`m` search.

use crate::comparator::{equality_gate_count, less_than_gate_count};

/// The closed-form lower bound `f(n)` for a given split factor `m`.
///
/// Returns `f64` because the paper's quantities overflow `u64` at
/// `n = 10⁸` scale only in intermediate products; the final values are
/// reported in floating point anyway.
pub fn partition_gate_bound(n: f64, m: f64, w: usize) -> f64 {
    assert!(m >= 2.0 && n >= 1.0);
    let g_l = less_than_gate_count(w) as f64;
    let g_e = equality_gate_count(w) as f64;
    let exponent = (2.0 * m - 1.0).ln() / m.ln();
    (m * m / (m - 1.0) * g_l + g_e) * (n.powf(exponent) - 1.0)
}

/// Searches the integer `m` minimizing [`partition_gate_bound`].
pub fn optimal_split(n: f64, w: usize) -> (u32, f64) {
    let mut best = (2u32, partition_gate_bound(n, 2.0, w));
    for m in 3..=4096u32 {
        let f = partition_gate_bound(n, m as f64, w);
        if f < best.1 {
            best = (m, f);
        }
    }
    best
}

/// One row of the A.1.2 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionRow {
    /// Input size `n = |V_S| = |V_R|`.
    pub n: f64,
    /// Optimal split factor.
    pub m: u32,
    /// Partitioning-circuit gate count `f(n)`.
    pub gates: f64,
    /// Brute-force gate count `n²·Ge` for comparison.
    pub brute_force_gates: f64,
}

/// Regenerates the A.1.2 table for the given sizes at `w = 32`.
pub fn appendix_table(sizes: &[f64]) -> Vec<PartitionRow> {
    sizes
        .iter()
        .map(|&n| {
            let (m, gates) = optimal_split(n, 32);
            PartitionRow {
                n,
                m,
                gates,
                brute_force_gates: n * n * equality_gate_count(32) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expect: f64, tol: f64) -> bool {
        (actual / expect - 1.0).abs() < tol
    }

    #[test]
    fn reproduces_paper_table() {
        // Paper: n=10^4 → m=11, f=2.3e8; n=10^6 → m=19, f=7.3e10;
        //        n=10^8 → m=32, f=1.9e13.
        let rows = appendix_table(&[1e4, 1e6, 1e8]);
        assert_eq!(rows[0].m, 11);
        assert!(close(rows[0].gates, 2.3e8, 0.05), "{:.3e}", rows[0].gates);
        assert_eq!(rows[1].m, 19);
        assert!(close(rows[1].gates, 7.3e10, 0.05), "{:.3e}", rows[1].gates);
        assert_eq!(rows[2].m, 32);
        assert!(close(rows[2].gates, 1.9e13, 0.05), "{:.3e}", rows[2].gates);
    }

    #[test]
    fn reproduces_brute_force_column() {
        let rows = appendix_table(&[1e4, 1e6, 1e8]);
        assert!(close(rows[0].brute_force_gates, 6.3e9, 0.05));
        assert!(close(rows[1].brute_force_gates, 6.3e13, 0.05));
        assert!(close(rows[2].brute_force_gates, 6.3e17, 0.05));
    }

    #[test]
    fn partitioning_beats_brute_force() {
        for row in appendix_table(&[1e4, 1e6, 1e8]) {
            assert!(row.gates < row.brute_force_gates, "n={}", row.n);
        }
    }

    #[test]
    fn bound_grows_with_n() {
        let a = partition_gate_bound(1e4, 11.0, 32);
        let b = partition_gate_bound(1e5, 11.0, 32);
        assert!(b > a);
    }

    #[test]
    fn optimal_m_grows_with_n() {
        let (m_small, _) = optimal_split(1e4, 32);
        let (m_large, _) = optimal_split(1e8, 32);
        assert!(m_large > m_small);
    }
}
