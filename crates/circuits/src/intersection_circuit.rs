//! The brute-force intersection circuit of Appendix A.1.2: compare every
//! number in `V_R` with every number in `V_S` and OR-merge per `V_R`
//! element, outputting the membership vector `~z`.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateOp};
use crate::comparator::{append_equality, equality_gate_count};

/// Gate count of the brute-force circuit (the paper's lower bound is the
/// comparator term `|V_R|·|V_S|·Ge`; the exact count adds the OR-merges).
pub fn brute_force_gate_count(w: usize, n_s: usize, n_r: usize) -> usize {
    n_r * n_s * equality_gate_count(w) + n_r * n_s.saturating_sub(1)
}

/// The paper's lower bound `|V_R| · |V_S| · Ge`.
pub fn brute_force_gate_lower_bound(w: usize, n_s: usize, n_r: usize) -> u128 {
    n_r as u128 * n_s as u128 * equality_gate_count(w) as u128
}

/// Builds the brute-force intersection circuit.
///
/// Inputs: `S`'s `n_s` numbers of `w` bits each (wires
/// `0 .. n_s·w`, little-endian per number), then `R`'s `n_r` numbers
/// (wires `n_s·w .. (n_s+n_r)·w`). Outputs: `n_r` bits, bit `j` set iff
/// `R`'s `j`-th number occurs among `S`'s numbers.
pub fn brute_force_intersection_circuit(w: usize, n_s: usize, n_r: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let s_words: Vec<Vec<_>> = (0..n_s).map(|_| b.inputs(w)).collect();
    let r_words: Vec<Vec<_>> = (0..n_r).map(|_| b.inputs(w)).collect();
    for r_word in &r_words {
        let eqs: Vec<_> = s_words
            .iter()
            .map(|s_word| append_equality(&mut b, r_word, s_word))
            .collect();
        match b.tree(GateOp::Or, &eqs) {
            Some(out) => b.output(out),
            None => {
                // n_s = 0: the answer is constantly false. Emit
                // `r₀ XOR r₀` as a constant-false wire.
                let f = b.xor(r_word[0], r_word[0]);
                b.output(f);
            }
        }
    }
    b.build()
}

/// Packs the two parties' inputs into the circuit's input bit vector.
pub fn pack_inputs(w: usize, vs: &[u64], vr: &[u64]) -> Vec<bool> {
    let mut bits = Vec::with_capacity((vs.len() + vr.len()) * w);
    for &x in vs.iter().chain(vr) {
        for i in 0..w {
            bits.push((x >> i) & 1 == 1);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_membership_vector() {
        let w = 8;
        let vs = [3u64, 77, 200];
        let vr = [77u64, 5, 200, 3, 9];
        let c = brute_force_intersection_circuit(w, vs.len(), vr.len());
        let out = c.eval(&pack_inputs(w, &vs, &vr)).unwrap();
        assert_eq!(out, vec![true, false, true, true, false]);
    }

    #[test]
    fn gate_count_formula_exact() {
        for (w, ns, nr) in [(8usize, 3usize, 5usize), (4, 1, 1), (16, 4, 2)] {
            let c = brute_force_intersection_circuit(w, ns, nr);
            assert_eq!(
                c.gate_count(),
                brute_force_gate_count(w, ns, nr),
                "w={w} ns={ns} nr={nr}"
            );
        }
    }

    #[test]
    fn lower_bound_below_exact_count() {
        let (w, ns, nr) = (32, 10, 10);
        assert!(
            brute_force_gate_lower_bound(w, ns, nr) <= brute_force_gate_count(w, ns, nr) as u128
        );
    }

    #[test]
    fn paper_brute_force_numbers() {
        // Appendix A.1.2: w=32, n=|V_S|=|V_R| → 6.3e9 / 6.3e13 / 6.3e17.
        for (n, expect) in [
            (10_000u64, 6.3e9),
            (1_000_000, 6.3e13),
            (100_000_000, 6.3e17),
        ] {
            let gates = brute_force_gate_lower_bound(32, n as usize, n as usize) as f64;
            let ratio = gates / expect;
            assert!((0.9..1.1).contains(&ratio), "n={n}: {gates:.3e}");
        }
    }

    #[test]
    fn empty_sender_side() {
        let w = 4;
        let c = brute_force_intersection_circuit(w, 0, 2);
        let out = c.eval(&pack_inputs(w, &[], &[1, 2])).unwrap();
        assert_eq!(out, vec![false, false]);
    }

    #[test]
    fn duplicate_sender_values_still_work() {
        let w = 4;
        let vs = [7u64, 7];
        let vr = [7u64, 1];
        let c = brute_force_intersection_circuit(w, 2, 2);
        assert_eq!(
            c.eval(&pack_inputs(w, &vs, &vr)).unwrap(),
            vec![true, false]
        );
    }
}
