//! # minshare-circuits
//!
//! The **circuit-based baseline** of the paper's Appendix A: generic
//! secure two-party computation via Yao garbled circuits, implemented so
//! the comparison against the specialized protocols is executable rather
//! than purely analytic.
//!
//! * [`circuit`] / [`builder`] — a boolean-circuit IR with an evaluator,
//! * [`comparator`] — equality (`2w−1` gates) and less-than (`5w−3`
//!   gates) comparators matching the paper's gate counts exactly,
//! * [`intersection_circuit`] — the brute-force pairwise intersection
//!   circuit (`> |V_R|·|V_S|·Ge` gates, A.1.2),
//! * [`partition`] — the partitioning-circuit gate-count model
//!   `f(n) ≥ 2m²·G_l + (2m−1)·f(n/m)` with the optimal-`m` search that
//!   reproduces the A.1.2 table,
//! * [`garble`] — point-and-permute garbled circuits with oblivious
//!   transfer of the evaluator's input labels (via `minshare-crypto`),
//!   executable at small `n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod circuit;
pub mod comparator;
pub mod error;
pub mod garble;
pub mod intersection_circuit;
pub mod partition;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, Gate, GateOp, WireId};
pub use error::CircuitError;
