//! Yao garbled circuits with point-and-permute, plus the OT-coded input
//! step — the executable version of the Appendix-A baseline.
//!
//! The protocol the paper prices (A, citing \[33, 37\]) has two phases:
//!
//! * **Coding `R`'s input** — one 1-out-of-2 oblivious transfer per input
//!   bit of the evaluator (`w · |V_R|` transfers), delivering the wire
//!   label for the bit's value;
//! * **Computing the circuit** — for each gate the evaluator receives a
//!   table from `S` (`4·k'` bits) and applies a pseudorandom function to
//!   decrypt the output-wire label.
//!
//! Labels are 128-bit ([`LABEL_LEN`]); the last bit of each label is its
//! public *color* (permute bit), which indexes the garbled table so the
//! evaluator decrypts exactly one row.

use minshare_crypto::ot::ObliviousTransfer;
use minshare_crypto::QrGroup;
use minshare_hash::RandomOracle;
use rand::Rng;

use crate::circuit::{Circuit, GateOp};
use crate::error::CircuitError;

/// Wire-label length in bytes (the paper's `k' = 64` bits is scaled to a
/// modern 128 bits; the cost model keeps `k'` as a parameter).
pub const LABEL_LEN: usize = 16;

/// A wire label.
pub type Label = [u8; LABEL_LEN];

/// The color (permute) bit carried in a label's last bit.
fn color(label: &Label) -> bool {
    label[LABEL_LEN - 1] & 1 == 1
}

/// The transferable part of a garbling: everything the evaluator needs
/// except input labels.
#[derive(Debug, Clone)]
pub struct GarbledTables {
    /// Per gate: 4 rows (2 for NOT), indexed by input colors.
    pub tables: Vec<Vec<Label>>,
    /// Per circuit output: the permute bit, so the evaluator can decode
    /// its label's color into a plaintext bit.
    pub output_colors: Vec<bool>,
}

impl GarbledTables {
    /// Total table bytes shipped — the paper's `4·k'` bits per gate
    /// (NOT gates ship half).
    pub fn wire_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.len() * LABEL_LEN).sum()
    }
}

/// The garbler's full view: tables plus the secret label pairs.
#[derive(Debug, Clone)]
pub struct Garbling {
    /// What gets sent to the evaluator.
    pub tables: GarbledTables,
    /// Secret: both labels for every wire (`wire_labels[w][bit]`).
    wire_labels: Vec<[Label; 2]>,
}

/// The gate-row cipher: `H(gate_id ‖ operand labels)` truncated to a
/// label, XORed onto the output label.
fn row_pad(oracle: &RandomOracle, gate_id: usize, a: &Label, b: Option<&Label>) -> Label {
    let mut input = Vec::with_capacity(8 + 2 * LABEL_LEN);
    input.extend_from_slice(&(gate_id as u64).to_be_bytes());
    input.extend_from_slice(a);
    if let Some(b) = b {
        input.extend_from_slice(b);
    }
    let bytes = oracle.expand(&input, LABEL_LEN);
    let mut out = [0u8; LABEL_LEN];
    out.copy_from_slice(&bytes);
    out
}

fn xor_labels(a: &Label, b: &Label) -> Label {
    let mut out = [0u8; LABEL_LEN];
    for i in 0..LABEL_LEN {
        out[i] = a[i] ^ b[i];
    }
    out
}

fn garble_oracle() -> RandomOracle {
    RandomOracle::new(b"minshare/garble/v1")
}

/// Samples a label pair with opposite colors.
fn fresh_pair<R: Rng + ?Sized>(rng: &mut R) -> [Label; 2] {
    let mut l0 = [0u8; LABEL_LEN];
    let mut l1 = [0u8; LABEL_LEN];
    rng.fill_bytes(&mut l0);
    rng.fill_bytes(&mut l1);
    // Random permute bit: color(l0) random, color(l1) its complement.
    l1[LABEL_LEN - 1] = (l1[LABEL_LEN - 1] & 0xfe) | (l0[LABEL_LEN - 1] & 1 ^ 1);
    [l0, l1]
}

/// Garbles `circuit` with fresh labels.
pub fn garble<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> Garbling {
    let oracle = garble_oracle();
    let mut wire_labels: Vec<[Label; 2]> = Vec::with_capacity(circuit.n_wires());
    for _ in 0..circuit.n_inputs {
        wire_labels.push(fresh_pair(rng));
    }

    let mut tables = Vec::with_capacity(circuit.gates.len());
    for (gate_idx, gate) in circuit.gates.iter().enumerate() {
        let out_pair = fresh_pair(rng);
        let a_pair = wire_labels[gate.a];
        match gate.op {
            GateOp::Not => {
                // Unary: 2 rows indexed by color(a).
                let mut rows = vec![[0u8; LABEL_LEN]; 2];
                #[allow(clippy::needless_range_loop)] // truth-table index
                for va in 0..2usize {
                    let vc = gate.op.apply(va == 1, va == 1) as usize;
                    let row = color(&a_pair[va]) as usize;
                    let pad = row_pad(&oracle, gate_idx, &a_pair[va], None);
                    rows[row] = xor_labels(&out_pair[vc], &pad);
                }
                tables.push(rows);
            }
            _ => {
                let b_pair = wire_labels[gate.b];
                let mut rows = vec![[0u8; LABEL_LEN]; 4];
                #[allow(clippy::needless_range_loop)] // truth-table index
                for va in 0..2usize {
                    for vb in 0..2usize {
                        let vc = gate.op.apply(va == 1, vb == 1) as usize;
                        let row =
                            ((color(&a_pair[va]) as usize) << 1) | color(&b_pair[vb]) as usize;
                        let pad = row_pad(&oracle, gate_idx, &a_pair[va], Some(&b_pair[vb]));
                        rows[row] = xor_labels(&out_pair[vc], &pad);
                    }
                }
                tables.push(rows);
            }
        }
        wire_labels.push(out_pair);
    }

    let output_colors = circuit
        .outputs
        .iter()
        .map(|&w| color(&wire_labels[w][0]))
        .collect();

    Garbling {
        tables: GarbledTables {
            tables,
            output_colors,
        },
        wire_labels,
    }
}

impl Garbling {
    /// The label encoding `value` on input wire `wire` (garbler-side
    /// input coding; the evaluator's inputs travel by OT instead).
    pub fn input_label(&self, wire: usize, value: bool) -> Label {
        self.wire_labels[wire][value as usize]
    }

    /// Both labels of an input wire — the OT sender's message pair.
    pub fn input_label_pair(&self, wire: usize) -> (Label, Label) {
        (self.wire_labels[wire][0], self.wire_labels[wire][1])
    }
}

/// Evaluates a garbled circuit given one label per input wire.
/// Returns the decoded output bits.
pub fn evaluate(
    circuit: &Circuit,
    tables: &GarbledTables,
    input_labels: &[Label],
) -> Result<Vec<bool>, CircuitError> {
    if input_labels.len() != circuit.n_inputs {
        return Err(CircuitError::InputArity {
            expected: circuit.n_inputs,
            got: input_labels.len(),
        });
    }
    if tables.tables.len() != circuit.gates.len()
        || tables.output_colors.len() != circuit.outputs.len()
    {
        return Err(CircuitError::GarbleDecode);
    }
    let oracle = garble_oracle();
    let mut labels: Vec<Label> = Vec::with_capacity(circuit.n_wires());
    labels.extend_from_slice(input_labels);
    for (gate_idx, gate) in circuit.gates.iter().enumerate() {
        let a = labels[gate.a];
        let rows = &tables.tables[gate_idx];
        let out = match gate.op {
            GateOp::Not => {
                if rows.len() != 2 {
                    return Err(CircuitError::GarbleDecode);
                }
                let pad = row_pad(&oracle, gate_idx, &a, None);
                xor_labels(&rows[color(&a) as usize], &pad)
            }
            _ => {
                if rows.len() != 4 {
                    return Err(CircuitError::GarbleDecode);
                }
                let b = labels[gate.b];
                let row = ((color(&a) as usize) << 1) | color(&b) as usize;
                let pad = row_pad(&oracle, gate_idx, &a, Some(&b));
                xor_labels(&rows[row], &pad)
            }
        };
        labels.push(out);
    }
    Ok(circuit
        .outputs
        .iter()
        .zip(&tables.output_colors)
        .map(|(&w, &perm)| color(&labels[w]) ^ perm)
        .collect())
}

/// End-to-end two-party garbled evaluation: the garbler contributes
/// `garbler_inputs` directly; the evaluator's `evaluator_inputs` (the
/// remaining input wires) are delivered by 1-out-of-2 OT — one transfer
/// per bit, exactly the cost the paper's A.1.1 accounting charges.
///
/// Returns the decoded outputs together with the number of OTs performed.
pub fn two_party_evaluate<R: Rng + ?Sized>(
    group: &QrGroup,
    circuit: &Circuit,
    garbler_inputs: &[bool],
    evaluator_inputs: &[bool],
    rng: &mut R,
) -> Result<(Vec<bool>, usize), CircuitError> {
    if garbler_inputs.len() + evaluator_inputs.len() != circuit.n_inputs {
        return Err(CircuitError::InputArity {
            expected: circuit.n_inputs,
            got: garbler_inputs.len() + evaluator_inputs.len(),
        });
    }
    let garbling = garble(circuit, rng);
    let ot = ObliviousTransfer::new(group.clone(), b"garbled-input-coding");

    let mut input_labels = Vec::with_capacity(circuit.n_inputs);
    // Garbler wires come first by convention.
    for (i, &bit) in garbler_inputs.iter().enumerate() {
        input_labels.push(garbling.input_label(i, bit));
    }
    // Evaluator wires: one OT each.
    let mut ots = 0usize;
    for (j, &bit) in evaluator_inputs.iter().enumerate() {
        let wire = garbler_inputs.len() + j;
        let (l0, l1) = garbling.input_label_pair(wire);
        let (state, query) = ot
            .receiver_query(bit, rng)
            .map_err(|e| CircuitError::OtFailed {
                detail: e.to_string(),
            })?;
        let resp =
            ot.sender_respond(&query, &l0, &l1, rng)
                .map_err(|e| CircuitError::OtFailed {
                    detail: e.to_string(),
                })?;
        let label_bytes =
            ot.receiver_recover(&state, &resp)
                .map_err(|e| CircuitError::OtFailed {
                    detail: e.to_string(),
                })?;
        let mut label = [0u8; LABEL_LEN];
        label.copy_from_slice(&label_bytes);
        input_labels.push(label);
        ots += 1;
    }

    let outputs = evaluate(circuit, &garbling.tables, &input_labels)?;
    Ok((outputs, ots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::comparator::{equality_circuit, to_bits};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x6a5b1ed)
    }

    #[test]
    fn garbled_equals_plain_on_all_gate_types() {
        let mut b = CircuitBuilder::new();
        let ins = b.inputs(2);
        let and = b.and(ins[0], ins[1]);
        let or = b.or(ins[0], ins[1]);
        let xor = b.xor(ins[0], ins[1]);
        let xnor = b.xnor(ins[0], ins[1]);
        let not = b.not(ins[0]);
        for w in [and, or, xor, xnor, not] {
            b.output(w);
        }
        let c = b.build();
        let mut r = rng();
        let garbling = garble(&c, &mut r);
        for bits in 0..4u8 {
            let input = [bits & 1 == 1, bits & 2 == 2];
            let labels: Vec<Label> = (0..2).map(|i| garbling.input_label(i, input[i])).collect();
            let got = evaluate(&c, &garbling.tables, &labels).unwrap();
            assert_eq!(got, c.eval(&input).unwrap(), "bits={bits:02b}");
        }
    }

    #[test]
    fn garbled_equality_circuit_exhaustive() {
        let w = 3;
        let c = equality_circuit(w);
        let mut r = rng();
        let garbling = garble(&c, &mut r);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut input = to_bits(a, w);
                input.extend(to_bits(b, w));
                let labels: Vec<Label> = input
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| garbling.input_label(i, v))
                    .collect();
                let got = evaluate(&c, &garbling.tables, &labels).unwrap();
                assert_eq!(got, vec![a == b], "a={a} b={b}");
            }
        }
    }

    #[test]
    fn labels_reveal_nothing_structurally() {
        // The two labels of a wire differ in their color bit and the
        // evaluator only ever sees one of them.
        let c = equality_circuit(2);
        let mut r = rng();
        let garbling = garble(&c, &mut r);
        for wire in 0..c.n_inputs {
            let (l0, l1) = garbling.input_label_pair(wire);
            assert_ne!(l0, l1);
            assert_ne!(color(&l0), color(&l1));
        }
    }

    #[test]
    fn table_sizes_match_cost_model() {
        // 4 rows of k' bits per binary gate.
        let c = equality_circuit(4); // 2w-1 = 7 binary gates
        let mut r = rng();
        let garbling = garble(&c, &mut r);
        assert_eq!(garbling.tables.wire_bytes(), 7 * 4 * LABEL_LEN);
    }

    #[test]
    fn two_party_with_ot_matches_plain() {
        let mut seed_rng = StdRng::seed_from_u64(31);
        let group = QrGroup::generate(&mut seed_rng, 64).unwrap();
        let w = 4;
        let c = equality_circuit(w);
        let mut r = rng();
        for (a, b) in [(5u64, 5u64), (5, 9), (0, 0), (15, 14)] {
            let ga = to_bits(a, w);
            let eb = to_bits(b, w);
            let (out, ots) = two_party_evaluate(&group, &c, &ga, &eb, &mut r).unwrap();
            assert_eq!(out, vec![a == b], "a={a} b={b}");
            assert_eq!(ots, w, "one OT per evaluator input bit");
        }
    }

    #[test]
    fn wrong_label_scrambles_output() {
        let c = equality_circuit(2);
        let mut r = rng();
        let garbling = garble(&c, &mut r);
        let input = [true, false, true, false];
        let mut labels: Vec<Label> = input
            .iter()
            .enumerate()
            .map(|(i, &v)| garbling.input_label(i, v))
            .collect();
        // Corrupt one label entirely: decryption pads no longer line up,
        // so the result is unrelated garbage (usually wrong output or
        // inconsistent labels).
        labels[0] = [0xEE; LABEL_LEN];
        let got = evaluate(&c, &garbling.tables, &labels).unwrap();
        // There is a 50% chance per output bit of accidental agreement;
        // with one output we just require the call not to panic. The
        // meaningful guarantee — semantic security of labels — is
        // structural, tested above.
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn evaluate_validates_shapes() {
        let c = equality_circuit(2);
        let mut r = rng();
        let garbling = garble(&c, &mut r);
        assert!(matches!(
            evaluate(&c, &garbling.tables, &[]),
            Err(CircuitError::InputArity { .. })
        ));
        let mut bad = garbling.tables.clone();
        bad.tables.pop();
        let labels: Vec<Label> = (0..4).map(|i| garbling.input_label(i, false)).collect();
        assert!(matches!(
            evaluate(&c, &bad, &labels),
            Err(CircuitError::GarbleDecode)
        ));
    }
}
