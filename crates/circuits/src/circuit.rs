//! The boolean-circuit intermediate representation and its evaluator.

use crate::error::CircuitError;

/// Index of a wire. Wires `0..n_inputs` are circuit inputs; the output of
/// gate `i` is wire `n_inputs + i`.
pub type WireId = usize;

/// Binary (or unary, for NOT) gate operations.
///
/// XNOR is a first-class gate so the equality comparator costs the
/// paper's `2w − 1` gates rather than `3w − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Exclusive OR.
    Xor,
    /// Complement of XOR (equality of two bits).
    Xnor,
    /// Logical NOT of input `a` (`b` is ignored; conventionally `== a`).
    Not,
}

impl GateOp {
    /// Truth-table evaluation.
    pub fn apply(&self, a: bool, b: bool) -> bool {
        match self {
            GateOp::And => a && b,
            GateOp::Or => a || b,
            GateOp::Xor => a ^ b,
            GateOp::Xnor => !(a ^ b),
            GateOp::Not => !a,
        }
    }

    /// Number of operands (1 for NOT, else 2).
    pub fn arity(&self) -> usize {
        if matches!(self, GateOp::Not) {
            1
        } else {
            2
        }
    }
}

/// One gate: an operation over one or two existing wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// Operation.
    pub op: GateOp,
    /// First operand wire.
    pub a: WireId,
    /// Second operand wire (ignored for NOT).
    pub b: WireId,
}

/// A boolean circuit in topological order.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Number of input wires.
    pub n_inputs: usize,
    /// Gates, in evaluation order.
    pub gates: Vec<Gate>,
    /// Wires whose values are the circuit outputs.
    pub outputs: Vec<WireId>,
}

impl Circuit {
    /// Total number of wires (inputs + one per gate).
    pub fn n_wires(&self) -> usize {
        self.n_inputs + self.gates.len()
    }

    /// Number of gates — the paper's circuit-size measure
    /// `C(w, |V_S|, |V_R|)`.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Validates wire references (each gate may only read wires defined
    /// before it).
    pub fn validate(&self) -> Result<(), CircuitError> {
        for (i, gate) in self.gates.iter().enumerate() {
            let limit = self.n_inputs + i;
            if gate.a >= limit || (gate.op.arity() == 2 && gate.b >= limit) {
                return Err(CircuitError::DanglingWire {
                    wire: gate.a.max(gate.b),
                });
            }
        }
        let limit = self.n_wires();
        for &o in &self.outputs {
            if o >= limit {
                return Err(CircuitError::DanglingWire { wire: o });
            }
        }
        Ok(())
    }

    /// Plain (non-garbled) evaluation: the correctness oracle for the
    /// garbled evaluation.
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
        if inputs.len() != self.n_inputs {
            return Err(CircuitError::InputArity {
                expected: self.n_inputs,
                got: inputs.len(),
            });
        }
        let mut wires = Vec::with_capacity(self.n_wires());
        wires.extend_from_slice(inputs);
        for gate in &self.gates {
            let a = wires[gate.a];
            let b = if gate.op.arity() == 2 {
                wires[gate.b]
            } else {
                a
            };
            wires.push(gate.op.apply(a, b));
        }
        Ok(self.outputs.iter().map(|&o| wires[o]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_truth_tables() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(GateOp::And.apply(a, b), a && b);
            assert_eq!(GateOp::Or.apply(a, b), a || b);
            assert_eq!(GateOp::Xor.apply(a, b), a ^ b);
            assert_eq!(GateOp::Xnor.apply(a, b), !(a ^ b));
        }
        assert!(GateOp::Not.apply(false, false));
        assert!(!GateOp::Not.apply(true, true));
    }

    #[test]
    fn evaluates_small_circuit() {
        // out = (i0 AND i1) XOR i2
        let c = Circuit {
            n_inputs: 3,
            gates: vec![
                Gate {
                    op: GateOp::And,
                    a: 0,
                    b: 1,
                },
                Gate {
                    op: GateOp::Xor,
                    a: 3,
                    b: 2,
                },
            ],
            outputs: vec![4],
        };
        c.validate().unwrap();
        assert_eq!(c.eval(&[true, true, false]).unwrap(), vec![true]);
        assert_eq!(c.eval(&[true, true, true]).unwrap(), vec![false]);
        assert_eq!(c.eval(&[false, true, true]).unwrap(), vec![true]);
    }

    #[test]
    fn arity_checked() {
        let c = Circuit {
            n_inputs: 2,
            gates: vec![],
            outputs: vec![0],
        };
        assert!(matches!(
            c.eval(&[true]),
            Err(CircuitError::InputArity {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn validate_catches_dangling_wires() {
        let c = Circuit {
            n_inputs: 1,
            gates: vec![Gate {
                op: GateOp::And,
                a: 0,
                b: 5,
            }],
            outputs: vec![1],
        };
        assert!(matches!(
            c.validate(),
            Err(CircuitError::DanglingWire { .. })
        ));
        let c = Circuit {
            n_inputs: 1,
            gates: vec![],
            outputs: vec![3],
        };
        assert!(c.validate().is_err());
    }
}
