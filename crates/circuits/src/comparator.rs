//! Comparator circuits with the paper's exact gate counts (A.1.2):
//! equality of two `w`-bit numbers in `2w − 1` gates, less-than in
//! `5w − 3` gates.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateOp, WireId};

/// Gate count of the equality comparator: `Ge = 2w − 1`.
pub fn equality_gate_count(w: usize) -> usize {
    2 * w - 1
}

/// Gate count of the less-than comparator: `Gl = 5w − 3`.
pub fn less_than_gate_count(w: usize) -> usize {
    5 * w - 3
}

/// Appends an equality comparator over two little-endian `w`-bit operands
/// already present in the builder. Returns the result wire.
///
/// Construction: one XNOR per bit (`w` gates) + an AND-tree (`w − 1`
/// gates) = `2w − 1`.
pub fn append_equality(b: &mut CircuitBuilder, a: &[WireId], c: &[WireId]) -> WireId {
    assert_eq!(a.len(), c.len(), "operands must share a width");
    assert!(!a.is_empty());
    let eqs: Vec<WireId> = a.iter().zip(c).map(|(&x, &y)| b.xnor(x, y)).collect();
    b.tree(GateOp::And, &eqs).expect("nonempty")
}

/// Appends a less-than comparator (`a < c`, operands little-endian).
/// Returns the result wire.
///
/// Construction, MSB-down recurrence
/// `lt = lt_msb ∨ (eq_msb ∧ lt_rest)`:
/// * per bit: `¬a_i ∧ c_i` — 2 gates (`w` bits → `2w`),
/// * `eq_i = XNOR(a_i, c_i)` for all but the LSB — `w − 1` gates,
/// * chain combine: `AND` + `OR` per non-LSB bit — `2(w − 1)` gates.
///
/// Total `2w + (w−1) + 2(w−1) = 5w − 3`, matching the paper.
pub fn append_less_than(b: &mut CircuitBuilder, a: &[WireId], c: &[WireId]) -> WireId {
    assert_eq!(a.len(), c.len(), "operands must share a width");
    assert!(!a.is_empty());
    let w = a.len();
    // lt_i = ¬a_i ∧ c_i for every bit.
    let lt_bits: Vec<WireId> = a
        .iter()
        .zip(c)
        .map(|(&x, &y)| {
            let nx = b.not(x);
            b.and(nx, y)
        })
        .collect();
    // Fold from the LSB upward: acc = lt_i ∨ (eq_i ∧ acc).
    let mut acc = lt_bits[0];
    for i in 1..w {
        let eq = b.xnor(a[i], c[i]);
        let keep = b.and(eq, acc);
        acc = b.or(lt_bits[i], keep);
    }
    acc
}

/// Builds a standalone equality circuit over two `w`-bit inputs
/// (first operand wires `0..w`, second `w..2w`, little-endian).
pub fn equality_circuit(w: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.inputs(w);
    let c = b.inputs(w);
    let out = append_equality(&mut b, &a, &c);
    b.output(out);
    b.build()
}

/// Builds a standalone less-than circuit (`a < c`).
pub fn less_than_circuit(w: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let a = b.inputs(w);
    let c = b.inputs(w);
    let out = append_less_than(&mut b, &a, &c);
    b.output(out);
    b.build()
}

/// Encodes a number as `w` little-endian input bits.
pub fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (x >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_gate_count_is_2w_minus_1() {
        for w in [1usize, 4, 8, 32] {
            let c = equality_circuit(w);
            assert_eq!(c.gate_count(), equality_gate_count(w), "w={w}");
        }
    }

    #[test]
    fn less_than_gate_count_is_5w_minus_3() {
        for w in [1usize, 4, 8, 32] {
            let c = less_than_circuit(w);
            assert_eq!(c.gate_count(), less_than_gate_count(w), "w={w}");
        }
    }

    #[test]
    fn equality_exhaustive_4bit() {
        let c = equality_circuit(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut input = to_bits(a, 4);
                input.extend(to_bits(b, 4));
                assert_eq!(c.eval(&input).unwrap(), vec![a == b], "a={a} b={b}");
            }
        }
    }

    #[test]
    fn less_than_exhaustive_4bit() {
        let c = less_than_circuit(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut input = to_bits(a, 4);
                input.extend(to_bits(b, 4));
                assert_eq!(c.eval(&input).unwrap(), vec![a < b], "a={a} b={b}");
            }
        }
    }

    #[test]
    fn wide_operands_spot_checks() {
        let c = less_than_circuit(32);
        for (a, b) in [
            (0u64, 1u64),
            (1, 0),
            (0xffff_fffe, 0xffff_ffff),
            (0xffff_ffff, 0xffff_ffff),
            (0x8000_0000, 0x7fff_ffff),
        ] {
            let mut input = to_bits(a, 32);
            input.extend(to_bits(b, 32));
            assert_eq!(c.eval(&input).unwrap(), vec![a < b], "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn paper_constants_at_w32() {
        // The Appendix sets Ge and Gl at w = 32.
        assert_eq!(equality_gate_count(32), 63);
        assert_eq!(less_than_gate_count(32), 157);
    }
}
