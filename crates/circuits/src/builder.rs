//! A small fluent builder for boolean circuits.

use crate::circuit::{Circuit, Gate, GateOp, WireId};

/// Incremental circuit construction. Inputs are declared first; gates
/// append in topological order automatically.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    n_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
}

impl CircuitBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares one input wire.
    pub fn input(&mut self) -> WireId {
        assert!(
            self.gates.is_empty(),
            "declare all inputs before adding gates"
        );
        let id = self.n_inputs;
        self.n_inputs += 1;
        id
    }

    /// Declares `n` input wires.
    pub fn inputs(&mut self, n: usize) -> Vec<WireId> {
        (0..n).map(|_| self.input()).collect()
    }

    fn gate(&mut self, op: GateOp, a: WireId, b: WireId) -> WireId {
        let out = self.n_inputs + self.gates.len();
        self.gates.push(Gate { op, a, b });
        out
    }

    /// `a AND b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateOp::And, a, b)
    }

    /// `a OR b`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateOp::Or, a, b)
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateOp::Xor, a, b)
    }

    /// `a XNOR b` (bit equality).
    pub fn xnor(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateOp::Xnor, a, b)
    }

    /// `NOT a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.gate(GateOp::Not, a, a)
    }

    /// Reduces wires with a balanced binary tree of `op` (e.g. OR-merge).
    /// Returns `None` for an empty list.
    pub fn tree(&mut self, op: GateOp, wires: &[WireId]) -> Option<WireId> {
        match wires.len() {
            0 => None,
            1 => Some(wires[0]),
            _ => {
                let mut layer = wires.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for chunk in layer.chunks(2) {
                        if chunk.len() == 2 {
                            next.push(self.gate(op, chunk[0], chunk[1]));
                        } else {
                            next.push(chunk[0]);
                        }
                    }
                    layer = next;
                }
                Some(layer[0])
            }
        }
    }

    /// Marks a wire as a circuit output.
    pub fn output(&mut self, wire: WireId) {
        self.outputs.push(wire);
    }

    /// Finishes construction.
    pub fn build(self) -> Circuit {
        let c = Circuit {
            n_inputs: self.n_inputs,
            gates: self.gates,
            outputs: self.outputs,
        };
        debug_assert!(c.validate().is_ok());
        c
    }

    /// Gates added so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_majority_gate() {
        // maj(a,b,c) = ab + ac + bc
        let mut b = CircuitBuilder::new();
        let ins = b.inputs(3);
        let ab = b.and(ins[0], ins[1]);
        let ac = b.and(ins[0], ins[2]);
        let bc = b.and(ins[1], ins[2]);
        let t = b.tree(GateOp::Or, &[ab, ac, bc]).unwrap();
        b.output(t);
        let c = b.build();
        for bits in 0..8u8 {
            let input: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = input.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(c.eval(&input).unwrap(), vec![expect], "bits={bits:03b}");
        }
    }

    #[test]
    fn tree_gate_counts() {
        let mut b = CircuitBuilder::new();
        let ins = b.inputs(7);
        b.tree(GateOp::Or, &ins);
        // An n-leaf tree needs n-1 internal nodes.
        assert_eq!(b.gate_count(), 6);
    }

    #[test]
    fn tree_degenerate_cases() {
        let mut b = CircuitBuilder::new();
        let i = b.input();
        assert_eq!(b.tree(GateOp::And, &[]), None);
        assert_eq!(b.tree(GateOp::And, &[i]), Some(i));
        assert_eq!(b.gate_count(), 0);
    }

    #[test]
    #[should_panic(expected = "inputs before")]
    fn inputs_must_come_first() {
        let mut b = CircuitBuilder::new();
        let i = b.input();
        b.not(i);
        b.input();
    }
}
