//! The Paillier cryptosystem (additively homomorphic public-key
//! encryption), implemented from scratch on `minshare-bignum`.
//!
//! Standard simplified instantiation with `g = n + 1`:
//!
//! * keygen: `n = p·q` for equal-size primes, `λ = lcm(p−1, q−1)`,
//!   `μ = λ⁻¹ mod n`;
//! * `Enc(m; r) = (1 + m·n) · rⁿ mod n²` for `r ∈r Z_n^*`
//!   (using `(1+n)^m ≡ 1 + m·n (mod n²)`);
//! * `Dec(c) = L(c^λ mod n²) · μ mod n` with `L(x) = (x − 1)/n`;
//! * homomorphism: `Enc(a)·Enc(b) = Enc(a+b)`, `Enc(a)^k = Enc(a·k)`.

use minshare_bignum::montgomery::MontgomeryCtx;
use minshare_bignum::prime::generate_prime;
use minshare_bignum::random::random_range;
use minshare_bignum::UBig;
use rand::Rng;

use crate::error::AggregateError;

/// Minimum supported modulus width. Far below cryptographic strength —
/// the floor only guards against degenerate arithmetic in tests.
const MIN_MODULUS_BITS: u64 = 16;

/// The public (encryption) key: the modulus `n` plus cached contexts.
#[derive(Clone, Debug)]
pub struct PublicKey {
    n: UBig,
    n_squared: UBig,
    /// Montgomery context modulo n² for fast `rⁿ` and ciphertext ops;
    /// `Arc`-shared so cloning a key (every homomorphic op holds one)
    /// never recomputes or copies the precomputed `R mod n²` state.
    ctx: std::sync::Arc<MontgomeryCtx>,
}

/// The private (decryption) key.
#[derive(Clone, Debug)]
pub struct PrivateKey {
    /// The public half.
    pub public: PublicKey,
    lambda: UBig,
    mu: UBig,
}

/// A Paillier ciphertext (an element of `Z_{n²}^*`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ciphertext(UBig);

impl PublicKey {
    /// Reconstructs a public key from a received modulus. The modulus is
    /// taken on faith structurally (odd, > 1) — appropriate in the
    /// semi-honest model where the peer generated it correctly; a
    /// malformed modulus only breaks correctness, not the receiver's
    /// privacy (the receiver sends nothing secret under this key).
    pub fn from_modulus_unchecked(n: UBig) -> Result<Self, AggregateError> {
        Self::from_modulus(n)
    }

    fn from_modulus(n: UBig) -> Result<Self, AggregateError> {
        let n_squared = n.square();
        let ctx =
            std::sync::Arc::new(MontgomeryCtx::new(&n_squared).map_err(AggregateError::Arithmetic)?);
        Ok(PublicKey { n, n_squared, ctx })
    }

    /// The modulus `n` (the plaintext space is `[0, n)`).
    pub fn modulus(&self) -> &UBig {
        &self.n
    }

    /// Bit width of the modulus.
    pub fn modulus_bits(&self) -> u64 {
        self.n.bit_len()
    }

    /// Bytes needed to serialize one ciphertext (fixed width `⌈2k/8⌉`).
    pub fn ciphertext_bytes(&self) -> usize {
        (self.n_squared.bit_len() as usize).div_ceil(8)
    }

    /// Encrypts `m ∈ [0, n)` with fresh randomness.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &UBig,
        rng: &mut R,
    ) -> Result<Ciphertext, AggregateError> {
        if m >= &self.n {
            return Err(AggregateError::PlaintextTooLarge);
        }
        // (1 + m·n) mod n²
        let gm = UBig::one()
            .add_ref(&m.mul_ref(&self.n))
            .rem_ref(&self.n_squared)?;
        let rn = self.random_mask(rng)?;
        Ok(Ciphertext(self.ctx.mul(&gm, &rn)))
    }

    /// Encrypts a `u64` convenience value.
    pub fn encrypt_u64<R: Rng + ?Sized>(
        &self,
        m: u64,
        rng: &mut R,
    ) -> Result<Ciphertext, AggregateError> {
        self.encrypt(&UBig::from(m), rng)
    }

    /// A fresh masking factor `rⁿ mod n²`.
    fn random_mask<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<UBig, AggregateError> {
        // r ∈ [1, n); gcd(r, n) = 1 with overwhelming probability for
        // honest parameters — retry on the pathological case.
        loop {
            let r = random_range(rng, &UBig::one(), &self.n);
            if r.gcd(&self.n).is_one() {
                return Ok(self.ctx.pow(&r, &self.n));
            }
        }
    }

    /// Homomorphic addition: `Enc(a) ⊞ Enc(b) = Enc(a + b mod n)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext(self.ctx.mul(&a.0, &b.0))
    }

    /// Homomorphic plaintext addition: `Enc(a) ⊞ m = Enc(a + m mod n)`.
    pub fn add_plain(&self, a: &Ciphertext, m: &UBig) -> Result<Ciphertext, AggregateError> {
        if m >= &self.n {
            return Err(AggregateError::PlaintextTooLarge);
        }
        let gm = UBig::one()
            .add_ref(&m.mul_ref(&self.n))
            .rem_ref(&self.n_squared)?;
        Ok(Ciphertext(self.ctx.mul(&a.0, &gm)))
    }

    /// Homomorphic scalar multiplication: `Enc(a)^k = Enc(a·k mod n)`.
    pub fn mul_plain(&self, a: &Ciphertext, k: &UBig) -> Ciphertext {
        Ciphertext(self.ctx.pow(&a.0, k))
    }

    /// Re-randomizes a ciphertext (multiplies by a fresh `Enc(0)`), so
    /// the result is unlinkable to its inputs — required before handing
    /// an aggregate back to the key holder.
    pub fn rerandomize<R: Rng + ?Sized>(
        &self,
        a: &Ciphertext,
        rng: &mut R,
    ) -> Result<Ciphertext, AggregateError> {
        let mask = self.random_mask(rng)?;
        Ok(Ciphertext(self.ctx.mul(&a.0, &mask)))
    }

    /// The additive identity `Enc(0)` with fresh randomness.
    pub fn encrypt_zero<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Ciphertext, AggregateError> {
        self.encrypt(&UBig::zero(), rng)
    }

    /// Serializes a ciphertext at fixed width.
    pub fn encode_ciphertext(&self, c: &Ciphertext) -> Result<Vec<u8>, AggregateError> {
        Ok(c.0.to_be_bytes_padded(self.ciphertext_bytes())?)
    }

    /// Parses and structurally validates a ciphertext.
    pub fn decode_ciphertext(&self, bytes: &[u8]) -> Result<Ciphertext, AggregateError> {
        if bytes.len() != self.ciphertext_bytes() {
            return Err(AggregateError::InvalidCiphertext);
        }
        let x = UBig::from_be_bytes(bytes);
        if x.is_zero() || x >= self.n_squared {
            return Err(AggregateError::InvalidCiphertext);
        }
        Ok(Ciphertext(x))
    }
}

impl PrivateKey {
    /// Generates a keypair with an (approximately) `bits`-bit modulus.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Result<Self, AggregateError> {
        if bits < MIN_MODULUS_BITS {
            return Err(AggregateError::KeyTooSmall {
                bits,
                minimum: MIN_MODULUS_BITS,
            });
        }
        let half = bits / 2;
        let attempts = 1_000_000;
        loop {
            let p =
                generate_prime(rng, half, attempts).map_err(|e| AggregateError::KeyGeneration {
                    detail: e.to_string(),
                })?;
            let q = generate_prime(rng, bits - half, attempts).map_err(|e| {
                AggregateError::KeyGeneration {
                    detail: e.to_string(),
                }
            })?;
            if p == q {
                continue;
            }
            let n = p.mul_ref(&q);
            let p1 = p.sub_small(1).map_err(AggregateError::Arithmetic)?;
            let q1 = q.sub_small(1).map_err(AggregateError::Arithmetic)?;
            let gcd = p1.gcd(&q1);
            let lambda = p1
                .mul_ref(&q1)
                .div_rem(&gcd)
                .map_err(AggregateError::Arithmetic)?
                .0;
            // μ = λ⁻¹ mod n; exists iff gcd(λ, n) = 1, guaranteed for
            // distinct primes (λ divides (p-1)(q-1), coprime to pq).
            let mu = match lambda.mod_inv(&n) {
                Ok(mu) => mu,
                Err(_) => continue,
            };
            let public = PublicKey::from_modulus(n)?;
            return Ok(PrivateKey { public, lambda, mu });
        }
    }

    /// Decrypts a ciphertext: `L(c^λ mod n²) · μ mod n`.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<UBig, AggregateError> {
        let pk = &self.public;
        if c.0.is_zero() || c.0 >= pk.n_squared {
            return Err(AggregateError::InvalidCiphertext);
        }
        let x = pk.ctx.pow(&c.0, &self.lambda);
        // L(x) = (x - 1) / n — exact by construction.
        let l = x
            .sub_small(1)
            .map_err(AggregateError::Arithmetic)?
            .div_rem(&pk.n)
            .map_err(AggregateError::Arithmetic)?
            .0;
        l.mod_mul(&self.mu, &pk.n)
            .map_err(AggregateError::Arithmetic)
    }

    /// Decrypts to `u64` if the plaintext fits.
    pub fn decrypt_u64(&self, c: &Ciphertext) -> Result<Option<u64>, AggregateError> {
        Ok(self.decrypt(c)?.to_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: u64) -> PrivateKey {
        let mut rng = StdRng::seed_from_u64(0x9a111e4);
        PrivateKey::generate(&mut rng, bits).unwrap()
    }

    #[test]
    fn round_trip_small_values() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(1);
        for m in [0u64, 1, 2, 42, 1_000_000] {
            let c = sk.public.encrypt_u64(m, &mut rng).unwrap();
            assert_eq!(sk.decrypt_u64(&c).unwrap(), Some(m), "m={m}");
        }
    }

    #[test]
    fn round_trip_near_modulus() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(2);
        let m = sk.public.modulus().sub_small(1).unwrap();
        let c = sk.public.encrypt(&m, &mut rng).unwrap();
        assert_eq!(sk.decrypt(&c).unwrap(), m);
    }

    #[test]
    fn rejects_oversized_plaintext() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(3);
        let m = sk.public.modulus().clone();
        assert_eq!(
            sk.public.encrypt(&m, &mut rng).unwrap_err(),
            AggregateError::PlaintextTooLarge
        );
    }

    #[test]
    fn encryption_is_randomized() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(4);
        let a = sk.public.encrypt_u64(7, &mut rng).unwrap();
        let b = sk.public.encrypt_u64(7, &mut rng).unwrap();
        assert_ne!(a, b, "same plaintext must encrypt differently");
        assert_eq!(sk.decrypt_u64(&a).unwrap(), sk.decrypt_u64(&b).unwrap());
    }

    #[test]
    fn additive_homomorphism() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(5);
        let a = sk.public.encrypt_u64(1234, &mut rng).unwrap();
        let b = sk.public.encrypt_u64(8766, &mut rng).unwrap();
        let sum = sk.public.add(&a, &b);
        assert_eq!(sk.decrypt_u64(&sum).unwrap(), Some(10_000));
    }

    #[test]
    fn plaintext_addition_and_scalar_multiplication() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(6);
        let a = sk.public.encrypt_u64(100, &mut rng).unwrap();
        let plus = sk.public.add_plain(&a, &UBig::from(23u64)).unwrap();
        assert_eq!(sk.decrypt_u64(&plus).unwrap(), Some(123));
        let times = sk.public.mul_plain(&a, &UBig::from(7u64));
        assert_eq!(sk.decrypt_u64(&times).unwrap(), Some(700));
    }

    #[test]
    fn sums_wrap_modulo_n() {
        let sk = keypair(32);
        let mut rng = StdRng::seed_from_u64(7);
        let near = sk.public.modulus().sub_small(1).unwrap();
        let a = sk.public.encrypt(&near, &mut rng).unwrap();
        let b = sk.public.encrypt_u64(2, &mut rng).unwrap();
        let sum = sk.public.add(&a, &b);
        // (n-1) + 2 ≡ 1 (mod n)
        assert_eq!(sk.decrypt(&sum).unwrap(), UBig::one());
    }

    #[test]
    fn rerandomization_preserves_plaintext_changes_ciphertext() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(8);
        let a = sk.public.encrypt_u64(55, &mut rng).unwrap();
        let b = sk.public.rerandomize(&a, &mut rng).unwrap();
        assert_ne!(a, b);
        assert_eq!(sk.decrypt_u64(&b).unwrap(), Some(55));
    }

    #[test]
    fn ciphertext_codec() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(9);
        let c = sk.public.encrypt_u64(9001, &mut rng).unwrap();
        let bytes = sk.public.encode_ciphertext(&c).unwrap();
        assert_eq!(bytes.len(), sk.public.ciphertext_bytes());
        let back = sk.public.decode_ciphertext(&bytes).unwrap();
        assert_eq!(back, c);
        assert!(sk.public.decode_ciphertext(&bytes[1..]).is_err());
        let zeros = vec![0u8; sk.public.ciphertext_bytes()];
        assert!(sk.public.decode_ciphertext(&zeros).is_err());
    }

    #[test]
    fn key_floor_enforced() {
        let mut rng = StdRng::seed_from_u64(10);
        assert!(matches!(
            PrivateKey::generate(&mut rng, 8),
            Err(AggregateError::KeyTooSmall { .. })
        ));
    }

    #[test]
    fn many_term_summation() {
        let sk = keypair(64);
        let mut rng = StdRng::seed_from_u64(11);
        let mut acc = sk.public.encrypt_zero(&mut rng).unwrap();
        let mut expect = 0u64;
        for i in 1..=50u64 {
            let c = sk.public.encrypt_u64(i, &mut rng).unwrap();
            acc = sk.public.add(&acc, &c);
            expect += i;
        }
        assert_eq!(sk.decrypt_u64(&acc).unwrap(), Some(expect));
    }
}
