//! # minshare-aggregate
//!
//! The paper's §7 closes with: *"Can we formalize models of minimal
//! disclosure and discover corresponding protocols for other database
//! operations such as aggregations?"* This crate implements that
//! direction: a **private intersection-sum** protocol — the construction
//! that, years after the paper, shipped as Google's Private Join &
//! Compute (Ion et al.) and is a direct descendant of the paper's
//! commutative-encryption machinery.
//!
//! Query answered: `S` holds pairs `(v, w_v)` (a join value and an
//! integer weight); `R` holds a set `V_R`. Both parties learn
//!
//! ```sql
//! select count(*), sum(S.w) from S, R where S.v = R.v
//! ```
//!
//! and nothing else (plus the declared sizes `|V_S|`, `|V_R|`): in
//! particular no individual weight `w_v` and no individual membership is
//! revealed to anyone.
//!
//! Construction = the paper's blind-exponentiation core + additively
//! homomorphic encryption:
//!
//! * [`paillier`] — the Paillier cryptosystem, built from scratch on
//!   `minshare-bignum` (keygen on fresh primes, `Enc(m) = (1+n)^m·r^n
//!   mod n²`, ciphertext addition, re-randomization),
//! * [`intersection_sum`] — the two-party protocol: tags are
//!   commutatively double-encrypted exactly as in the paper's
//!   intersection-size protocol (so neither side can identify matches),
//!   while the weights ride alongside as Paillier ciphertexts that the
//!   *non-key-holding* party sums blindly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod intersection_sum;
pub mod paillier;

pub use error::AggregateError;
