//! Error type for the aggregation layer.

use std::fmt;

use minshare::ProtocolError;
use minshare_bignum::BigNumError;

/// Errors from Paillier operations and the intersection-sum protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateError {
    /// Key generation could not find suitable primes.
    KeyGeneration {
        /// Underlying failure.
        detail: String,
    },
    /// A plaintext is outside the message space `[0, n)`.
    PlaintextTooLarge,
    /// A ciphertext is structurally invalid (zero, or ≥ n²).
    InvalidCiphertext,
    /// The requested key size is too small to be meaningful.
    KeyTooSmall {
        /// Requested modulus bits.
        bits: u64,
        /// Minimum supported.
        minimum: u64,
    },
    /// An underlying protocol failure.
    Protocol(ProtocolError),
    /// An underlying arithmetic failure.
    Arithmetic(BigNumError),
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::KeyGeneration { detail } => {
                write!(f, "Paillier key generation failed: {detail}")
            }
            AggregateError::PlaintextTooLarge => {
                write!(f, "plaintext outside the message space [0, n)")
            }
            AggregateError::InvalidCiphertext => write!(f, "structurally invalid ciphertext"),
            AggregateError::KeyTooSmall { bits, minimum } => {
                write!(f, "{bits}-bit modulus below the {minimum}-bit minimum")
            }
            AggregateError::Protocol(e) => write!(f, "protocol: {e}"),
            AggregateError::Arithmetic(e) => write!(f, "arithmetic: {e}"),
        }
    }
}

impl std::error::Error for AggregateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AggregateError::Protocol(e) => Some(e),
            AggregateError::Arithmetic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for AggregateError {
    fn from(e: ProtocolError) -> Self {
        AggregateError::Protocol(e)
    }
}

impl From<BigNumError> for AggregateError {
    fn from(e: BigNumError) -> Self {
        AggregateError::Arithmetic(e)
    }
}

impl From<minshare_net::NetError> for AggregateError {
    fn from(e: minshare_net::NetError) -> Self {
        AggregateError::Protocol(ProtocolError::Net(e))
    }
}

impl From<minshare_crypto::CryptoError> for AggregateError {
    fn from(e: minshare_crypto::CryptoError) -> Self {
        AggregateError::Protocol(ProtocolError::Crypto(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AggregateError = BigNumError::DivisionByZero.into();
        assert!(e.to_string().contains("arithmetic"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(AggregateError::PlaintextTooLarge
            .to_string()
            .contains("message space"));
    }
}
