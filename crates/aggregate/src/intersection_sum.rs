//! Private intersection-sum: `count` and `Σ w_v` over the join, nothing
//! else.
//!
//! Composition of the paper's intersection-size machinery (§5.1) with
//! Paillier ciphertexts riding alongside the blinded tags:
//!
//! ```text
//!  S (v, w_v; keys e_S, Paillier sk)        R (V_R; key e_R, Paillier pk)
//!  ── pk ──────────────────────────────▶
//!                    ◀── Y_R = sort f_eR(h(V_R)) ──
//!  ── Z_R = sort f_eS(Y_R) ────────────▶
//!  ── sort[(f_eS(h(u)), Enc_pk(w_u))] ─▶
//!                                           t_u = f_eR(f_eS(h(u)));
//!                                           matched ⟺ t_u ∈ Z_R;
//!                    ◀── (count, ⊞ Enc(w_u) re-randomized) ──
//!  ── Dec → sum ───────────────────────▶
//! ```
//!
//! **Disclosure** (semi-honest): both parties learn the intersection
//! *count* and the weight *sum*; `S` additionally learns `|V_R|` and `R`
//! learns `|V_S|`. Neither learns which values matched (`Z_R` is
//! reordered exactly as in §5.1, and the summing party holds only the
//! public key, so individual `Enc(w_u)` stay opaque).
//!
//! **Correctness bound**: the sum is computed modulo the Paillier modulus
//! `n`; callers must size the key so `Σ w < n`.

use std::collections::BTreeSet;

use minshare::prepare::prepare_set;
use minshare::stats::OpCounters;
use minshare::wire::{require_strictly_sorted, Message};
use minshare::ProtocolError;
use minshare_bignum::UBig;
use minshare_crypto::QrGroup;
use minshare_net::Transport;
use rand::Rng;

use crate::error::AggregateError;
use crate::paillier::{Ciphertext, PrivateKey, PublicKey};

/// What the weighted sender learns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionSumSenderOutput {
    /// `|V_S ∩ V_R|`.
    pub intersection_count: u64,
    /// `Σ w_v` over the intersection (mod the Paillier modulus).
    pub sum: UBig,
    /// `|V_R|`.
    pub peer_set_size: usize,
    /// Commutative-cipher cost units.
    pub ops: OpCounters,
    /// Paillier operations performed (encryptions + decryptions).
    pub paillier_ops: u64,
}

/// What the receiver learns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionSumReceiverOutput {
    /// `|V_S ∩ V_R|`.
    pub intersection_count: u64,
    /// `Σ w_v` over the intersection.
    pub sum: UBig,
    /// `|V_S|`.
    pub peer_set_size: usize,
    /// Commutative-cipher cost units.
    pub ops: OpCounters,
    /// Paillier operations performed (homomorphic additions etc.).
    pub paillier_ops: u64,
}

/// Frame tags for the messages that are not part of the core wire
/// vocabulary.
const TAG_PUBLIC_KEY: u8 = 0x50;
const TAG_AGGREGATE: u8 = 0x51;
const TAG_SUM: u8 = 0x52;

fn malformed(detail: &str) -> AggregateError {
    AggregateError::Protocol(ProtocolError::MalformedMessage {
        detail: detail.to_string(),
    })
}

fn encode_public_key(pk: &PublicKey) -> Vec<u8> {
    let n = pk.modulus().to_be_bytes();
    let mut out = Vec::with_capacity(5 + n.len());
    out.push(TAG_PUBLIC_KEY);
    out.extend_from_slice(&(n.len() as u32).to_be_bytes());
    out.extend_from_slice(&n);
    out
}

fn decode_public_key(frame: &[u8]) -> Result<UBig, AggregateError> {
    if frame.len() < 5 || frame[0] != TAG_PUBLIC_KEY {
        return Err(malformed("expected public-key frame"));
    }
    let len = u32::from_be_bytes([frame[1], frame[2], frame[3], frame[4]]) as usize;
    if frame.len() != 5 + len {
        return Err(malformed("public-key frame length mismatch"));
    }
    let n = UBig::from_be_bytes(&frame[5..]);
    if n < UBig::from(15u64) || n.is_even() {
        return Err(malformed("implausible Paillier modulus"));
    }
    Ok(n)
}

fn encode_aggregate(
    pk: &PublicKey,
    count: u64,
    acc: &Ciphertext,
) -> Result<Vec<u8>, AggregateError> {
    let ct = pk.encode_ciphertext(acc)?;
    let mut out = Vec::with_capacity(9 + ct.len());
    out.push(TAG_AGGREGATE);
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&ct);
    Ok(out)
}

fn decode_aggregate(pk: &PublicKey, frame: &[u8]) -> Result<(u64, Ciphertext), AggregateError> {
    if frame.len() != 9 + pk.ciphertext_bytes() || frame[0] != TAG_AGGREGATE {
        return Err(malformed("expected aggregate frame"));
    }
    let mut cnt = [0u8; 8];
    cnt.copy_from_slice(&frame[1..9]);
    let ct = pk.decode_ciphertext(&frame[9..])?;
    Ok((u64::from_be_bytes(cnt), ct))
}

fn encode_sum(pk: &PublicKey, sum: &UBig) -> Result<Vec<u8>, AggregateError> {
    let width = (pk.modulus_bits() as usize).div_ceil(8);
    let body = sum.to_be_bytes_padded(width)?;
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(TAG_SUM);
    out.extend_from_slice(&body);
    Ok(out)
}

fn decode_sum(pk: &PublicKey, frame: &[u8]) -> Result<UBig, AggregateError> {
    let width = (pk.modulus_bits() as usize).div_ceil(8);
    if frame.len() != 1 + width || frame[0] != TAG_SUM {
        return Err(malformed("expected sum frame"));
    }
    Ok(UBig::from_be_bytes(&frame[1..]))
}

fn expect_codewords<T: Transport + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
) -> Result<Vec<UBig>, AggregateError> {
    match Message::decode(&transport.recv()?, group).map_err(AggregateError::Protocol)? {
        Message::Codewords(list) => Ok(list),
        other => Err(AggregateError::Protocol(ProtocolError::UnexpectedMessage {
            expected: "codewords",
            got: other.kind(),
        })),
    }
}

/// Runs the weighted-sender (`S`) side. `entries` holds `(value, weight)`
/// pairs; `key` is `S`'s Paillier keypair (the secret stays here).
pub fn run_sender<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    key: &PrivateKey,
    entries: &[(Vec<u8>, u64)],
    rng: &mut R,
) -> Result<IntersectionSumSenderOutput, AggregateError> {
    let mut ops = OpCounters::default();
    let mut paillier_ops = 0u64;
    let pk = &key.public;

    // Round 1: publish the encryption key.
    transport.send(&encode_public_key(pk))?;

    // Prepare V_S with weights (first weight wins on duplicate values,
    // consistent with the set semantics of prepare_set).
    let values: Vec<Vec<u8>> = entries.iter().map(|(v, _)| v.clone()).collect();
    let weights: std::collections::BTreeMap<&Vec<u8>, u64> = entries
        .iter()
        .rev() // first occurrence wins after rev+collect
        .map(|(v, w)| (v, *w))
        .collect();
    let prepared = prepare_set(group, &values, &mut ops).map_err(AggregateError::Protocol)?;
    let e_s = group.gen_key(rng);

    // Round 2: receive Y_R.
    let yr = expect_codewords(transport, group)?;
    require_strictly_sorted(&yr, "Y_R").map_err(AggregateError::Protocol)?;
    let peer_set_size = yr.len();

    // Round 3: Z_R = sorted f_eS(Y_R) — reordered, as in §5.1, so R
    // cannot identify which of its values matched.
    let mut zr: Vec<UBig> = yr
        .iter()
        .map(|y| {
            ops.encryptions += 1;
            group.encrypt(&e_s, y)
        })
        .collect();
    zr.sort();
    transport.send(
        &Message::Codewords(zr)
            .encode(group)
            .map_err(AggregateError::Protocol)?,
    )?;

    // Round 4: blinded tags with encrypted weights, sorted by tag.
    let mut pairs: Vec<(UBig, Vec<u8>)> = prepared
        .entries
        .iter()
        .map(|(v, h)| {
            ops.encryptions += 1;
            let tag = group.encrypt(&e_s, h);
            paillier_ops += 1;
            let w = weights.get(v).copied().unwrap_or(0);
            let ct = pk.encrypt_u64(w, rng)?;
            Ok((tag, pk.encode_ciphertext(&ct)?))
        })
        .collect::<Result<_, AggregateError>>()?;
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    transport.send(
        &Message::PayloadPairs(pairs)
            .encode(group)
            .map_err(AggregateError::Protocol)?,
    )?;

    // Round 5: receive the blind aggregate; decrypt; return the sum.
    let (count, acc) = decode_aggregate(pk, &transport.recv()?)?;
    paillier_ops += 1;
    let sum = key.decrypt(&acc)?;
    transport.send(&encode_sum(pk, &sum)?)?;

    Ok(IntersectionSumSenderOutput {
        intersection_count: count,
        sum,
        peer_set_size,
        ops,
        paillier_ops,
    })
}

/// Runs the receiver (`R`) side on the plain set `values`.
pub fn run_receiver<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<IntersectionSumReceiverOutput, AggregateError> {
    let mut ops = OpCounters::default();
    let mut paillier_ops = 0u64;

    // Round 1: the sender's Paillier public key.
    let n = decode_public_key(&transport.recv()?)?;
    let pk = PublicKey::from_modulus_unchecked(n)?;

    // Round 2: Y_R.
    let prepared = prepare_set(group, values, &mut ops).map_err(AggregateError::Protocol)?;
    let e_r = group.gen_key(rng);
    let mut yr: Vec<UBig> = prepared
        .entries
        .iter()
        .map(|(_, h)| {
            ops.encryptions += 1;
            group.encrypt(&e_r, h)
        })
        .collect();
    yr.sort();
    let yr_len = yr.len();
    transport.send(
        &Message::Codewords(yr)
            .encode(group)
            .map_err(AggregateError::Protocol)?,
    )?;

    // Round 3: Z_R.
    let zr = expect_codewords(transport, group)?;
    require_strictly_sorted(&zr, "Z_R").map_err(AggregateError::Protocol)?;
    if zr.len() != yr_len {
        return Err(AggregateError::Protocol(ProtocolError::LengthMismatch {
            expected: yr_len,
            got: zr.len(),
        }));
    }
    let zr_set: BTreeSet<UBig> = zr.into_iter().collect();

    // Round 4: the sender's blinded tags + encrypted weights.
    let pairs =
        match Message::decode(&transport.recv()?, group).map_err(AggregateError::Protocol)? {
            Message::PayloadPairs(p) => p,
            other => {
                return Err(AggregateError::Protocol(ProtocolError::UnexpectedMessage {
                    expected: "payload-pairs",
                    got: other.kind(),
                }))
            }
        };
    let tags: Vec<UBig> = pairs.iter().map(|(t, _)| t.clone()).collect();
    require_strictly_sorted(&tags, "tag table").map_err(AggregateError::Protocol)?;
    let peer_set_size = pairs.len();

    // Blind match & sum.
    let mut count = 0u64;
    paillier_ops += 1;
    let mut acc = pk.encrypt_zero(rng)?;
    for (tag, ct_bytes) in &pairs {
        ops.encryptions += 1;
        let t = group.encrypt(&e_r, tag);
        if zr_set.contains(&t) {
            count += 1;
            let ct = pk.decode_ciphertext(ct_bytes)?;
            paillier_ops += 1;
            acc = pk.add(&acc, &ct);
        }
    }
    paillier_ops += 1;
    let acc = pk.rerandomize(&acc, rng)?;
    transport.send(&encode_aggregate(&pk, count, &acc)?)?;

    // Round 5: the plaintext sum comes back.
    let sum = decode_sum(&pk, &transport.recv()?)?;

    Ok(IntersectionSumReceiverOutput {
        intersection_count: count,
        sum,
        peer_set_size,
        ops,
        paillier_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minshare::run_two_party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(77);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn keypair() -> PrivateKey {
        let mut rng = StdRng::seed_from_u64(0xa99);
        PrivateKey::generate(&mut rng, 64).unwrap()
    }

    fn run(
        entries: &[(&str, u64)],
        vr: &[&str],
    ) -> (IntersectionSumSenderOutput, IntersectionSumReceiverOutput) {
        let g = group();
        let key = keypair();
        let entries: Vec<(Vec<u8>, u64)> = entries
            .iter()
            .map(|(v, w)| (v.as_bytes().to_vec(), *w))
            .collect();
        let vr: Vec<Vec<u8>> = vr.iter().map(|s| s.as_bytes().to_vec()).collect();
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                run_sender(t, &g, &key, &entries, &mut rng).map_err(|e| match e {
                    AggregateError::Protocol(p) => p,
                    other => ProtocolError::MalformedMessage {
                        detail: other.to_string(),
                    },
                })
            },
            |t| {
                let g = group();
                let mut rng = StdRng::seed_from_u64(2);
                run_receiver(t, &g, &vr, &mut rng).map_err(|e| match e {
                    AggregateError::Protocol(p) => p,
                    other => ProtocolError::MalformedMessage {
                        detail: other.to_string(),
                    },
                })
            },
        )
        .unwrap();
        (run.sender, run.receiver)
    }

    #[test]
    fn sums_over_the_intersection_only() {
        let (s, r) = run(
            &[("a", 10), ("b", 20), ("c", 30), ("d", 40)],
            &["b", "d", "e"],
        );
        assert_eq!(r.intersection_count, 2);
        assert_eq!(r.sum, UBig::from(60u64)); // b + d
        assert_eq!(s.sum, UBig::from(60u64));
        assert_eq!(s.intersection_count, 2);
        assert_eq!(r.peer_set_size, 4);
        assert_eq!(s.peer_set_size, 3);
    }

    #[test]
    fn empty_intersection_sums_to_zero() {
        let (s, r) = run(&[("a", 5)], &["z"]);
        assert_eq!(r.intersection_count, 0);
        assert_eq!(r.sum, UBig::zero());
        assert_eq!(s.sum, UBig::zero());
    }

    #[test]
    fn zero_weights_counted_but_invisible_in_sum() {
        let (_, r) = run(&[("a", 0), ("b", 7)], &["a", "b"]);
        assert_eq!(r.intersection_count, 2);
        assert_eq!(r.sum, UBig::from(7u64));
    }

    #[test]
    fn full_overlap() {
        let (_, r) = run(&[("x", 1), ("y", 2), ("z", 3)], &["x", "y", "z"]);
        assert_eq!(r.intersection_count, 3);
        assert_eq!(r.sum, UBig::from(6u64));
    }

    #[test]
    fn op_accounting_matches_size_protocol_shape() {
        // Same Ce structure as intersection-size: 2(|VS|+|VR|), plus
        // Paillier work |VS| enc + 1 dec on S, ~count adds on R.
        let (s, r) = run(&[("a", 1), ("b", 2), ("c", 3)], &["b", "c"]);
        assert_eq!(s.ops.total_ce() + r.ops.total_ce(), 2 * (3 + 2));
        assert_eq!(s.paillier_ops, 3 + 1);
        assert_eq!(r.paillier_ops, 1 + 2 + 1); // zero + 2 adds + rerandomize
    }

    #[test]
    fn oracle_randomized() {
        use rand::RngExt as _;
        let vocab = ["p", "q", "r", "s", "t"];
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..4 {
            let mut entries: Vec<(&str, u64)> = Vec::new();
            for v in &vocab {
                if rng.random_bool(0.7) {
                    entries.push((*v, rng.random_range(0..1000u64)));
                }
            }
            let mut vr: Vec<&str> = Vec::new();
            for v in &vocab {
                if rng.random_bool(0.5) {
                    vr.push(*v);
                }
            }
            let expect: u64 = entries
                .iter()
                .filter(|(v, _)| vr.contains(v))
                .map(|(_, w)| w)
                .sum();
            let (_, r) = run(&entries, &vr);
            assert_eq!(r.sum, UBig::from(expect), "entries={entries:?} vr={vr:?}");
        }
    }
}
