//! Private intersection-sum (the §7 aggregation extension).
//!
//! ```text
//! cargo run --release -p minshare-aggregate --example private_stats
//! ```
//!
//! An ad network (`R`) knows who saw a campaign; a merchant (`S`) knows
//! who bought and for how much. Together they want total conversions and
//! total revenue attributable to the campaign — without the network
//! learning anyone's purchases or the merchant learning who saw the ads.
//! (This is the measurement problem Google's Private Join & Compute
//! solves with exactly this protocol shape.)

use minshare::run_two_party;
use minshare_aggregate::intersection_sum;
use minshare_aggregate::paillier::PrivateKey;
use minshare_crypto::QrGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x57a75);
    let group = QrGroup::generate(&mut rng, 96).expect("group generation");

    // The merchant's private ledger: (customer, purchase amount in cents).
    let purchases: Vec<(Vec<u8>, u64)> = [
        ("ana", 1299u64),
        ("bob", 850),
        ("carol", 11500),
        ("dave", 425),
        ("erin", 3999),
    ]
    .iter()
    .map(|(n, c)| (n.as_bytes().to_vec(), *c))
    .collect();

    // The ad network's private audience.
    let audience: Vec<Vec<u8>> = ["bob", "carol", "frank", "grace"]
        .iter()
        .map(|n| n.as_bytes().to_vec())
        .collect();

    println!("merchant ledger : {} purchases", purchases.len());
    println!("campaign reach  : {} people", audience.len());

    // The merchant holds the Paillier secret key; the network only ever
    // sees ciphertexts it cannot open.
    let mut keyrng = StdRng::seed_from_u64(0x4e7);
    let key = PrivateKey::generate(&mut keyrng, 256).expect("Paillier keygen");

    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            intersection_sum::run_sender(t, &group, &key, &purchases, &mut rng).map_err(|e| {
                minshare::ProtocolError::MalformedMessage {
                    detail: e.to_string(),
                }
            })
        },
        |t| {
            let group = {
                let mut g_rng = StdRng::seed_from_u64(0x57a75);
                QrGroup::generate(&mut g_rng, 96).expect("same public group")
            };
            let mut rng = StdRng::seed_from_u64(2);
            intersection_sum::run_receiver(t, &group, &audience, &mut rng).map_err(|e| {
                minshare::ProtocolError::MalformedMessage {
                    detail: e.to_string(),
                }
            })
        },
    )
    .expect("protocol run");

    println!("\nboth parties learned (and only this):");
    println!("  conversions        : {}", run.receiver.intersection_count);
    println!(
        "  attributed revenue : ${}.{:02}",
        run.receiver.sum.to_decimal_str().parse::<u64>().unwrap() / 100,
        run.receiver.sum.to_decimal_str().parse::<u64>().unwrap() % 100
    );

    // Oracle check: bob (8.50) + carol (115.00).
    assert_eq!(run.receiver.intersection_count, 2);
    assert_eq!(run.receiver.sum.to_u64(), Some(850 + 11500));
    assert_eq!(run.sender.sum, run.receiver.sum);
    println!("\nOK — matches the clear-text aggregate; no individual rows crossed the wire.");
    println!(
        "costs: {} exponentiations + {} Paillier ops (S), {} (R); {} bits",
        run.sender.ops.total_ce() + run.receiver.ops.total_ce(),
        run.sender.paillier_ops,
        run.receiver.paillier_ops,
        run.total_bits()
    );
}
