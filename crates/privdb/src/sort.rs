//! `ORDER BY` for tables.

use crate::error::DbError;
use crate::table::Table;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

/// `SELECT * FROM table ORDER BY keys…` — stable multi-key sort.
pub fn order_by(table: &Table, keys: &[(&str, Direction)]) -> Result<Table, DbError> {
    let indices: Vec<(usize, Direction)> = keys
        .iter()
        .map(|(c, d)| table.schema().index_of(c).map(|i| (i, *d)))
        .collect::<Result<_, _>>()?;
    let mut rows = table.rows().to_vec();
    rows.sort_by(|a, b| {
        for &(i, dir) in &indices {
            let ord = a[i].cmp(&b[i]);
            let ord = match dir {
                Direction::Ascending => ord,
                Direction::Descending => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = Table::new(&format!("{}_sorted", table.name()), table.schema().clone());
    out.insert_all(rows)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;

    fn people() -> Table {
        let schema =
            Schema::new(vec![("name", ColumnType::Text), ("age", ColumnType::Int)]).unwrap();
        let mut t = Table::new("people", schema);
        t.insert_all(vec![
            vec![Value::from("carol"), Value::Int(30)],
            vec![Value::from("ana"), Value::Int(25)],
            vec![Value::from("bob"), Value::Int(30)],
        ])
        .unwrap();
        t
    }

    #[test]
    fn single_key_ascending() {
        let out = order_by(&people(), &[("age", Direction::Ascending)]).unwrap();
        let ages: Vec<i64> = out.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(ages, vec![25, 30, 30]);
    }

    #[test]
    fn multi_key_with_descending() {
        let out = order_by(
            &people(),
            &[
                ("age", Direction::Descending),
                ("name", Direction::Ascending),
            ],
        )
        .unwrap();
        let names: Vec<&str> = out.rows().iter().map(|r| r[0].as_text().unwrap()).collect();
        assert_eq!(names, vec!["bob", "carol", "ana"]);
    }

    #[test]
    fn stability_preserves_input_order_on_ties() {
        let out = order_by(&people(), &[("age", Direction::Ascending)]).unwrap();
        // carol was inserted before bob; both age 30 — carol stays first.
        assert_eq!(out.rows()[1][0], Value::from("carol"));
        assert_eq!(out.rows()[2][0], Value::from("bob"));
    }

    #[test]
    fn unknown_key_errors() {
        assert!(order_by(&people(), &[("nope", Direction::Ascending)]).is_err());
    }

    #[test]
    fn empty_keys_is_identity() {
        let t = people();
        let out = order_by(&t, &[]).unwrap();
        assert_eq!(out.rows(), t.rows());
    }
}
