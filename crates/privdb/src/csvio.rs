//! CSV import/export, so each party can load its private tables from
//! ordinary files (and the CLI's inputs have a relational on-ramp).
//!
//! Dialect: comma-separated, `"`-quoted fields with doubled inner quotes,
//! `\n` row terminator. Typed parsing is driven by a [`Schema`]: `Int`
//! and `Bool` columns parse their literal forms, `Bytes` columns parse
//! hex, and empty unquoted fields read as NULL.

use std::io::{BufRead, Write};

use crate::error::DbError;
use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;

fn decode_err(detail: String) -> DbError {
    DbError::DecodeError { detail }
}

/// Splits a full CSV text into records of raw fields, honoring quotes —
/// including newlines *inside* quoted fields, which a line-based reader
/// would mangle. Each field carries whether it was quoted (quoted empty
/// = empty text, unquoted empty = NULL). Records are terminated by `\n`
/// (with optional preceding `\r`); a blank unquoted record is skipped.
fn split_records(text: &str) -> Result<Vec<Vec<(String, bool)>>, DbError> {
    let mut records = Vec::new();
    let mut fields: Vec<(String, bool)> = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => cur.push(c),
            }
        } else {
            match ch {
                ',' => {
                    fields.push((std::mem::take(&mut cur), quoted));
                    quoted = false;
                }
                '"' if cur.is_empty() && !quoted => {
                    in_quotes = true;
                    quoted = true;
                }
                '"' => return Err(decode_err("stray quote inside unquoted field".into())),
                '\r' | '\n' => {
                    if ch == '\r' && chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    fields.push((std::mem::take(&mut cur), quoted));
                    records.push(std::mem::take(&mut fields));
                    quoted = false;
                }
                c => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(decode_err("unterminated quoted field".into()));
    }
    // Final record without a trailing newline.
    if !cur.is_empty() || quoted || !fields.is_empty() {
        fields.push((cur, quoted));
        records.push(fields);
    }
    Ok(records)
}

/// True for the record a blank line produces: one unquoted empty field.
fn is_blank_record(record: &[(String, bool)]) -> bool {
    record.len() == 1 && record[0].0.is_empty() && !record[0].1
}

fn parse_field(raw: &str, quoted: bool, ty: ColumnType) -> Result<Value, DbError> {
    if raw.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    match ty {
        ColumnType::Text => Ok(Value::Text(raw.to_string())),
        ColumnType::Int => raw
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| decode_err(format!("not an integer: {raw:?}"))),
        ColumnType::Bool => match raw.trim() {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            other => Err(decode_err(format!("not a bool: {other:?}"))),
        },
        ColumnType::Bytes => {
            let hex = raw.trim();
            if !hex.len().is_multiple_of(2) {
                return Err(decode_err("odd-length hex".into()));
            }
            let bytes = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
                .collect::<Result<Vec<u8>, _>>()
                .map_err(|_| decode_err(format!("not hex: {hex:?}")))?;
            Ok(Value::Bytes(bytes))
        }
    }
}

fn render_field(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Text(s) => {
            // Quote anything ambiguous: empty/whitespace-only (vs NULL or
            // blank lines) and anything containing structural characters.
            if s.trim().is_empty() || s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        Value::Bytes(b) => {
            if b.is_empty() {
                // Quoted-empty distinguishes Bytes([]) from NULL.
                "\"\"".to_string()
            } else {
                b.iter().map(|x| format!("{x:02x}")).collect()
            }
        }
    }
}

/// Reads a table from CSV. The first record must be a header matching the
/// schema's column names in order. Quoted fields may span lines.
pub fn read_csv<R: BufRead>(name: &str, schema: Schema, mut reader: R) -> Result<Table, DbError> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| decode_err(e.to_string()))?;
    let mut records = split_records(&text)?.into_iter();

    let header_fields = records
        .next()
        .ok_or_else(|| decode_err("missing header row".into()))?;
    let expected: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    let got: Vec<&str> = header_fields.iter().map(|(f, _)| f.as_str()).collect();
    if got != expected {
        return Err(decode_err(format!(
            "header mismatch: expected {expected:?}, got {got:?}"
        )));
    }

    let mut table = Table::new(name, schema);
    for fields in records {
        // Blank lines are separators for multi-column schemas; for a
        // single-column schema an empty unquoted field is a NULL row.
        if is_blank_record(&fields) && table.schema().arity() > 1 {
            continue;
        }
        if fields.len() != table.schema().arity() {
            return Err(DbError::ArityMismatch {
                expected: table.schema().arity(),
                got: fields.len(),
            });
        }
        let row: Vec<Value> = fields
            .iter()
            .zip(table.schema().columns().to_vec())
            .map(|((raw, quoted), col)| parse_field(raw, *quoted, col.ty))
            .collect::<Result<_, _>>()?;
        table.insert(row)?;
    }
    Ok(table)
}

/// Writes a table as CSV (header + rows).
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> Result<(), DbError> {
    let io_err = |e: std::io::Error| decode_err(format!("write: {e}"));
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for row in table.rows() {
        let fields: Vec<String> = row.iter().map(render_field).collect();
        writeln!(writer, "{}", fields.join(",")).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("name", ColumnType::Text),
            ("active", ColumnType::Bool),
            ("blob", ColumnType::Bytes),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let mut t = Table::new("t", schema());
        t.insert_all(vec![
            vec![
                Value::Int(1),
                Value::from("plain"),
                Value::Bool(true),
                Value::Bytes(vec![0xde, 0xad]),
            ],
            vec![
                Value::Int(-5),
                Value::from("with,comma and \"quotes\""),
                Value::Bool(false),
                Value::Bytes(vec![]),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
        ])
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv("t", schema(), buf.as_slice()).unwrap();
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn header_validated() {
        let csv = "id,wrong,active,blob\n1,x,true,\n";
        assert!(read_csv("t", schema(), csv.as_bytes()).is_err());
        assert!(read_csv("t", schema(), "".as_bytes()).is_err());
    }

    #[test]
    fn typed_parsing_and_errors() {
        let good = "id,name,active,blob\n7,alice,1,00ff\n";
        let t = read_csv("t", schema(), good.as_bytes()).unwrap();
        assert_eq!(
            t.rows()[0],
            vec![
                Value::Int(7),
                Value::from("alice"),
                Value::Bool(true),
                Value::Bytes(vec![0x00, 0xff])
            ]
        );
        for bad in [
            "id,name,active,blob\nxx,alice,1,\n",    // bad int
            "id,name,active,blob\n7,alice,maybe,\n", // bad bool
            "id,name,active,blob\n7,alice,1,abc\n",  // odd hex
            "id,name,active,blob\n7,alice,1\n",      // arity
            "id,name,active,blob\n7,al\"ice,1,\n",   // stray quote
            "id,name,active,blob\n7,\"alice,1,\n",   // unterminated quote
        ] {
            assert!(read_csv("t", schema(), bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unquoted_empty_is_null_quoted_empty_is_text() {
        let csv = "id,name,active,blob\n1,,true,\n2,\"\",false,\n";
        let t = read_csv("t", schema(), csv.as_bytes()).unwrap();
        assert_eq!(t.rows()[0][1], Value::Null);
        assert_eq!(t.rows()[1][1], Value::Text(String::new()));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "id,name,active,blob\n1,a,true,\n\n2,b,false,\n";
        let t = read_csv("t", schema(), csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }
}
