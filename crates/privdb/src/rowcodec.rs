//! Canonical byte encoding of values and rows.
//!
//! Two distinct uses in the protocol stack:
//!
//! * **Hash input** — the protocols hash *values* (`h(v)`), so equal values
//!   must encode identically and distinct values distinctly
//!   ([`encode_value`] is injective by construction: a type tag plus a
//!   length-framed body).
//! * **Payload format** — `ext(v)` ships whole rows through the payload
//!   cipher `K` ([`encode_rows`] / [`decode_rows`]).

use crate::error::DbError;
use crate::table::Row;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BYTES: u8 = 4;

/// Appends the canonical encoding of one value.
fn push_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        }
    }
}

/// Canonical, injective encoding of a single value — the byte string the
/// protocols feed to `h(·)`.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    push_value(&mut out, v);
    out
}

/// Reads one value from `bytes` starting at `pos`, advancing `pos`.
fn read_value(bytes: &[u8], pos: &mut usize) -> Result<Value, DbError> {
    let err = |detail: &str| DbError::DecodeError {
        detail: detail.to_string(),
    };
    let tag = *bytes.get(*pos).ok_or_else(|| err("truncated tag"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            let b = *bytes.get(*pos).ok_or_else(|| err("truncated bool"))?;
            *pos += 1;
            match b {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(err("bad bool byte")),
            }
        }
        TAG_INT => {
            let end = *pos + 8;
            let slice = bytes.get(*pos..end).ok_or_else(|| err("truncated int"))?;
            *pos = end;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(slice);
            Ok(Value::Int(i64::from_be_bytes(buf)))
        }
        TAG_TEXT | TAG_BYTES => {
            let end = *pos + 4;
            let slice = bytes
                .get(*pos..end)
                .ok_or_else(|| err("truncated length"))?;
            *pos = end;
            let mut buf = [0u8; 4];
            buf.copy_from_slice(slice);
            let len = u32::from_be_bytes(buf) as usize;
            let end = pos.checked_add(len).ok_or_else(|| err("length overflow"))?;
            let body = bytes.get(*pos..end).ok_or_else(|| err("truncated body"))?;
            *pos = end;
            if tag == TAG_TEXT {
                let s = std::str::from_utf8(body).map_err(|_| err("invalid utf-8"))?;
                Ok(Value::Text(s.to_string()))
            } else {
                Ok(Value::Bytes(body.to_vec()))
            }
        }
        _ => Err(err("unknown tag")),
    }
}

/// Decodes a value encoded by [`encode_value`]; rejects trailing bytes.
pub fn decode_value(bytes: &[u8]) -> Result<Value, DbError> {
    let mut pos = 0;
    let v = read_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(DbError::DecodeError {
            detail: "trailing bytes".to_string(),
        });
    }
    Ok(v)
}

/// Encodes a list of rows (the `ext(v)` payload).
pub fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(rows.len() as u32).to_be_bytes());
    for row in rows {
        out.extend_from_slice(&(row.len() as u32).to_be_bytes());
        for v in row {
            push_value(&mut out, v);
        }
    }
    out
}

/// Decodes rows encoded by [`encode_rows`].
pub fn decode_rows(bytes: &[u8]) -> Result<Vec<Row>, DbError> {
    let err = |detail: &str| DbError::DecodeError {
        detail: detail.to_string(),
    };
    let mut pos = 0usize;
    let take_u32 = |bytes: &[u8], pos: &mut usize| -> Result<u32, DbError> {
        let end = *pos + 4;
        let slice = bytes.get(*pos..end).ok_or_else(|| DbError::DecodeError {
            detail: "truncated count".to_string(),
        })?;
        *pos = end;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(slice);
        Ok(u32::from_be_bytes(buf))
    };
    let n_rows = take_u32(bytes, &mut pos)?;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20) as usize);
    for _ in 0..n_rows {
        let n_cols = take_u32(bytes, &mut pos)?;
        let mut row = Vec::with_capacity(n_cols.min(1 << 16) as usize);
        for _ in 0..n_cols {
            row.push(read_value(bytes, &mut pos)?);
        }
        rows.push(row);
    }
    if pos != bytes.len() {
        return Err(err("trailing bytes"));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Text("".into()),
            Value::Text("héllo".into()),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0, 255, 1]),
        ];
        for v in cases {
            assert_eq!(decode_value(&encode_value(&v)).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn encoding_is_injective_across_types() {
        // Text "1" vs Bytes [b'1'] vs Int 1 must encode differently.
        let a = encode_value(&Value::Text("1".into()));
        let b = encode_value(&Value::Bytes(vec![b'1']));
        let c = encode_value(&Value::Int(1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn rows_round_trip() {
        let rows = vec![
            vec![Value::Int(1), Value::from("a"), Value::Null],
            vec![Value::Int(2), Value::from("b"), Value::Bool(true)],
        ];
        assert_eq!(decode_rows(&encode_rows(&rows)).unwrap(), rows);
        assert_eq!(decode_rows(&encode_rows(&[])).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn decode_rejects_truncation() {
        let rows = vec![vec![Value::Int(1), Value::from("abc")]];
        let bytes = encode_rows(&rows);
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(decode_rows(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode_value(&Value::Int(5));
        bytes.push(0);
        assert!(decode_value(&bytes).is_err());
        let mut rb = encode_rows(&[vec![Value::Null]]);
        rb.push(7);
        assert!(decode_rows(&rb).is_err());
    }

    #[test]
    fn decode_rejects_bad_tags_and_utf8() {
        assert!(decode_value(&[99]).is_err());
        assert!(decode_value(&[TAG_BOOL, 2]).is_err());
        // TAG_TEXT with invalid UTF-8 body.
        let bad = vec![TAG_TEXT, 0, 0, 0, 2, 0xff, 0xfe];
        assert!(decode_value(&bad).is_err());
    }
}
