//! Clear-text query operators: equijoin and group-by-count.
//!
//! These run *inside one trust domain* and serve two roles: computing the
//! local halves of a distributed query (e.g. "ids of people who took the
//! drug"), and providing the ground-truth oracle the integration tests
//! compare every private protocol against.

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::schema::{ColumnType, Schema};
use crate::table::{Row, Table};
use crate::value::Value;

/// Hash equijoin of `left` and `right` on `left_col = right_col`.
///
/// Output schema: all left columns, then all right columns with name
/// collisions prefixed by `"<right name>_"`.
pub fn equijoin(
    left: &Table,
    left_col: &str,
    right: &Table,
    right_col: &str,
) -> Result<Table, DbError> {
    let li = left.schema().index_of(left_col)?;
    let ri = right.schema().index_of(right_col)?;
    let prefix = format!("{}_", right.name());
    let schema = left.schema().join_with(right.schema(), &prefix)?;

    // Build side: right, keyed by join value.
    let mut index: BTreeMap<&Value, Vec<&Row>> = BTreeMap::new();
    for row in right.rows() {
        index.entry(&row[ri]).or_default().push(row);
    }

    let mut out = Table::new(&format!("{}_join_{}", left.name(), right.name()), schema);
    for lrow in left.rows() {
        if let Some(matches) = index.get(&lrow[li]) {
            for rrow in matches {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                out.insert(row)?;
            }
        }
    }
    Ok(out)
}

/// `SELECT cols…, COUNT(*) FROM table GROUP BY cols…`.
///
/// Output schema: the grouping columns followed by an `Int` column named
/// `count`. Groups are emitted in sorted order of their key.
pub fn group_by_count(table: &Table, columns: &[&str]) -> Result<Table, DbError> {
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Result<_, _>>()?;

    let mut counts: BTreeMap<Vec<Value>, i64> = BTreeMap::new();
    for row in table.rows() {
        let key: Vec<Value> = indices.iter().map(|&i| row[i].clone()).collect();
        *counts.entry(key).or_insert(0) += 1;
    }

    let mut schema_cols: Vec<(&str, ColumnType)> = indices
        .iter()
        .map(|&i| {
            let c = &table.schema().columns()[i];
            (c.name.as_str(), c.ty)
        })
        .collect();
    schema_cols.push(("count", ColumnType::Int));
    let schema = Schema::new(schema_cols)?;

    let mut out = Table::new(&format!("{}_counts", table.name()), schema);
    for (key, count) in counts {
        let mut row = key;
        row.push(Value::Int(count));
        out.insert(row)?;
    }
    Ok(out)
}

/// Set intersection of the distinct values of two columns — the clear-text
/// oracle for the paper's intersection protocol.
pub fn intersect_values(
    left: &Table,
    left_col: &str,
    right: &Table,
    right_col: &str,
) -> Result<Vec<Value>, DbError> {
    let lv = left.distinct_values(left_col)?;
    let rv: std::collections::BTreeSet<Value> =
        right.distinct_values(right_col)?.into_iter().collect();
    Ok(lv.into_iter().filter(|v| rv.contains(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_r() -> Table {
        let schema = Schema::new(vec![
            ("personid", ColumnType::Int),
            ("pattern", ColumnType::Bool),
        ])
        .unwrap();
        let mut t = Table::new("tr", schema);
        t.insert_all(vec![
            vec![Value::Int(1), Value::Bool(true)],
            vec![Value::Int(2), Value::Bool(false)],
            vec![Value::Int(3), Value::Bool(true)],
            vec![Value::Int(4), Value::Bool(false)],
        ])
        .unwrap();
        t
    }

    fn t_s() -> Table {
        let schema = Schema::new(vec![
            ("personid", ColumnType::Int),
            ("drug", ColumnType::Bool),
            ("reaction", ColumnType::Bool),
        ])
        .unwrap();
        let mut t = Table::new("ts", schema);
        t.insert_all(vec![
            vec![Value::Int(1), Value::Bool(true), Value::Bool(true)],
            vec![Value::Int(2), Value::Bool(true), Value::Bool(false)],
            vec![Value::Int(3), Value::Bool(false), Value::Bool(false)],
            vec![Value::Int(5), Value::Bool(true), Value::Bool(true)],
        ])
        .unwrap();
        t
    }

    #[test]
    fn equijoin_matches_expected_pairs() {
        let j = equijoin(&t_r(), "personid", &t_s(), "personid").unwrap();
        // persons 1, 2, 3 are in both.
        assert_eq!(j.len(), 3);
        let names: Vec<&str> = j
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["personid", "pattern", "ts_personid", "drug", "reaction"]
        );
    }

    #[test]
    fn equijoin_with_duplicates_multiplies() {
        let mut left = t_r();
        left.insert(vec![Value::Int(1), Value::Bool(false)])
            .unwrap();
        let mut right = t_s();
        right
            .insert(vec![Value::Int(1), Value::Bool(false), Value::Bool(false)])
            .unwrap();
        // personid=1 now appears 2× left and 2× right → 4 joined rows.
        let j = equijoin(&left, "personid", &right, "personid").unwrap();
        let ones = j.rows().iter().filter(|r| r[0] == Value::Int(1)).count();
        assert_eq!(ones, 4);
    }

    #[test]
    fn medical_query_in_the_clear() {
        // select pattern, reaction, count(*) from TR, TS
        // where TR.personid = TS.personid and TS.drug = true
        // group by pattern, reaction.
        let joined = equijoin(&t_r(), "personid", &t_s(), "personid").unwrap();
        let drug_idx = joined.schema().index_of("drug").unwrap();
        let took = joined.filter("took_drug", |r| r[drug_idx] == Value::Bool(true));
        let counts = group_by_count(&took, &["pattern", "reaction"]).unwrap();
        // Person 1: pattern=T, reaction=T. Person 2: pattern=F, reaction=F.
        // Person 3 excluded (drug=false).
        assert_eq!(counts.len(), 2);
        assert!(counts
            .rows()
            .contains(&vec![Value::Bool(true), Value::Bool(true), Value::Int(1)]));
        assert!(counts.rows().contains(&vec![
            Value::Bool(false),
            Value::Bool(false),
            Value::Int(1)
        ]));
    }

    #[test]
    fn group_by_empty_table() {
        let t = Table::new("empty", Schema::new(vec![("x", ColumnType::Int)]).unwrap());
        let g = group_by_count(&t, &["x"]).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn group_by_all_rows_one_group() {
        let mut t = Table::new("t", Schema::new(vec![("x", ColumnType::Int)]).unwrap());
        t.insert_all((0..5).map(|_| vec![Value::Int(7)])).unwrap();
        let g = group_by_count(&t, &["x"]).unwrap();
        assert_eq!(g.rows(), &[vec![Value::Int(7), Value::Int(5)]]);
    }

    #[test]
    fn intersect_values_oracle() {
        let i = intersect_values(&t_r(), "personid", &t_s(), "personid").unwrap();
        assert_eq!(i, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn bad_columns_error() {
        assert!(equijoin(&t_r(), "nope", &t_s(), "personid").is_err());
        assert!(group_by_count(&t_r(), &["nope"]).is_err());
    }
}
