//! Table schemas: named, typed columns.

use std::fmt;

use crate::error::DbError;
use crate::value::Value;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// UTF-8 text.
    Text,
    /// Raw bytes.
    Bytes,
}

impl ColumnType {
    /// Whether `value` inhabits this type (NULL inhabits every type).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
                | (ColumnType::Bytes, Value::Bytes(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Text => "text",
            ColumnType::Bytes => "bytes",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// An ordered list of uniquely named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Result<Self, DbError> {
        let mut seen = std::collections::HashSet::new();
        let mut cols = Vec::with_capacity(columns.len());
        for (name, ty) in columns {
            if !seen.insert(name.to_string()) {
                return Err(DbError::DuplicateColumn {
                    column: name.to_string(),
                });
            }
            cols.push(Column {
                name: name.to_string(),
                ty,
            });
        }
        Ok(Schema { columns: cols })
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize, DbError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| DbError::NoSuchColumn {
                column: name.to_string(),
            })
    }

    /// Validates a row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), DbError> {
        if row.len() != self.arity() {
            return Err(DbError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (col, val) in self.columns.iter().zip(row) {
            if !col.ty.admits(val) {
                return Err(DbError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    got: val.type_name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Concatenates two schemas (for join outputs), prefixing collided
    /// names from the right side with `rhs_prefix`.
    pub fn join_with(&self, other: &Schema, rhs_prefix: &str) -> Result<Schema, DbError> {
        let mut cols: Vec<(String, ColumnType)> = self
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        let names: std::collections::HashSet<&String> =
            self.columns.iter().map(|c| &c.name).collect();
        for c in &other.columns {
            let name = if names.contains(&c.name) {
                format!("{rhs_prefix}{}", c.name)
            } else {
                c.name.clone()
            };
            cols.push((name, c.ty));
        }
        let refs: Vec<(&str, ColumnType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Schema::new(refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("name", ColumnType::Text),
            ("active", ColumnType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_columns() {
        assert!(matches!(
            Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Text)]),
            Err(DbError::DuplicateColumn { .. })
        ));
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(matches!(
            s.index_of("missing"),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn row_validation() {
        let s = schema();
        assert!(s
            .check_row(&[Value::Int(1), Value::from("x"), Value::Bool(true)])
            .is_ok());
        // NULL fits anywhere.
        assert!(s
            .check_row(&[Value::Null, Value::Null, Value::Null])
            .is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(1), Value::from("x")]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::from("oops"), Value::from("x"), Value::Bool(true)]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn join_renames_collisions() {
        let a = Schema::new(vec![("id", ColumnType::Int), ("x", ColumnType::Text)]).unwrap();
        let b = Schema::new(vec![("id", ColumnType::Int), ("y", ColumnType::Bool)]).unwrap();
        let j = a.join_with(&b, "rhs_").unwrap();
        let names: Vec<&str> = j.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["id", "x", "rhs_id", "y"]);
    }

    #[test]
    fn admits_matrix() {
        assert!(ColumnType::Int.admits(&Value::Int(1)));
        assert!(!ColumnType::Int.admits(&Value::Bool(true)));
        assert!(ColumnType::Bytes.admits(&Value::Null));
        assert!(ColumnType::Text.admits(&Value::Text("x".into())));
    }
}
