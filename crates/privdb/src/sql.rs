//! A small SQL front end over the relational substrate — enough to write
//! the paper's §1.1 medical-research query exactly as printed:
//!
//! ```sql
//! select pattern, reaction, count(*)
//! from TR join TS on TR.personid = TS.personid
//! where TS.drug = true
//! group by pattern, reaction
//! ```
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT item [, item]…
//! FROM table [JOIN table ON qual = qual]
//! [WHERE pred {AND pred}…]
//! [GROUP BY col [, col]…]
//! [ORDER BY col [ASC|DESC] [, …]]
//!
//! item  := * | col [AS name] | COUNT(*) | SUM(col) | MIN(col)
//!        | MAX(col) | AVG(col)   (each with optional AS name)
//! pred  := qual (= | != | < | <= | > | >=) literal
//!        | qual IS [NOT] NULL
//! literal := integer | 'text' | true | false
//! qual  := col | table.col
//! ```
//!
//! Qualified names resolve against the working schema directly (`col`)
//! or through the join's collision prefix (`table_col`).

use std::collections::BTreeMap;

use crate::aggregate::{group_by, AggFn};
use crate::error::DbError;
use crate::query::equijoin;
use crate::sort::{order_by, Direction};
use crate::table::Table;
use crate::value::Value;

/// A named collection of tables queries can reference.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table under its own name.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> Result<&Table, DbError> {
        self.tables.get(name).ok_or_else(|| DbError::DecodeError {
            detail: format!("no such table: {name}"),
        })
    }
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Text(String),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Op(String), // = != < <= > >=
}

fn sql_err(detail: impl Into<String>) -> DbError {
    DbError::DecodeError {
        detail: format!("sql: {}", detail.into()),
    }
}

fn lex(input: &str) -> Result<Vec<Token>, DbError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&ch) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Op("=".into()));
            }
            '!' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(sql_err("expected != "));
                }
                tokens.push(Token::Op("!=".into()));
            }
            '<' | '>' => {
                chars.next();
                let mut op = ch.to_string();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    op.push('=');
                } else if ch == '<' && chars.peek() == Some(&'>') {
                    chars.next();
                    op = "!=".into();
                }
                tokens.push(Token::Op(op));
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(sql_err("unterminated string literal")),
                    }
                }
                tokens.push(Token::Text(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Int(
                    s.parse()
                        .map_err(|_| sql_err(format!("bad integer {s:?}")))?,
                ));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => return Err(sql_err(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

// ------------------------------------------------------------------ ast

#[derive(Debug, Clone, PartialEq)]
enum SelectItem {
    Star,
    Column {
        name: QualName,
        alias: Option<String>,
    },
    Agg {
        f: AggKind,
        col: Option<QualName>,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum AggKind {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

#[derive(Debug, Clone, PartialEq)]
struct QualName {
    table: Option<String>,
    column: String,
}

#[derive(Debug, Clone, PartialEq)]
enum Pred {
    Compare {
        left: QualName,
        op: String,
        right: Value,
    },
    IsNull {
        left: QualName,
        negated: bool,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Query {
    items: Vec<SelectItem>,
    from: String,
    join: Option<(String, QualName, QualName)>,
    predicates: Vec<Pred>,
    group_by: Vec<QualName>,
    order_by: Vec<(QualName, Direction)>,
}

// --------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(sql_err(format!("expected {kw}, got {:?}", self.peek())))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), DbError> {
        match self.next() {
            Some(got) if &got == t => Ok(()),
            got => Err(sql_err(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            got => Err(sql_err(format!("expected identifier, got {got:?}"))),
        }
    }

    fn qual_name(&mut self) -> Result<QualName, DbError> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let column = self.ident()?;
            Ok(QualName {
                table: Some(first),
                column,
            })
        } else {
            Ok(QualName {
                table: None,
                column: first,
            })
        }
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Text(s)) => Ok(Value::Text(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            got => Err(sql_err(format!("expected literal, got {got:?}"))),
        }
    }

    fn agg_kind(name: &str) -> Option<AggKind> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggKind::Count),
            "sum" => Some(AggKind::Sum),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            "avg" => Some(AggKind::Avg),
            _ => None,
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, DbError> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(SelectItem::Star);
        }
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            if let Some(kind) = Self::agg_kind(&name) {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // name + (
                    let col = if self.peek() == Some(&Token::Star) {
                        if kind != AggKind::Count {
                            return Err(sql_err("only COUNT accepts *"));
                        }
                        self.pos += 1;
                        None
                    } else {
                        Some(self.qual_name()?)
                    };
                    self.expect(&Token::RParen)?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Agg {
                        f: kind,
                        col,
                        alias,
                    });
                }
            }
        }
        let name = self.qual_name()?;
        let alias = self.alias()?;
        Ok(SelectItem::Column { name, alias })
    }

    fn alias(&mut self) -> Result<Option<String>, DbError> {
        if self.keyword("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn predicate(&mut self) -> Result<Pred, DbError> {
        let left = self.qual_name()?;
        if self.keyword("is") {
            let negated = self.keyword("not");
            self.expect_keyword("null")?;
            return Ok(Pred::IsNull { left, negated });
        }
        let op = match self.next() {
            Some(Token::Op(op)) => op,
            got => return Err(sql_err(format!("expected comparison, got {got:?}"))),
        };
        let right = self.literal()?;
        Ok(Pred::Compare { left, op, right })
    }

    fn query(&mut self) -> Result<Query, DbError> {
        self.expect_keyword("select")?;
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        let from = self.ident()?;

        let mut join = None;
        if self.keyword("join") {
            let table = self.ident()?;
            self.expect_keyword("on")?;
            let left = self.qual_name()?;
            match self.next() {
                Some(Token::Op(op)) if op == "=" => {}
                got => return Err(sql_err(format!("JOIN requires =, got {got:?}"))),
            }
            let right = self.qual_name()?;
            join = Some((table, left, right));
        }

        let mut predicates = Vec::new();
        if self.keyword("where") {
            predicates.push(self.predicate()?);
            while self.keyword("and") {
                predicates.push(self.predicate()?);
            }
        }

        let mut group_by = Vec::new();
        if self.keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.qual_name()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.qual_name()?);
            }
        }

        let mut order = Vec::new();
        if self.keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let col = self.qual_name()?;
                let dir = if self.keyword("desc") {
                    Direction::Descending
                } else {
                    let _ = self.keyword("asc");
                    Direction::Ascending
                };
                order.push((col, dir));
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        if self.pos != self.tokens.len() {
            return Err(sql_err(format!("trailing tokens at {:?}", self.peek())));
        }
        Ok(Query {
            items,
            from,
            join,
            predicates,
            group_by,
            order_by: order,
        })
    }
}

// ------------------------------------------------------------- executor

/// Resolves a possibly-qualified name against `table`'s schema: bare
/// column first, then the join collision form `<table>_<col>`.
fn resolve(table: &Table, name: &QualName) -> Result<usize, DbError> {
    if let Ok(i) = table.schema().index_of(&name.column) {
        return Ok(i);
    }
    if let Some(t) = &name.table {
        let prefixed = format!("{t}_{}", name.column);
        if let Ok(i) = table.schema().index_of(&prefixed) {
            return Ok(i);
        }
    }
    Err(DbError::NoSuchColumn {
        column: match &name.table {
            Some(t) => format!("{t}.{}", name.column),
            None => name.column.clone(),
        },
    })
}

fn resolve_name(table: &Table, name: &QualName) -> Result<String, DbError> {
    let idx = resolve(table, name)?;
    Ok(table.schema().columns()[idx].name.clone())
}

fn apply_predicates(table: &Table, preds: &[Pred]) -> Result<Table, DbError> {
    let mut compiled: Vec<(usize, &Pred)> = Vec::new();
    for p in preds {
        let name = match p {
            Pred::Compare { left, .. } => left,
            Pred::IsNull { left, .. } => left,
        };
        compiled.push((resolve(table, name)?, p));
    }
    Ok(table.filter("filtered", |row| {
        compiled.iter().all(|(idx, p)| {
            let v = &row[*idx];
            match p {
                Pred::IsNull { negated, .. } => (v == &Value::Null) != *negated,
                Pred::Compare { op, right, .. } => {
                    if v == &Value::Null {
                        return false; // SQL three-valued logic: NULL compares unknown
                    }
                    match op.as_str() {
                        "=" => v == right,
                        "!=" => v != right,
                        "<" => v < right,
                        "<=" => v <= right,
                        ">" => v > right,
                        ">=" => v >= right,
                        _ => false,
                    }
                }
            }
        })
    }))
}

/// Parses and executes `sql` against `catalog`, returning a result table.
pub fn execute(catalog: &Catalog, sql: &str) -> Result<Table, DbError> {
    let tokens = lex(sql)?;
    let query = Parser { tokens, pos: 0 }.query()?;

    // FROM / JOIN.
    let mut working: Table = catalog.get(&query.from)?.clone();
    if let Some((right_name, on_left, on_right)) = &query.join {
        let right = catalog.get(right_name)?;
        // Determine which side each ON operand belongs to.
        let (left_col, right_col) = if resolve(&working, on_left).is_ok() {
            (
                resolve_name(&working, on_left)?,
                resolve_name(right, on_right)?,
            )
        } else {
            (
                resolve_name(&working, on_right)?,
                resolve_name(right, on_left)?,
            )
        };
        working = equijoin(&working, &left_col, right, &right_col)?;
    }

    // WHERE.
    if !query.predicates.is_empty() {
        working = apply_predicates(&working, &query.predicates)?;
    }

    // GROUP BY / aggregates.
    let has_agg = query
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Agg { .. }));
    if !query.group_by.is_empty() || has_agg {
        let group_cols: Vec<String> = query
            .group_by
            .iter()
            .map(|g| resolve_name(&working, g))
            .collect::<Result<_, _>>()?;
        let mut aggs: Vec<(String, AggFn)> = Vec::new();
        for item in &query.items {
            match item {
                SelectItem::Agg { f, col, alias } => {
                    let col_name = col
                        .as_ref()
                        .map(|c| resolve_name(&working, c))
                        .transpose()?;
                    let f = match (f, col_name.clone()) {
                        (AggKind::Count, _) => AggFn::Count,
                        (AggKind::Sum, Some(c)) => AggFn::Sum(c),
                        (AggKind::Min, Some(c)) => AggFn::Min(c),
                        (AggKind::Max, Some(c)) => AggFn::Max(c),
                        (AggKind::Avg, Some(c)) => AggFn::Avg(c),
                        _ => return Err(sql_err("aggregate requires a column")),
                    };
                    let default = match &f {
                        AggFn::Count => "count".to_string(),
                        AggFn::Sum(c) => format!("sum_{c}"),
                        AggFn::Min(c) => format!("min_{c}"),
                        AggFn::Max(c) => format!("max_{c}"),
                        AggFn::Avg(c) => format!("avg_{c}"),
                    };
                    aggs.push((alias.clone().unwrap_or(default), f));
                }
                SelectItem::Column { name, .. } => {
                    // Must be a grouping column.
                    let resolved = resolve_name(&working, name)?;
                    if !group_cols.contains(&resolved) {
                        return Err(sql_err(format!(
                            "column {resolved} must appear in GROUP BY"
                        )));
                    }
                }
                SelectItem::Star => {
                    return Err(sql_err("* not allowed with GROUP BY"));
                }
            }
        }
        let group_refs: Vec<&str> = group_cols.iter().map(|c| c.as_str()).collect();
        let agg_refs: Vec<(&str, AggFn)> =
            aggs.iter().map(|(n, f)| (n.as_str(), f.clone())).collect();
        working = group_by(&working, &group_refs, &agg_refs)?;
    } else {
        // Plain projection (unless SELECT *).
        let is_star = query.items.iter().any(|i| matches!(i, SelectItem::Star));
        if !is_star {
            let cols: Vec<String> = query
                .items
                .iter()
                .map(|i| match i {
                    SelectItem::Column { name, .. } => resolve_name(&working, name),
                    _ => unreachable!("aggregates handled above"),
                })
                .collect::<Result<_, _>>()?;
            let refs: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
            working = working.project("projected", &refs)?;
        }
    }

    // ORDER BY.
    if !query.order_by.is_empty() {
        let keys: Vec<(String, Direction)> = query
            .order_by
            .iter()
            .map(|(n, d)| resolve_name(&working, n).map(|c| (c, *d)))
            .collect::<Result<_, _>>()?;
        let refs: Vec<(&str, Direction)> = keys.iter().map(|(c, d)| (c.as_str(), *d)).collect();
        working = order_by(&working, &refs)?;
    }

    Ok(working)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();

        let schema = Schema::new(vec![
            ("personid", ColumnType::Int),
            ("pattern", ColumnType::Bool),
        ])
        .unwrap();
        let mut tr = Table::new("TR", schema);
        tr.insert_all(vec![
            vec![Value::Int(1), Value::Bool(true)],
            vec![Value::Int(2), Value::Bool(false)],
            vec![Value::Int(3), Value::Bool(true)],
            vec![Value::Int(4), Value::Bool(false)],
        ])
        .unwrap();
        cat.register(tr);

        let schema = Schema::new(vec![
            ("personid", ColumnType::Int),
            ("drug", ColumnType::Bool),
            ("reaction", ColumnType::Bool),
        ])
        .unwrap();
        let mut ts = Table::new("TS", schema);
        ts.insert_all(vec![
            vec![Value::Int(1), Value::Bool(true), Value::Bool(true)],
            vec![Value::Int(2), Value::Bool(true), Value::Bool(false)],
            vec![Value::Int(3), Value::Bool(false), Value::Bool(false)],
            vec![Value::Int(4), Value::Bool(true), Value::Bool(true)],
        ])
        .unwrap();
        cat.register(ts);
        cat
    }

    #[test]
    fn the_papers_medical_query_runs_verbatim() {
        let cat = catalog();
        let result = execute(
            &cat,
            "select pattern, reaction, count(*) \
             from TR join TS on TR.personid = TS.personid \
             where TS.drug = true \
             group by pattern, reaction",
        )
        .unwrap();
        // Drug takers: 1 (T,T), 2 (F,F), 4 (F,T).
        assert_eq!(result.len(), 3);
        assert!(result
            .rows()
            .contains(&vec![Value::Bool(true), Value::Bool(true), Value::Int(1)]));
        assert!(result.rows().contains(&vec![
            Value::Bool(false),
            Value::Bool(false),
            Value::Int(1)
        ]));
        assert!(result.rows().contains(&vec![
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(1)
        ]));
    }

    #[test]
    fn select_star_and_where() {
        let cat = catalog();
        let r = execute(&cat, "select * from TS where drug = true").unwrap();
        assert_eq!(r.len(), 3);
        let r = execute(&cat, "select * from TS where personid >= 3").unwrap();
        assert_eq!(r.len(), 2);
        let r = execute(&cat, "select * from TS where personid != 1").unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn projection_and_alias() {
        let cat = catalog();
        let r = execute(&cat, "select personid from TR where pattern = true").unwrap();
        assert_eq!(r.schema().arity(), 1);
        assert_eq!(r.len(), 2);
        let r = execute(&cat, "select count(*) as n from TR").unwrap();
        assert_eq!(r.schema().columns()[0].name, "n");
        assert_eq!(r.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn aggregates_without_group_by() {
        let cat = catalog();
        let r = execute(
            &cat,
            "select count(*), min(personid), max(personid), sum(personid), avg(personid) from TR",
        )
        .unwrap();
        assert_eq!(
            r.rows()[0],
            vec![
                Value::Int(4),
                Value::Int(1),
                Value::Int(4),
                Value::Int(10),
                Value::Int(2)
            ]
        );
    }

    #[test]
    fn order_by_directions() {
        let cat = catalog();
        let r = execute(&cat, "select personid from TS order by personid desc").unwrap();
        let ids: Vec<i64> = r.rows().iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![4, 3, 2, 1]);
    }

    #[test]
    fn string_literals_and_is_null() {
        let mut cat = Catalog::new();
        let schema =
            Schema::new(vec![("name", ColumnType::Text), ("age", ColumnType::Int)]).unwrap();
        let mut t = Table::new("people", schema);
        t.insert_all(vec![
            vec![Value::from("ana"), Value::Int(30)],
            vec![Value::from("bob"), Value::Null],
            vec![Value::from("o'brien"), Value::Int(44)],
        ])
        .unwrap();
        cat.register(t);
        let r = execute(&cat, "select * from people where name = 'ana'").unwrap();
        assert_eq!(r.len(), 1);
        let r = execute(&cat, "select * from people where name = 'o''brien'").unwrap();
        assert_eq!(r.len(), 1);
        let r = execute(&cat, "select * from people where age is null").unwrap();
        assert_eq!(r.len(), 1);
        let r = execute(&cat, "select * from people where age is not null").unwrap();
        assert_eq!(r.len(), 2);
        // NULL never satisfies a comparison.
        let r = execute(&cat, "select * from people where age > 0").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn grouped_sums_per_key() {
        let mut cat = Catalog::new();
        let schema = Schema::new(vec![
            ("region", ColumnType::Text),
            ("amount", ColumnType::Int),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        t.insert_all(vec![
            vec![Value::from("e"), Value::Int(10)],
            vec![Value::from("e"), Value::Int(30)],
            vec![Value::from("w"), Value::Int(5)],
        ])
        .unwrap();
        cat.register(t);
        let r = execute(
            &cat,
            "select region, sum(amount) as total from sales group by region order by region",
        )
        .unwrap();
        assert_eq!(
            r.rows(),
            &[
                vec![Value::from("e"), Value::Int(40)],
                vec![Value::from("w"), Value::Int(5)],
            ]
        );
    }

    #[test]
    fn error_paths() {
        let cat = catalog();
        assert!(execute(&cat, "select * from missing").is_err());
        assert!(execute(&cat, "select nope from TR").is_err());
        assert!(execute(&cat, "frobnicate TR").is_err());
        assert!(execute(&cat, "select * from TR where").is_err());
        assert!(execute(&cat, "select * from TR where pattern = 'x").is_err());
        assert!(execute(&cat, "select pattern from TR group by personid").is_err());
        assert!(execute(&cat, "select sum(*) from TR").is_err());
        assert!(execute(&cat, "select * from TR extra").is_err());
    }

    #[test]
    fn join_resolves_qualified_columns_on_either_side() {
        let cat = catalog();
        // ON operands reversed relative to FROM/JOIN order.
        let r = execute(
            &cat,
            "select count(*) from TR join TS on TS.personid = TR.personid",
        )
        .unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(4));
    }
}
