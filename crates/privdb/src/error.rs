//! Error type for the relational substrate.

use std::fmt;

/// Errors produced by table construction and query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Columns expected by the schema.
        expected: usize,
        /// Values supplied in the row.
        got: usize,
    },
    /// A value's type does not match its column.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Expected column type (display form).
        expected: String,
        /// Supplied value (display form).
        got: String,
    },
    /// Reference to a column that does not exist.
    NoSuchColumn {
        /// The missing column name.
        column: String,
    },
    /// Two schemas collide (e.g. duplicate column names in a join output).
    DuplicateColumn {
        /// The duplicated name.
        column: String,
    },
    /// Row bytes failed to decode.
    DecodeError {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column:?} expects {expected}, got {got}"),
            DbError::NoSuchColumn { column } => write!(f, "no such column: {column:?}"),
            DbError::DuplicateColumn { column } => write!(f, "duplicate column: {column:?}"),
            DbError::DecodeError { detail } => write!(f, "row decode error: {detail}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DbError::ArityMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("3"));
        assert!(DbError::NoSuchColumn { column: "x".into() }
            .to_string()
            .contains("x"));
    }
}
