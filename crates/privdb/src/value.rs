//! Typed cell values.

use std::fmt;

/// A single cell value. `Ord` is derived so values can key B-tree maps and
/// be sorted deterministically (the protocols sort ciphertext lists; the
/// clear-text oracle sorts values).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL. Compares equal to itself here (bag semantics are enough
    /// for the reproduction; the paper's protocols operate on value sets).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Text(_) => "text",
            Value::Bytes(_) => "bytes",
        }
    }

    /// Extracts a bool, if that is what this is.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an int, if that is what this is.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts text, if that is what this is.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => {
                write!(f, "x'")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                write!(f, "'")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "x'dead'");
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [Value::Int(2),
            Value::Null,
            Value::Text("b".into()),
            Value::Int(1),
            Value::Bool(false)];
        vals.sort();
        // Derived order: Null < Bool < Int < Text < Bytes.
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Int(1));
    }
}
