//! Validated in-memory tables with the scans the protocols need.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::DbError;
use crate::schema::Schema;
use crate::value::Value;

/// A row is an owned vector of cell values.
pub type Row = Vec<Value>;

/// An in-memory table: a schema plus validated rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, schema: Schema) -> Self {
        Table {
            name: name.to_string(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Inserts a row after schema validation.
    pub fn insert(&mut self, row: Row) -> Result<(), DbError> {
        self.schema.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<(), DbError> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// The set of **distinct** values in a column — the paper's `V_S`
    /// (`V_R`): "the set of values (without duplicates) that occur in
    /// `T_S.A`" (§2.2.1). Sorted for determinism.
    pub fn distinct_values(&self, column: &str) -> Result<Vec<Value>, DbError> {
        let idx = self.schema.index_of(column)?;
        let set: BTreeSet<Value> = self.rows.iter().map(|r| r[idx].clone()).collect();
        Ok(set.into_iter().collect())
    }

    /// The **multiset** of values in a column (with duplicates), sorted —
    /// what the equijoin-size protocol of §5.2 operates on.
    pub fn multiset_values(&self, column: &str) -> Result<Vec<Value>, DbError> {
        let idx = self.schema.index_of(column)?;
        let mut vals: Vec<Value> = self.rows.iter().map(|r| r[idx].clone()).collect();
        vals.sort();
        Ok(vals)
    }

    /// Groups rows by the value of `column`: the paper's
    /// `ext(v) = { records of T_S with T_S.A = v }` for every `v` at once.
    pub fn extension_map(&self, column: &str) -> Result<BTreeMap<Value, Vec<Row>>, DbError> {
        let idx = self.schema.index_of(column)?;
        let mut map: BTreeMap<Value, Vec<Row>> = BTreeMap::new();
        for row in &self.rows {
            map.entry(row[idx].clone()).or_default().push(row.clone());
        }
        Ok(map)
    }

    /// Returns a new table with only the rows satisfying `predicate`.
    pub fn filter<F: FnMut(&Row) -> bool>(&self, name: &str, mut predicate: F) -> Table {
        Table {
            name: name.to_string(),
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| predicate(r)).cloned().collect(),
        }
    }

    /// Projects onto the named columns.
    pub fn project(&self, name: &str, columns: &[&str]) -> Result<Table, DbError> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.index_of(c))
            .collect::<Result<_, _>>()?;
        let schema_cols: Vec<(&str, crate::schema::ColumnType)> = indices
            .iter()
            .map(|&i| {
                let c = &self.schema.columns()[i];
                (c.name.as_str(), c.ty)
            })
            .collect();
        let schema = Schema::new(schema_cols)?;
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Table {
            name: name.to_string(),
            schema,
            rows,
        })
    }

    /// Convenience: value of `column` in `row`.
    pub fn value_at(&self, row: &Row, column: &str) -> Result<Value, DbError> {
        Ok(row[self.schema.index_of(column)?].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn people() -> Table {
        let schema =
            Schema::new(vec![("id", ColumnType::Int), ("city", ColumnType::Text)]).unwrap();
        let mut t = Table::new("people", schema);
        t.insert_all(vec![
            vec![Value::Int(1), Value::from("sj")],
            vec![Value::Int(2), Value::from("sf")],
            vec![Value::Int(3), Value::from("sj")],
            vec![Value::Int(4), Value::from("la")],
        ])
        .unwrap();
        t
    }

    #[test]
    fn insert_validates() {
        let mut t = people();
        assert!(t.insert(vec![Value::Int(5), Value::from("ny")]).is_ok());
        assert!(t
            .insert(vec![Value::from("bad"), Value::from("ny")])
            .is_err());
        assert!(t.insert(vec![Value::Int(5)]).is_err());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn distinct_is_deduped_and_sorted() {
        let t = people();
        assert_eq!(
            t.distinct_values("city").unwrap(),
            vec![Value::from("la"), Value::from("sf"), Value::from("sj")]
        );
    }

    #[test]
    fn multiset_keeps_duplicates() {
        let t = people();
        assert_eq!(t.multiset_values("city").unwrap().len(), 4);
    }

    #[test]
    fn extension_map_groups_rows() {
        let t = people();
        let ext = t.extension_map("city").unwrap();
        assert_eq!(ext[&Value::from("sj")].len(), 2);
        assert_eq!(ext[&Value::from("sf")].len(), 1);
        assert_eq!(ext.len(), 3);
    }

    #[test]
    fn filter_and_project() {
        let t = people();
        let sj = t.filter("sj_only", |r| r[1] == Value::from("sj"));
        assert_eq!(sj.len(), 2);
        let ids = sj.project("ids", &["id"]).unwrap();
        assert_eq!(ids.schema().arity(), 1);
        assert_eq!(ids.rows()[0], vec![Value::Int(1)]);
        assert!(t.project("bad", &["nope"]).is_err());
    }

    #[test]
    fn missing_column_errors() {
        let t = people();
        assert!(t.distinct_values("nope").is_err());
        assert!(t.extension_map("nope").is_err());
    }
}
