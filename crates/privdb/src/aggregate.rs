//! Grouped aggregation: `COUNT`, `SUM`, `MIN`, `MAX`, `AVG`.
//!
//! The medical application needs only `COUNT(*)` (see [`crate::query`]),
//! but a substrate a downstream user would adopt needs the rest of the
//! basic aggregate vocabulary — and the `minshare-aggregate` crate's
//! intersection-sum protocol needs a clear-text `SUM` oracle to validate
//! against.

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;

/// An aggregate function over a column (or over rows, for `COUNT`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFn {
    /// `COUNT(*)` — rows per group.
    Count,
    /// `SUM(col)` over an `Int` column (NULLs skipped).
    Sum(String),
    /// `MIN(col)` (NULLs skipped; NULL if the group is all-NULL).
    Min(String),
    /// `MAX(col)` (NULLs skipped; NULL if the group is all-NULL).
    Max(String),
    /// `AVG(col)` over an `Int` column, rounded toward zero
    /// (NULL for empty/all-NULL groups).
    Avg(String),
}

impl AggFn {
    fn column(&self) -> Option<&str> {
        match self {
            AggFn::Count => None,
            AggFn::Sum(c) | AggFn::Min(c) | AggFn::Max(c) | AggFn::Avg(c) => Some(c),
        }
    }

    fn output_type(&self, input: Option<ColumnType>) -> ColumnType {
        match self {
            AggFn::Count | AggFn::Sum(_) | AggFn::Avg(_) => ColumnType::Int,
            AggFn::Min(_) | AggFn::Max(_) => input.unwrap_or(ColumnType::Int),
        }
    }
}

/// Accumulator state for one aggregate in one group.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum { total: i128 },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { total: i128, n: i64 },
}

impl Acc {
    fn new(f: &AggFn) -> Acc {
        match f {
            AggFn::Count => Acc::Count(0),
            AggFn::Sum(_) => Acc::Sum { total: 0 },
            AggFn::Min(_) => Acc::Min(None),
            AggFn::Max(_) => Acc::Max(None),
            AggFn::Avg(_) => Acc::Avg { total: 0, n: 0 },
        }
    }

    fn update(&mut self, value: Option<&Value>, f: &AggFn) -> Result<(), DbError> {
        let type_err = |col: &str, v: &Value| DbError::TypeMismatch {
            column: col.to_string(),
            expected: "int".to_string(),
            got: v.type_name().to_string(),
        };
        match (self, value) {
            (Acc::Count(n), _) => *n += 1,
            (_, Some(Value::Null)) | (_, None) => {}
            (Acc::Sum { total }, Some(v)) => {
                let i = v
                    .as_int()
                    .ok_or_else(|| type_err(f.column().unwrap_or(""), v))?;
                *total += i as i128;
            }
            (Acc::Avg { total, n }, Some(v)) => {
                let i = v
                    .as_int()
                    .ok_or_else(|| type_err(f.column().unwrap_or(""), v))?;
                *total += i as i128;
                *n += 1;
            }
            (Acc::Min(cur), Some(v)) => {
                if cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            (Acc::Max(cur), Some(v)) => {
                if cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::Sum { total } => Value::Int(total as i64),
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Int((total / n as i128) as i64)
                }
            }
        }
    }
}

/// `SELECT group_cols…, aggs… FROM table GROUP BY group_cols…`.
///
/// Each aggregate is `(output column name, function)`. Groups are emitted
/// in sorted key order; with no grouping columns, a single global group
/// is produced (even for an empty table, matching SQL).
pub fn group_by(
    table: &Table,
    group_cols: &[&str],
    aggs: &[(&str, AggFn)],
) -> Result<Table, DbError> {
    let group_idx: Vec<usize> = group_cols
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Result<_, _>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|(_, f)| match f.column() {
            Some(c) => table.schema().index_of(c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    // Output schema.
    let mut cols: Vec<(&str, ColumnType)> = group_idx
        .iter()
        .map(|&i| {
            let c = &table.schema().columns()[i];
            (c.name.as_str(), c.ty)
        })
        .collect();
    for ((name, f), idx) in aggs.iter().zip(&agg_idx) {
        let input_ty = idx.map(|i| table.schema().columns()[i].ty);
        cols.push((name, f.output_type(input_ty)));
    }
    let schema = Schema::new(cols)?;

    // Accumulate.
    let mut groups: BTreeMap<Vec<Value>, Vec<Acc>> = BTreeMap::new();
    if group_cols.is_empty() {
        groups.insert(Vec::new(), aggs.iter().map(|(_, f)| Acc::new(f)).collect());
    }
    for row in table.rows() {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|(_, f)| Acc::new(f)).collect());
        for ((acc, (_, f)), idx) in accs.iter_mut().zip(aggs).zip(&agg_idx) {
            acc.update(idx.map(|i| &row[i]), f)?;
        }
    }

    let mut out = Table::new(&format!("{}_agg", table.name()), schema);
    for (key, accs) in groups {
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        out.insert(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Table {
        let schema = Schema::new(vec![
            ("region", ColumnType::Text),
            ("amount", ColumnType::Int),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        t.insert_all(vec![
            vec![Value::from("east"), Value::Int(10)],
            vec![Value::from("east"), Value::Int(30)],
            vec![Value::from("west"), Value::Int(5)],
            vec![Value::from("west"), Value::Null],
            vec![Value::from("west"), Value::Int(7)],
        ])
        .unwrap();
        t
    }

    #[test]
    fn grouped_count_sum_min_max_avg() {
        let t = sales();
        let out = group_by(
            &t,
            &["region"],
            &[
                ("n", AggFn::Count),
                ("total", AggFn::Sum("amount".into())),
                ("lo", AggFn::Min("amount".into())),
                ("hi", AggFn::Max("amount".into())),
                ("mean", AggFn::Avg("amount".into())),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out.rows()[0],
            vec![
                Value::from("east"),
                Value::Int(2),
                Value::Int(40),
                Value::Int(10),
                Value::Int(30),
                Value::Int(20)
            ]
        );
        // NULL skipped in sum/min/max/avg but counted by COUNT(*).
        assert_eq!(
            out.rows()[1],
            vec![
                Value::from("west"),
                Value::Int(3),
                Value::Int(12),
                Value::Int(5),
                Value::Int(7),
                Value::Int(6)
            ]
        );
    }

    #[test]
    fn global_aggregation_without_groups() {
        let t = sales();
        let out = group_by(&t, &[], &[("total", AggFn::Sum("amount".into()))]).unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(52)]]);
    }

    #[test]
    fn empty_table_global_group() {
        let t = Table::new("empty", Schema::new(vec![("x", ColumnType::Int)]).unwrap());
        let out = group_by(
            &t,
            &[],
            &[("n", AggFn::Count), ("m", AggFn::Min("x".into()))],
        )
        .unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn avg_of_all_null_group_is_null() {
        let schema = Schema::new(vec![("x", ColumnType::Int)]).unwrap();
        let mut t = Table::new("t", schema);
        t.insert(vec![Value::Null]).unwrap();
        let out = group_by(&t, &[], &[("a", AggFn::Avg("x".into()))]).unwrap();
        assert_eq!(out.rows(), &[vec![Value::Null]]);
    }

    #[test]
    fn sum_of_non_int_column_errors() {
        let t = sales();
        assert!(matches!(
            group_by(&t, &[], &[("s", AggFn::Sum("region".into()))]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn min_max_work_on_text() {
        let t = sales();
        let out = group_by(
            &t,
            &[],
            &[
                ("first", AggFn::Min("region".into())),
                ("last", AggFn::Max("region".into())),
            ],
        )
        .unwrap();
        assert_eq!(
            out.rows(),
            &[vec![Value::from("east"), Value::from("west")]]
        );
    }

    #[test]
    fn unknown_columns_error() {
        let t = sales();
        assert!(group_by(&t, &["nope"], &[("n", AggFn::Count)]).is_err());
        assert!(group_by(&t, &[], &[("s", AggFn::Sum("nope".into()))]).is_err());
    }
}
