//! # minshare-privdb
//!
//! A minimal in-memory relational substrate for the `minshare`
//! reproduction of *"Information Sharing Across Private Databases"*
//! (SIGMOD 2003).
//!
//! Figure 1 of the paper places a **Database** component under the
//! cryptographic protocol: each party hosts its private tables locally,
//! extracts the join-attribute values `V_S` / `V_R` and the per-value
//! payload `ext(v)`, and — for validation — can run the same query in the
//! clear. This crate provides exactly that much relational machinery:
//!
//! * [`value::Value`] / [`schema::Schema`] — typed rows,
//! * [`table::Table`] — validated storage with scans, filters, projections,
//! * [`query`] — equijoin and group-by-count (enough to express the
//!   paper's medical-research query of §1.1 / §6.2.2 in the clear),
//! * [`rowcodec`] — canonical byte encoding of values and rows, used both
//!   as protocol input (`h(v)` hashes the canonical encoding) and as the
//!   `ext(v)` payload format.
//!
//! Nothing here is privacy-aware on its own; privacy enters one layer up,
//! in the `minshare` protocol crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod csvio;
pub mod error;
pub mod query;
pub mod rowcodec;
pub mod schema;
pub mod sort;
pub mod sql;
pub mod table;
pub mod value;

pub use error::DbError;
pub use schema::{ColumnType, Schema};
pub use table::Table;
pub use value::Value;
