//! Property-based tests for the relational substrate: CSV round trips
//! over arbitrary typed tables, aggregation against naive oracles, and
//! sort laws.

use minshare_privdb::aggregate::{group_by, AggFn};
use minshare_privdb::csvio::{read_csv, write_csv};
use minshare_privdb::sort::{order_by, Direction};
use minshare_privdb::{query, ColumnType, Schema, Table, Value};
use proptest::prelude::*;

/// Strategy: an arbitrary value of the given type (with NULLs mixed in).
fn value_of(ty: ColumnType) -> BoxedStrategy<Value> {
    let non_null: BoxedStrategy<Value> = match ty {
        ColumnType::Int => any::<i64>().prop_map(Value::Int).boxed(),
        ColumnType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        ColumnType::Text => "[a-z,\"\n ]{0,12}".prop_map(Value::Text).boxed(),
        ColumnType::Bytes => proptest::collection::vec(any::<u8>(), 0..8)
            .prop_map(Value::Bytes)
            .boxed(),
    };
    prop_oneof![
        9 => non_null,
        1 => Just(Value::Null),
    ]
    .boxed()
}

/// Strategy: a random table over a fixed 4-column schema.
fn table() -> impl Strategy<Value = Table> {
    let row = (
        value_of(ColumnType::Int),
        value_of(ColumnType::Text),
        value_of(ColumnType::Bool),
        value_of(ColumnType::Bytes),
    );
    proptest::collection::vec(row, 0..20).prop_map(|rows| {
        let schema = Schema::new(vec![
            ("id", ColumnType::Int),
            ("name", ColumnType::Text),
            ("flag", ColumnType::Bool),
            ("blob", ColumnType::Bytes),
        ])
        .expect("schema");
        let mut t = Table::new("t", schema);
        for (a, b, c, d) in rows {
            t.insert(vec![a, b, c, d]).expect("typed row");
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trips_arbitrary_tables(t in table()) {
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let schema = t.schema().clone();
        let back = read_csv("t", schema, buf.as_slice()).unwrap();
        prop_assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn count_star_equals_row_count(t in table()) {
        let g = group_by(&t, &[], &[("n", AggFn::Count)]).unwrap();
        prop_assert_eq!(g.rows()[0][0].clone(), Value::Int(t.len() as i64));
    }

    #[test]
    fn grouped_counts_sum_to_total(t in table()) {
        let g = group_by(&t, &["flag"], &[("n", AggFn::Count)]).unwrap();
        let total: i64 = g.rows().iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total, t.len() as i64);
    }

    #[test]
    fn min_max_bracket_all_values(t in table()) {
        let g = group_by(
            &t,
            &[],
            &[("lo", AggFn::Min("id".into())), ("hi", AggFn::Max("id".into()))],
        )
        .unwrap();
        let lo = &g.rows()[0][0];
        let hi = &g.rows()[0][1];
        let idx = t.schema().index_of("id").unwrap();
        for row in t.rows() {
            if row[idx] == Value::Null {
                continue;
            }
            prop_assert!(lo <= &row[idx] && &row[idx] <= hi);
        }
    }

    #[test]
    fn order_by_is_sorted_and_permutes(t in table()) {
        let sorted = order_by(&t, &[("id", Direction::Ascending)]).unwrap();
        prop_assert_eq!(sorted.len(), t.len());
        let idx = t.schema().index_of("id").unwrap();
        for w in sorted.rows().windows(2) {
            prop_assert!(w[0][idx] <= w[1][idx]);
        }
        // Same multiset of rows.
        let mut a = t.rows().to_vec();
        let mut b = sorted.rows().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn descending_is_reverse_of_ascending(t in table()) {
        let asc = order_by(&t, &[("id", Direction::Ascending)]).unwrap();
        let desc = order_by(&t, &[("id", Direction::Descending)]).unwrap();
        let idx = t.schema().index_of("id").unwrap();
        let mut asc_keys: Vec<&Value> = asc.rows().iter().map(|r| &r[idx]).collect();
        asc_keys.reverse();
        let desc_keys: Vec<&Value> = desc.rows().iter().map(|r| &r[idx]).collect();
        prop_assert_eq!(asc_keys, desc_keys);
    }

    #[test]
    fn join_row_count_is_sum_of_products(
        left_keys in proptest::collection::vec(0i64..5, 0..15),
        right_keys in proptest::collection::vec(0i64..5, 0..15),
    ) {
        let schema = || Schema::new(vec![("k", ColumnType::Int)]).unwrap();
        let mut l = Table::new("l", schema());
        for k in &left_keys {
            l.insert(vec![Value::Int(*k)]).unwrap();
        }
        let mut r = Table::new("r", schema());
        for k in &right_keys {
            r.insert(vec![Value::Int(*k)]).unwrap();
        }
        let joined = query::equijoin(&l, "k", &r, "k").unwrap();
        let expect: usize = (0..5)
            .map(|k| {
                left_keys.iter().filter(|&&x| x == k).count()
                    * right_keys.iter().filter(|&&x| x == k).count()
            })
            .sum();
        prop_assert_eq!(joined.len(), expect);
    }

    #[test]
    fn sum_agg_matches_naive(ints in proptest::collection::vec(any::<i32>(), 0..20)) {
        let schema = Schema::new(vec![("x", ColumnType::Int)]).unwrap();
        let mut t = Table::new("t", schema);
        for i in &ints {
            t.insert(vec![Value::Int(*i as i64)]).unwrap();
        }
        let g = group_by(&t, &[], &[("s", AggFn::Sum("x".into()))]).unwrap();
        let expect: i64 = ints.iter().map(|&i| i as i64).sum();
        prop_assert_eq!(g.rows()[0][0].clone(), Value::Int(expect));
    }
}
