//! Lexer and parser edge cases that the dataflow engine must survive.
//!
//! Each case here is a shape that broke (or could plausibly break) the
//! token-window heuristics the analyzer used before the syntax-aware
//! engine: string contents that look like code, generics that look like
//! comparisons, char literals that look like open quotes, and
//! `#[cfg(test)]` boundaries that must not leak an exemption into
//! neighbouring code.

use minshare_analyzer::ast;
use minshare_analyzer::lexer::{lex, test_mask, TokKind};
use minshare_analyzer::rules::check_file;

/// Lex, then parse, and assert every delimiter matched up: an unbalanced
/// stream is how a lexer bug turns into a whole-file false-positive flood.
fn parse_balanced(src: &str) -> (Vec<minshare_analyzer::lexer::Token>, Vec<ast::Tree>) {
    let tokens = lex(src);
    let trees = ast::parse(&tokens);
    fn count_leaves(trees: &[ast::Tree], n: &mut usize) {
        for t in trees {
            match t {
                ast::Tree::Leaf(_) => *n += 1,
                ast::Tree::Group(g) => {
                    *n += 2; // open + close delimiter
                    count_leaves(&g.children, n);
                }
            }
        }
    }
    let mut covered = 0usize;
    count_leaves(&trees, &mut covered);
    assert_eq!(
        covered,
        tokens.len(),
        "parse dropped tokens (unbalanced delimiters?) in:\n{src}"
    );
    (tokens, trees)
}

#[test]
fn raw_string_containing_send_call_is_not_a_sink() {
    // The sink name lives inside a raw string literal; the engine must
    // see one Str token, not an ident + paren group.
    let src = r##"
fn doc_text() -> &'static str {
    r#"call transport.send(&values[0]) to ship a frame"#
}

fn shipping<T: Transport>(transport: &mut T, values: &[Vec<u8>]) {
    let label = r"send(";
    let _ = label;
}
"##;
    let (tokens, _) = parse_balanced(src);
    let strs = tokens.iter().filter(|t| t.kind == TokKind::Str).count();
    assert_eq!(strs, 2, "both raw strings must lex as single Str tokens");
    // And no rule fires: the only `send(` texts are inert string data.
    let findings = check_file("crates/net/src/fixture.rs", src);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn turbofish_and_nested_generics_stay_balanced() {
    // Angle brackets are not delimiters; a parser that pairs them breaks
    // on shifts, comparisons, and closed-over generics alike.
    let src = r#"
fn build() -> Vec<Option<Box<[u8; 32]>>> {
    let v = Vec::<Option<u8>>::new();
    let m: HashMap<String, Vec<(u32, u64)>> = HashMap::new();
    let shifted = 1u64 << 3 >> 1;
    let cmp = shifted < 2 && 3 > 1;
    let _ = (v, m, cmp);
    Vec::new()
}
"#;
    let (_, trees) = parse_balanced(src);
    assert!(!trees.is_empty());
    assert!(check_file("crates/net/src/fixture.rs", src).is_empty());
}

#[test]
fn lifetimes_and_char_literals_do_not_open_strings() {
    // `'a` (lifetime), `'\''` and `'('` (char literals) all start with a
    // single quote; only the literals consume a closing quote, and the
    // escaped-quote form must not swallow the delimiter after it.
    let src = r#"
fn pick<'a>(rows: &'a [Vec<u8>], sep: char) -> &'a [u8] {
    let quote = '\'';
    let open = '(';
    let tab = '\t';
    let _ = (quote, open, tab, sep);
    &rows[0]
}
"#;
    let (tokens, _) = parse_balanced(src);
    let lifetimes = tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .count();
    assert!(lifetimes >= 2, "lifetime tokens must not lex as char literals");
    let chars = tokens.iter().filter(|t| t.kind == TokKind::Char).count();
    assert_eq!(chars, 3, "three char literals expected");
}

#[test]
fn cfg_test_module_boundary_is_exact() {
    // The `#[cfg(test)]` mask must cover exactly the annotated module:
    // a wire violation inside it is exempt, an identical one after the
    // module's closing brace is not.
    let src = r#"
#[cfg(test)]
mod tests {
    fn helper<T: Transport>(transport: &mut T, values: &[Vec<u8>]) {
        transport.send(&values[0]);
    }
}

fn after_the_module<T: Transport>(transport: &mut T, values: &[Vec<u8>]) {
    transport.send(&values[0]);
}
"#;
    let tokens = lex(src);
    let mask = test_mask(&tokens);
    assert!(mask.iter().any(|&m| m), "mask must cover the test module");
    assert!(!mask.iter().all(|&m| m), "mask must stop at the module brace");
    let findings = check_file("crates/net/src/fixture.rs", src);
    let wire: Vec<_> = findings.iter().filter(|f| f.rule == "WIRE01").collect();
    assert_eq!(wire.len(), 1, "findings: {findings:#?}");
    assert_eq!(wire[0].line, 10, "only the post-module send is flagged");
}

#[test]
fn byte_strings_and_comments_hide_code_shaped_text() {
    let src = r#"
fn noise() -> &'static [u8] {
    // transport.send(&key.to_bytes()) -- commented out, inert
    /* let key = group.gen_key(rng);
       transport.send(&key.to_bytes()); */
    b"send(&values[0])"
}
"#;
    parse_balanced(src);
    assert!(check_file("crates/net/src/fixture.rs", src).is_empty());
}
