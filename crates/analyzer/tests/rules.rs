//! Fixture tests: at least one positive and one negative case per rule
//! family. Fixtures live under `tests/fixtures/` and are fed to the rule
//! engine as source text — they are never compiled and, because the
//! scanner only walks `crates/*/src/`, never linted as part of the repo.

use minshare_analyzer::rules::check_file;
use minshare_analyzer::Finding;

fn findings_for(rel_path: &str, src: &str, rule: &str) -> Vec<Finding> {
    check_file(rel_path, src)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

fn lines(findings: &[Finding]) -> Vec<u32> {
    findings.iter().map(|f| f.line).collect()
}

// ---------------------------------------------------------------- SEC01

#[test]
fn sec01_flags_debug_and_partial_eq_derives_on_registry_types() {
    let src = include_str!("fixtures/sec01.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "SEC01");
    // One finding per offending derive list: CommutativeKey (Debug and
    // PartialEq combined), SraKey (Debug behind a second attribute).
    assert_eq!(found.len(), 2, "findings: {found:#?}");
    assert!(found.iter().all(|f| f.line == 4 || f.line == 11));
    assert!(found.iter().any(|f| f.message.contains("CommutativeKey")
        && f.message.contains("Debug")
        && f.message.contains("PartialEq")));
    assert!(found
        .iter()
        .any(|f| f.message.contains("SraKey") && f.message.contains("Debug")));
}

#[test]
fn sec01_ignores_public_types_safe_derives_and_non_code() {
    let src = include_str!("fixtures/sec01.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "SEC01");
    // OtQuery (non-registry) and OtReceiverState's Clone-only derive are
    // clean; mentions in comments and string literals never fire.
    assert!(found.iter().all(|f| !f.message.contains("OtQuery")));
    assert!(found.iter().all(|f| !f.message.contains("OtReceiverState")));
    assert!(found.iter().all(|f| !f.message.contains("DirectionKeys")));
}

// ---------------------------------------------------------------- SEC02

#[test]
fn sec02_flags_variable_time_comparisons_of_secret_material() {
    let src = include_str!("fixtures/sec02.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "SEC02");
    assert_eq!(lines(&found), vec![5, 9, 13], "findings: {found:#?}");
}

#[test]
fn sec02_ignores_public_comparisons_and_test_code() {
    let src = include_str!("fixtures/sec02.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "SEC02");
    // The public `modulus()` comparison on line 15 and everything inside
    // the #[cfg(test)] module stay clean.
    assert!(found.iter().all(|f| f.line < 15), "findings: {found:#?}");
}

// --------------------------------------------------------------- PANIC01

#[test]
fn panic01_flags_panic_paths_in_panic_free_crates() {
    let src = include_str!("fixtures/panic01.rs");
    let found = findings_for("crates/net/src/fixture.rs", src, "PANIC01");
    // frame[0], .unwrap(), .expect(), panic! — one finding each.
    assert_eq!(lines(&found), vec![5, 7, 9, 12], "findings: {found:#?}");
}

#[test]
fn panic01_ignores_checked_access_tests_and_other_crates() {
    let src = include_str!("fixtures/panic01.rs");
    // Negative paths in `safe()` and the #[cfg(test)] module are clean.
    let found = findings_for("crates/net/src/fixture.rs", src, "PANIC01");
    assert!(found.iter().all(|f| f.line < 17), "findings: {found:#?}");
    // The rule only applies to the designated panic-free crates.
    assert!(findings_for("crates/cli/src/fixture.rs", src, "PANIC01").is_empty());
    // tests/ directories of panic-free crates are out of scope too.
    assert!(findings_for("crates/net/tests/fixture.rs", src, "PANIC01").is_empty());
}

// ---------------------------------------------------------------- FMT01

#[test]
fn fmt01_flags_formatting_of_secret_material() {
    let src = include_str!("fixtures/fmt01.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "FMT01");
    // {:?} of a registry-type accessor, inline {mac_key:?} capture, and a
    // display placeholder fed the secret-named `phi`.
    assert_eq!(lines(&found), vec![5, 8, 11], "findings: {found:#?}");
}

#[test]
fn fmt01_ignores_public_formatting_and_test_code() {
    let src = include_str!("fixtures/fmt01.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "FMT01");
    assert!(found.iter().all(|f| f.line < 12), "findings: {found:#?}");
}

// ---------------------------------------------------------------- OBS01

#[test]
fn obs01_flags_secret_material_in_trace_call_sites() {
    let src = include_str!("fixtures/obs01.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "OBS01");
    // Direct secret-ident capture, Debug of a registry type, and an
    // inline {mac_key:?} capture in a nested format string.
    assert_eq!(lines(&found), vec![5, 12, 17], "findings: {found:#?}");
    assert!(found[0].message.contains("exponent"));
    assert!(found[1].message.contains("CommutativeKey"));
    assert!(found[2].message.contains("mac_key"));
}

#[test]
fn obs01_ignores_typed_fields_field_access_comments_and_tests() {
    let src = include_str!("fixtures/obs01.rs");
    let found = findings_for("crates/crypto/src/fixture.rs", src, "OBS01");
    // Nothing past the last positive: typed count/size fields, secrets
    // outside telemetry, `run.trace` field access, commented-out calls
    // and test code are all clean.
    assert!(found.iter().all(|f| f.line <= 17), "findings: {found:#?}");
}

// ---------------------------------------------------------------- WIRE01

#[test]
fn wire01_flags_raw_hashed_and_key_material_reaching_wire_sinks() {
    let src = include_str!("fixtures/wire01.rs");
    let found = findings_for("crates/net/src/fixture.rs", src, "WIRE01");
    // Raw send, hash-only send, key send, and a taint chain through
    // rebinding + buffer building.
    assert_eq!(lines(&found), vec![5, 12, 18, 28], "findings: {found:#?}");
    assert!(found[0].message.contains("raw (pre-hash)"));
    assert!(found[1].message.contains("hashed-but-not-encrypted"));
    assert!(found[2].message.contains("key material"));
}

#[test]
fn wire01_passes_h_then_enc_framing_tests_and_respects_scope() {
    let src = include_str!("fixtures/wire01.rs");
    let found = findings_for("crates/net/src/fixture.rs", src, "WIRE01");
    // The blessed prepare→encrypt→send path, counter framing, and test
    // code are all clean.
    assert!(found.iter().all(|f| f.line < 30), "findings: {found:#?}");
    // Registry-exempt files and out-of-scope crates never fire.
    assert!(findings_for("crates/crypto/src/pool.rs", src, "WIRE01").is_empty());
    assert!(findings_for("crates/core/src/tradeoff.rs", src, "WIRE01").is_empty());
    assert!(findings_for("crates/bench/src/fixture.rs", src, "WIRE01").is_empty());
}

// ------------------------------------------------------- stats exporter

#[test]
fn stats_exporter_snapshots_pass_wire01_even_from_tainted_handles() {
    let src = include_str!("fixtures/stats_exporter.rs");
    let found = findings_for("crates/net/src/fixture.rs", src, "WIRE01");
    // Only the smuggled-raw-value reply fires; the three snapshot sends
    // (including one through a taint-carrying engine handle and the
    // epoch-advancing reset variant) are clean.
    assert_eq!(lines(&found), vec![35], "findings: {found:#?}");
    assert!(found[0].message.contains("raw"), "findings: {found:#?}");
}

#[test]
fn stats_serving_telemetry_is_held_to_obs01() {
    let src = include_str!("fixtures/stats_exporter.rs");
    let found = findings_for("crates/net/src/fixture.rs", src, "OBS01");
    // The typed `bytes` size field is clean; naming `exponent` inside
    // the serving event is a capture.
    assert_eq!(lines(&found), vec![48], "findings: {found:#?}");
    assert!(found[0].message.contains("exponent"));
}

// ---------------------------------------------------------------- LOCK01

#[test]
fn lock01_flags_blocking_calls_under_held_guards() {
    let src = include_str!("fixtures/lock01.rs");
    let found = findings_for("crates/net/src/fixture.rs", src, "LOCK01");
    // recv, join, and a pool-batch wait, each under a live guard.
    assert_eq!(lines(&found), vec![7, 14, 20], "findings: {found:#?}");
    assert!(found[0].message.contains("`st`"));
    assert!(found[1].message.contains("`g`"));
    assert!(found[2].message.contains("`map`"));
}

#[test]
fn lock01_passes_condvar_scoping_drop_closures_and_tests() {
    let src = include_str!("fixtures/lock01.rs");
    let found = findings_for("crates/net/src/fixture.rs", src, "LOCK01");
    // Condvar wait(st), block-scoped guard, drop(g), closure bodies,
    // io::Read::read and `let _` are all clean, as is test code.
    assert!(found.iter().all(|f| f.line < 21), "findings: {found:#?}");
    // LOCK01 runs over crypto and net only.
    assert!(findings_for("crates/core/src/fixture.rs", src, "LOCK01").is_empty());
}
