// Stats-exporter fixture: the registered snapshot exporters are the only
// blessed builders of a STATS reply payload (WIRE01), and the serving
// path must stay free of secret captures (OBS01).

fn good_snapshot_reply<T: Transport>(transport: &mut T, registry: &MetricsRegistry) {
    // NEGATIVE: the versioned JSON snapshot is typed-counter output —
    // safe to transmit as the STATS reply payload.
    transport.send(&registry.snapshot_json().into_bytes());
}

fn good_snapshot_from_tainted_handle<T: Transport>(transport: &mut T, values: &[Vec<u8>]) {
    // NEGATIVE: even when the handle reaching the registry is itself
    // taint-carrying (the daemon's stats provider lives beside the
    // private database), the exporter's rendered output stays clean —
    // exactly what registering it asserts.
    let engine = build_engine(values);
    transport.send(&engine.metrics.snapshot_json().into_bytes());
}

fn good_scrape_and_reset<T: Transport>(transport: &mut T, engine: &Engine) {
    // NEGATIVE: the epoch-advancing variant is registered too.
    transport.send(&engine.metrics.snapshot_and_reset().into_bytes());
}

fn bad_snapshot_plus_raw<T: Transport>(
    transport: &mut T,
    registry: &MetricsRegistry,
    values: &[Vec<u8>],
) {
    // POSITIVE: smuggling a raw value into a stats reply is still a
    // leak — the exporter blesses its own output, not the buffer built
    // around it.
    let mut payload = registry.snapshot_json().into_bytes();
    payload.extend_from_slice(&values[0]);
    transport.send(&payload);
}

fn good_stats_served_event(payload: &[u8]) {
    // NEGATIVE: the serving event carries only a typed size field.
    minshare_trace::emit("server", "stats_served", false, || {
        vec![minshare_trace::size("bytes", payload.len() as u64)]
    });
}

fn bad_stats_event_naming_a_secret(exponent: &UBig) {
    // POSITIVE (OBS01): secret material named inside the stats-serving
    // telemetry call site.
    minshare_trace::emit("server", "stats_served", false, || {
        vec![minshare_trace::count("exponent", exponent.bit_len() as u64)]
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_build_any_payload() {
        // NEGATIVE: test code is exempt.
        transport.send(&values[0]);
    }
}
