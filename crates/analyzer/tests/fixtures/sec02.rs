// SEC02 fixture: variable-time comparison of secret material.

pub fn checks(a: &Key, b: &Key) -> bool {
    // POSITIVE: `==` on a secret accessor.
    if a.exponent() == b.exponent() {
        return true;
    }
    // POSITIVE: `!=` on a secret field.
    if a.mac_key != b.mac_key {
        return false;
    }
    // POSITIVE: assert_eq! on secret material outside tests.
    assert_eq!(a.opad_block, b.opad_block);
    // NEGATIVE: comparing public material.
    a.modulus() == b.modulus()
}

#[cfg(test)]
mod tests {
    // NEGATIVE: test code may compare secrets with `==`.
    #[test]
    fn eq_in_tests_is_fine() {
        assert_eq!(key_a.exponent(), key_b.exponent());
        assert!(key_a.mac_key == key_b.mac_key);
    }
}
