// SEC01 fixture: derives on secret vs. non-secret types.

// POSITIVE: registry type deriving Debug and PartialEq.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommutativeKey {
    e: u64,
    e_inv: u64,
}

// POSITIVE: registry type deriving Debug through a multi-attr item.
#[derive(Debug)]
#[repr(C)]
pub struct SraKey {
    e: u64,
}

// NEGATIVE: public wire type may derive freely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtQuery {
    pub pk0: u64,
}

// NEGATIVE: registry type with only safe derives.
#[derive(Clone)]
pub struct OtReceiverState {
    k: u64,
}

// NEGATIVE: mention inside a comment — #[derive(Debug)] on CommutativeKey —
// and inside a string must not fire.
pub const DOC: &str = "#[derive(Debug)] pub struct DirectionKeys {}";
