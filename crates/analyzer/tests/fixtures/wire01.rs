// WIRE01 fixture: nothing but hash-then-encrypt output reaches the wire.

fn bad_raw_send<T: Transport>(transport: &mut T, values: &[Vec<u8>]) {
    // POSITIVE: a raw set value straight onto the wire.
    transport.send(&values[0]);
}

fn bad_hash_only<T: Transport>(group: &QrGroup, transport: &mut T, values: &[Vec<u8>]) {
    // POSITIVE: hashed but not encrypted — a bare h(v) permits offline
    // dictionary probing.
    let hashed = group.hash_value(&values[0]);
    transport.send(&frame_bytes(&hashed));
}

fn bad_key_send<T: Transport, R: Rng>(group: &QrGroup, transport: &mut T, rng: &mut R) {
    // POSITIVE: key material can never travel.
    let key = group.gen_key(rng);
    transport.send(&key.to_bytes());
}

fn bad_alias_chain<T: Transport>(transport: &mut T, values: &[Vec<u8>]) {
    // POSITIVE: taint survives rebinding and buffer building.
    let staged = values.to_vec();
    let mut frame = Vec::new();
    for v in &staged {
        frame.extend_from_slice(v);
    }
    transport.send_batch(&frame);
}

fn good_h_then_enc<T: Transport, R: Rng>(
    group: &QrGroup,
    transport: &mut T,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<(), ProtocolError> {
    // NEGATIVE: the blessed path — hash, encrypt, send.
    let prepared = prepare_set(group, values)?;
    let key = group.gen_key(rng);
    let ys: Vec<UBig> = prepared.iter().map(|h| group.encrypt(&key, h)).collect();
    transport.send_batch(&ys);
    Ok(())
}

fn good_framing<T: Transport>(transport: &mut T, n: u64) {
    // NEGATIVE: protocol framing carries only public counters.
    transport.send(&n.to_le_bytes());
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_harness_may_send_anything() {
        // NEGATIVE: test code is exempt.
        transport.send(&values[0]);
    }
}
