// FMT01 fixture: formatting secret material.

pub fn logging(key: &CommutativeKey, n: u64) {
    // POSITIVE: debug-formatting a registry type.
    println!("key state: {:?}", key.inverse_exponent());
    // POSITIVE: inline capture of a secret identifier.
    let mac_key = [0u8; 32];
    let line = format!("mac: {mac_key:?}");
    // POSITIVE: display-formatting a secret-named argument.
    let phi = n;
    eprintln!("totient is {}", phi);
    // NEGATIVE: formatting public values.
    println!("modulus bits: {} count: {n}", n);
    // NEGATIVE: no placeholders at all.
    println!("nothing interpolated");
    let _ = line;
}

#[cfg(test)]
mod tests {
    #[test]
    fn debug_in_tests_is_fine() {
        // NEGATIVE: tests may format secrets (e.g. redaction tests).
        let rendered = format!("{:?}", key.exponent());
        assert!(rendered.contains("redacted"));
    }
}
