// LOCK01 fixture: no blocking calls while a lock guard is held.

impl Pool {
    fn bad_recv_under_lock(&self) {
        // POSITIVE: recv while holding the state lock.
        let st = self.state.lock();
        let msg = self.rx.recv();
        drop(st);
    }

    fn bad_join_under_lock(&self, handle: JoinHandle<()>) {
        // POSITIVE: join while holding a write guard.
        let g = self.inner.write();
        handle.join();
    }

    fn bad_wait_under_lock(&self, pending: &PendingBatch) {
        // POSITIVE: waiting on a pool batch with the map locked.
        let map = self.map.lock();
        let out = pending.wait();
    }

    fn good_condvar_wait(&self) {
        // NEGATIVE: condvar wait consumes the guard, releasing the lock
        // while parked.
        let mut st = self.shared.lock();
        while !st.ready {
            st = self.cv.wait(st);
        }
    }

    fn good_scoped_guard(&self) {
        // NEGATIVE: the guard's block ends before the blocking call.
        {
            let g = self.state.lock();
            g.touch();
        }
        self.rx.recv();
    }

    fn good_drop_first(&self) {
        // NEGATIVE: explicit drop ends the guard scope.
        let g = self.state.lock();
        g.touch();
        drop(g);
        self.rx.recv();
    }

    fn good_closure_blocks_elsewhere(&self) {
        // NEGATIVE: the blocking call runs in another thread's closure.
        let g = self.state.lock();
        let h = std::thread::spawn(move || worker.rx.recv());
    }

    fn good_io_read_is_not_a_guard(&self, r: &mut impl Read, buf: &mut [u8]) {
        // NEGATIVE: `Read::read` takes arguments — not a guard
        // acquisition — so the later recv is unguarded.
        let n = r.read(buf);
        self.rx.recv();
    }

    fn good_immediate_drop(&self) {
        // NEGATIVE: `let _ = …lock()` drops the guard on the spot.
        let _ = self.state.lock();
        self.rx.recv();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_join_under_lock() {
        // NEGATIVE: test code is exempt.
        let g = state.lock();
        handle.join();
    }
}
