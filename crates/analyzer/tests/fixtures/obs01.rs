// OBS01 fixture: secret material must never reach telemetry call sites.

fn bad_direct(exponent: &[u8]) {
    // POSITIVE: secret identifier fed into a trace field builder.
    minshare_trace::emit("crypto", "encrypt", true, || {
        vec![minshare_trace::size("key_bits", exponent.len() as u64)]
    });
}

fn bad_debug() {
    // POSITIVE: Debug-formatting a registry type inside a trace call.
    trace::event("crypto", format!("{:?}", CommutativeKey::default()));
}

fn bad_inline_capture(mac_key: &[u8; 32]) {
    // POSITIVE: inline capture names the secret in the format string.
    minshare_trace::emit("net", "sealed", false, || {
        vec![minshare_trace::flag("redacted", format!("{mac_key:?}").is_empty())]
    });
}

fn good_counts(items: u64, bytes: u64) {
    // NEGATIVE: typed count/size fields are exactly what the layer is for.
    minshare_trace::emit("net", "frame_sent", true, || {
        vec![
            minshare_trace::count("items", items),
            minshare_trace::size("bytes", bytes),
        ]
    });
}

fn good_outside_telemetry(exponent: &[u8]) {
    // NEGATIVE: secret use outside a telemetry call site is not OBS01's
    // business (SEC02/FMT01 cover comparisons and logging).
    let _bits = exponent.len() * 8;
}

fn good_field_access(run: &SimTwoPartyRun<(), ()>) {
    // NEGATIVE: `run.trace` is a field access, not the trace crate path.
    let _digest = run.trace.digest();
}

// NEGATIVE: a comment mentioning minshare_trace::emit(exponent) never fires.

#[cfg(test)]
mod tests {
    #[test]
    fn redaction_tests_may_mention_secrets() {
        // NEGATIVE: test code is exempt, as for FMT01.
        minshare_trace::emit("crypto", "encrypt", true, || {
            vec![minshare_trace::size("key_bits", exponent.len() as u64)]
        });
    }
}
