// PANIC01 fixture: panic paths in peer-facing code.

pub fn parse(frame: &[u8]) -> u8 {
    // POSITIVE: direct slice indexing.
    let tag = frame[0];
    // POSITIVE: unwrap on peer data.
    let first = frame.first().unwrap();
    // POSITIVE: expect.
    let second = frame.get(1).expect("second byte");
    // POSITIVE: panic!.
    if tag > 9 {
        panic!("bad tag");
    }
    tag + first + second
}

pub fn safe(frame: &[u8]) -> Option<u8> {
    // NEGATIVE: checked access.
    let tag = frame.first()?;
    // NEGATIVE: array *type* syntax and macro brackets are not indexing.
    let zeroed: [u8; 4] = [0; 4];
    let v = vec![1, 2, 3];
    Some(*tag + zeroed.len() as u8 + v.len() as u8)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        // NEGATIVE: tests may unwrap and index freely.
        let frame = [1u8, 2];
        assert_eq!(frame[0], parse(&frame).unwrap());
        panic!("even this is fine in a test");
    }
}
