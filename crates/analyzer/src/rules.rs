//! The five lint rule families, as token-stream pattern matchers.

use crate::lexer::{test_mask, Token, TokKind};
use crate::registry;
use crate::Finding;

/// Runs every rule applicable to `rel_path` over `src` and returns the
/// findings, sorted by position.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = crate::lexer::lex(src);
    let mask = test_mask(&tokens);
    let mut findings = Vec::new();
    findings.extend(sec01_derives(rel_path, &tokens));
    findings.extend(sec02_comparisons(rel_path, &tokens, &mask));
    if registry::in_panic_free_crate(rel_path) {
        findings.extend(panic01_panics(rel_path, &tokens, &mask));
    }
    findings.extend(fmt01_formatting(rel_path, &tokens, &mask));
    findings.extend(obs01_trace_telemetry(rel_path, &tokens, &mask));
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

fn finding(rule: &'static str, rel_path: &str, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        file: rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Index of the token closing the group opened at `open` (matching
/// bracket of the same shape), or `tokens.len()` if unbalanced.
fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (open_s, close_s) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].text == open_s {
            depth += 1;
        } else if tokens[i].text == close_s {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// SEC01: `#[derive(Debug)]` / `#[derive(PartialEq)]` on registry types.
///
/// Applies to test code too — a secret type is a secret type wherever it
/// is declared.
fn sec01_derives(rel_path: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "derive"
            || i < 2
            || tokens[i - 1].text != "["
            || tokens[i - 2].text != "#"
        {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|t| t.text == "(") else {
            continue;
        };
        let _ = open;
        let close = matching_close(tokens, i + 1);
        let derived: Vec<&Token> = tokens[i + 2..close]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .collect();
        let bad: Vec<&str> = derived
            .iter()
            .map(|t| t.text.as_str())
            .filter(|t| *t == "Debug" || *t == "PartialEq")
            .collect();
        if bad.is_empty() {
            continue;
        }
        // Walk past `)]` and any further attributes to the item header.
        let mut k = close + 2;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            k = matching_close(tokens, k + 1) + 1;
        }
        let mut name: Option<&str> = None;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "struct" | "enum" | "union" => {
                    name = tokens.get(k + 1).map(|t| t.text.as_str());
                    break;
                }
                "{" | ";" | "fn" | "impl" | "trait" => break,
                _ => k += 1,
            }
        }
        if let Some(name) = name {
            if registry::is_secret_type(name) {
                out.push(finding(
                    "SEC01",
                    rel_path,
                    &tokens[i],
                    format!(
                        "secret type `{name}` derives {}; use a redacted Debug impl and \
                         constant-time equality (minshare_hash::ct) instead",
                        bad.join(" and ")
                    ),
                ));
            }
        }
    }
    out
}

/// How many tokens around a comparison operator to inspect for secret
/// identifiers. Covers expressions like `self.mac_key == other.mac_key`.
const SEC02_WINDOW: usize = 8;

/// SEC02: variable-time comparison of secret material.
fn sec02_comparisons(rel_path: &str, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            // The window never crosses a statement boundary, so secret
            // identifiers in an adjacent statement cannot taint this one.
            let is_stmt_boundary =
                |t: &Token| t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}");
            let mut lo = i.saturating_sub(SEC02_WINDOW);
            let mut hi = (i + 1 + SEC02_WINDOW).min(tokens.len());
            if let Some(off) = tokens[lo..i].iter().rposition(is_stmt_boundary) {
                lo += off + 1;
            }
            if let Some(off) = tokens[i + 1..hi].iter().position(is_stmt_boundary) {
                hi = i + 1 + off;
            }
            if let Some(sec) = tokens[lo..hi]
                .iter()
                .find(|t| t.kind == TokKind::Ident && registry::is_secret_ident(&t.text))
            {
                out.push(finding(
                    "SEC02",
                    rel_path,
                    t,
                    format!(
                        "`{}` compares secret material (`{}`); use minshare_hash::ct::ct_eq \
                         for constant-time comparison",
                        t.text, sec.text
                    ),
                ));
            }
        }
        if t.kind == TokKind::Ident
            && (t.text == "assert_eq" || t.text == "assert_ne")
            && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("!")
            && tokens.get(i + 2).map(|n| n.text.as_str()) == Some("(")
        {
            let close = matching_close(tokens, i + 2);
            if let Some(sec) = tokens[i + 3..close.min(tokens.len())]
                .iter()
                .find(|t| t.kind == TokKind::Ident && registry::is_secret_ident(&t.text))
            {
                out.push(finding(
                    "SEC02",
                    rel_path,
                    t,
                    format!(
                        "`{}!` on secret material (`{}`) outside tests; use \
                         minshare_hash::ct::ct_eq",
                        t.text, sec.text
                    ),
                ));
            }
        }
    }
    out
}

/// PANIC01: panic paths in crates that parse peer-supplied data.
fn panic01_panics(rel_path: &str, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let after_dot = i > 0 && tokens[i - 1].text == ".";
                let called = tokens.get(i + 1).map(|n| n.text.as_str()) == Some("(");
                if after_dot && called {
                    out.push(finding(
                        "PANIC01",
                        rel_path,
                        t,
                        format!(
                            "`.{}()` in peer-facing crate; return a typed error instead",
                            t.text
                        ),
                    ));
                }
            }
            TokKind::Ident
                if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") =>
            {
                if tokens.get(i + 1).map(|n| n.text.as_str()) == Some("!") {
                    out.push(finding(
                        "PANIC01",
                        rel_path,
                        t,
                        format!(
                            "`{}!` in peer-facing crate; return a typed error instead",
                            t.text
                        ),
                    ));
                }
            }
            TokKind::Punct if t.text == "[" && i > 0 => {
                // Direct indexing `expr[...]`: `[` directly after an
                // identifier, `)` or `]`. Attributes (`#[...]`) and
                // macro brackets (`vec![...]`) do not match this shape.
                let prev = &tokens[i - 1];
                let indexes = (prev.kind == TokKind::Ident
                    && !is_keyword(&prev.text))
                    || prev.text == ")"
                    || prev.text == "]";
                if indexes {
                    out.push(finding(
                        "PANIC01",
                        rel_path,
                        t,
                        "direct slice indexing can panic on peer-controlled lengths; \
                         use .get()/.get_mut() or a checked split"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

fn is_keyword(ident: &str) -> bool {
    matches!(
        ident,
        "as" | "break" | "const" | "continue" | "crate" | "dyn" | "else" | "enum" | "extern"
            | "fn" | "for" | "if" | "impl" | "in" | "let" | "loop" | "match" | "mod" | "move"
            | "mut" | "pub" | "ref" | "return" | "static" | "struct" | "trait" | "type"
            | "union" | "unsafe" | "use" | "where" | "while"
    )
}

/// Macros whose first string argument is a format string.
const FMT_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "format", "write", "writeln", "info", "warn",
    "error", "debug", "trace",
];

/// FMT01: formatting secret material into strings/logs.
fn fmt01_formatting(rel_path: &str, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokKind::Ident
            || !FMT_MACROS.contains(&t.text.as_str())
            || tokens.get(i + 1).map(|n| n.text.as_str()) != Some("!")
            || tokens.get(i + 2).map(|n| n.text.as_str()) != Some("(")
        {
            continue;
        }
        let close = matching_close(tokens, i + 2);
        let args = &tokens[i + 3..close.min(tokens.len())];
        let Some(fmt_str) = args.iter().find(|a| a.kind == TokKind::Str) else {
            continue;
        };
        let placeholders = parse_placeholders(&fmt_str.text);
        if placeholders.is_empty() {
            continue;
        }
        // Inline captures: `{mac_key:?}` names the secret directly.
        let inline_secret = placeholders.iter().find(|p| {
            registry::is_secret_ident(p) || registry::is_secret_type(p)
        });
        // Positional placeholders: any argument expression mentioning a
        // secret identifier or registry type feeds some placeholder.
        let arg_secret = args.iter().find(|a| {
            a.kind == TokKind::Ident
                && (registry::is_secret_ident(&a.text) || registry::is_secret_type(&a.text))
        });
        if let Some(name) = inline_secret.map(|s| s.as_str()).or(arg_secret.map(|a| a.text.as_str()))
        {
            out.push(finding(
                "FMT01",
                rel_path,
                t,
                format!(
                    "`{}!` formats secret material (`{name}`); secrets must never reach \
                     strings or logs",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Leading path segments that mark a telemetry call site: the
/// `minshare_trace` crate and its conventional `trace` alias (covers
/// `use minshare_trace as trace;` and re-export modules named `trace`).
const OBS01_TRACE_HEADS: &[&str] = &["trace", "minshare_trace"];

/// OBS01: secret material inside telemetry call sites.
///
/// The trace layer is secret-safe by construction — fields are typed
/// counts, sizes, durations and flags — so any registered secret
/// identifier or type appearing *anywhere* inside a
/// `trace::…(...)`/`minshare_trace::…(...)` call (including the lazy
/// field closure, nested `format!` arguments, and inline `{secret:?}`
/// captures in string literals) is a leak of key material into
/// observability output. Test code is exempt, like FMT01: redaction
/// tests legitimately format secrets to assert on the redacted text.
fn obs01_trace_telemetry(rel_path: &str, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if mask[i] {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        let is_head = t.kind == TokKind::Ident
            && OBS01_TRACE_HEADS.contains(&t.text.as_str())
            && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("::")
            // `run.trace` / `self.trace` is a field access, not the path.
            && (i == 0 || tokens[i - 1].text != ".");
        if !is_head {
            i += 1;
            continue;
        }
        // Walk the rest of the path (`trace::sink::…`) to its final
        // segment, then require a call.
        let mut j = i;
        while tokens.get(j + 1).map(|n| n.text.as_str()) == Some("::")
            && tokens.get(j + 2).map(|n| n.kind == TokKind::Ident) == Some(true)
        {
            j += 2;
        }
        if tokens.get(j + 1).map(|n| n.text.as_str()) != Some("(") {
            i = j + 1;
            continue;
        }
        let close = matching_close(tokens, j + 1);
        let args = &tokens[j + 2..close.min(tokens.len())];
        let direct = args.iter().find(|a| {
            a.kind == TokKind::Ident
                && (registry::is_secret_ident(&a.text) || registry::is_secret_type(&a.text))
        });
        let via_placeholder = args.iter().filter(|a| a.kind == TokKind::Str).find_map(|a| {
            parse_placeholders(&a.text)
                .into_iter()
                .find(|p| registry::is_secret_ident(p) || registry::is_secret_type(p))
        });
        if let Some(name) = direct.map(|a| a.text.clone()).or(via_placeholder) {
            out.push(finding(
                "OBS01",
                rel_path,
                t,
                format!(
                    "telemetry call site captures secret material (`{name}`); trace \
                     fields are counts, sizes, durations and flags — never secret values"
                ),
            ));
        }
        // Nested trace calls inside `args` were scanned with the outer
        // call; one finding per outermost site.
        i = close.max(j) + 1;
    }
    out
}

/// Extracts placeholder names from a format string: `{name}` / `{name:?}`
/// yield `name`; positional `{}` / `{:?}` / `{0}` yield `""`. `{{` is an
/// escape, not a placeholder.
fn parse_placeholders(fmt: &str) -> Vec<String> {
    let bytes = fmt.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'}' {
                j += 1;
            }
            let inner = &fmt[i + 1..j.min(fmt.len())];
            let name: String = inner
                .split(':')
                .next()
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let name = if name.chars().all(|c| c.is_ascii_digit()) {
                String::new()
            } else {
                name
            };
            out.push(name);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_parsing() {
        assert_eq!(parse_placeholders("no holes"), Vec::<String>::new());
        assert_eq!(parse_placeholders("{} and {:?}"), vec!["", ""]);
        assert_eq!(parse_placeholders("{key:?} {0}"), vec!["key", ""]);
        assert_eq!(parse_placeholders("{{escaped}} {x}"), vec!["x"]);
    }

    #[test]
    fn matching_close_handles_nesting() {
        // Tokens: f ( a , ( b , c ) , d ) g — outer `(` at 1 closes at 11.
        let toks = crate::lexer::lex("f(a, (b, c), d) g");
        assert_eq!(matching_close(&toks, 1), 11);
    }
}
