//! The lint rule families.
//!
//! SEC01 and PANIC01 remain token-stream pattern matchers (their targets
//! — derives and panic sites — are purely syntactic). SEC02, FMT01,
//! OBS01, WIRE01 and LOCK01 run on the token-tree + taint engine
//! (`ast` → `dataflow` → `taint`), so a secret flowing through a local
//! binding is caught, while an unrelated identifier eight tokens away no
//! longer trips a window heuristic.

use crate::ast::{self, Delim, Tree};
use crate::dataflow::{self, FnDef};
use crate::lexer::{test_mask, TokKind, Token};
use crate::registry;
use crate::taint::{self, FnTaint, KEY};
use crate::Finding;

/// Runs every rule applicable to `rel_path` over `src` and returns the
/// findings, sorted by position.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = crate::lexer::lex(src);
    let mask = test_mask(&tokens);
    let trees = ast::parse(&tokens);
    let fns = dataflow::functions(&tokens, &trees);
    let mut findings = Vec::new();
    findings.extend(sec01_derives(rel_path, &tokens));
    if registry::in_panic_free_crate(rel_path) {
        findings.extend(panic01_panics(rel_path, &tokens, &mask));
    }
    let wire = registry::in_wire01_scope(rel_path);
    let lock = registry::in_lock01_scope(rel_path);
    for f in &fns {
        let ft = taint::analyze_fn(&tokens, f);
        sec02_fn(rel_path, &tokens, &mask, f, &ft, &mut findings);
        fmt01_fn(rel_path, &tokens, &mask, f, &ft, &mut findings);
        obs01_fn(rel_path, &tokens, &mask, f, &ft, &mut findings);
        if wire {
            taint::wire01_fn(rel_path, &tokens, &mask, f, &ft, &mut findings);
        }
        if lock {
            taint::lock01_fn(rel_path, &tokens, &mask, f, &mut findings);
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    // Nested named fns are members of their enclosing fn's body too;
    // drop the duplicate scan's findings.
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.col == b.col);
    findings
}

/// Per-rule rationale for `--explain RULE` (and SECURITY.md's tables).
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "SEC01" => {
            "SEC01 — no Debug/PartialEq derives on secret types.\n\
             A derived Debug prints key material into panic messages and logs; a\n\
             derived PartialEq compares secrets in variable time, leaking match\n\
             length through timing. Secret types (see analyzer registry\n\
             SECRET_TYPES) must implement a redacted Debug and constant-time\n\
             equality (minshare_hash::ct) by hand. Applies to test code too: a\n\
             secret type is a secret type wherever it is declared."
        }
        "SEC02" => {
            "SEC02 — no variable-time comparison of secret material.\n\
             `==`, `!=` and assert_eq!/assert_ne! short-circuit on the first\n\
             differing byte, so comparison time reveals how much of a secret an\n\
             attacker guessed. The taint engine flags comparisons whose operands\n\
             carry KEY taint (registered secret idents/types, key-source call\n\
             results, or bindings derived from them). Use\n\
             minshare_hash::ct::ct_eq. Test code is exempt."
        }
        "PANIC01" => {
            "PANIC01 — no panic paths in peer-facing crates (crypto, core, net).\n\
             These crates parse peer-supplied bytes; an unwrap/expect/panic!/\n\
             direct index reachable from a message is a remote denial of\n\
             service. Return typed errors; index with .get(). Test code is\n\
             exempt, as are the other workspace crates."
        }
        "FMT01" => {
            "FMT01 — no secret material in format strings.\n\
             format!/println!/write!-family macros move their arguments into\n\
             strings that outlive the call: logs, error messages, panic output.\n\
             The taint engine flags macro arguments (and inline `{name}`\n\
             captures) carrying KEY taint. Test code is exempt: redaction tests\n\
             legitimately format secrets to assert on the redacted text."
        }
        "OBS01" => {
            "OBS01 — no secret material at telemetry call sites.\n\
             The trace layer is secret-safe by construction: fields are typed\n\
             counts, sizes, durations and flags. Any KEY-tainted expression (or\n\
             inline string capture) inside a trace::/minshare_trace:: call —\n\
             including the lazy field closure — would leak key material into\n\
             observability output, which is exported, retained and searchable.\n\
             Enforced as a count-0 ratchet anchor."
        }
        "WIRE01" => {
            "WIRE01 — nothing but h-then-enc reaches the wire.\n\
             The paper's minimal-sharing argument (§3) rests on one discipline:\n\
             a party transmits only f_e(h(v)) — hashed then commutatively\n\
             encrypted — plus protocol framing. The taint engine tracks RAW set\n\
             values, HASHED-but-not-encrypted values and KEY material through\n\
             bindings; any of the three reaching a Transport::send/send_batch,\n\
             wire encode_*, FrameBatch writer or chunked-send helper is excess\n\
             leakage (a bare h(v) permits offline dictionary probing). Runs\n\
             over core, crypto and net; expected count 0, anchored in the\n\
             baseline. File-level exemptions live in the registry with their\n\
             justifications (tradeoff.rs's deliberate Bloom disclosure,\n\
             pool.rs's in-process channels). See SECURITY.md for the model's\n\
             limits."
        }
        "LOCK01" => {
            "LOCK01 — no blocking calls while holding a lock guard.\n\
             A recv/join/wait under a held Mutex/parking_lot guard in the pool\n\
             or transport stack can deadlock a protocol party: the peer that\n\
             would unblock the call may itself be waiting on the lock. The\n\
             engine tracks `let g = ….lock()/read()/write()` guard bindings to\n\
             the end of their scope (or an explicit `drop(g)`) and flags\n\
             blocking calls inside it. Condvar-style `cv.wait(&mut g)` is\n\
             exempt — it releases the lock while parked — as are closures\n\
             (other threads). Runs over crypto and net; expected count 0,\n\
             anchored in the baseline."
        }
        _ => return None,
    })
}

/// Every rule the analyzer knows, for `--explain` discovery.
pub const ALL_RULES: &[&str] = &[
    "SEC01", "SEC02", "PANIC01", "FMT01", "OBS01", "WIRE01", "LOCK01",
];

fn finding(rule: &'static str, rel_path: &str, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        file: rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Index of the token closing the group opened at `open` (matching
/// bracket of the same shape), or `tokens.len()` if unbalanced.
fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (open_s, close_s) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].text == open_s {
            depth += 1;
        } else if tokens[i].text == close_s {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// SEC01: `#[derive(Debug)]` / `#[derive(PartialEq)]` on registry types.
///
/// Applies to test code too — a secret type is a secret type wherever it
/// is declared.
fn sec01_derives(rel_path: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "derive"
            || i < 2
            || tokens[i - 1].text != "["
            || tokens[i - 2].text != "#"
        {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|t| t.text == "(") else {
            continue;
        };
        let _ = open;
        let close = matching_close(tokens, i + 1);
        let derived: Vec<&Token> = tokens[i + 2..close]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .collect();
        let bad: Vec<&str> = derived
            .iter()
            .map(|t| t.text.as_str())
            .filter(|t| *t == "Debug" || *t == "PartialEq")
            .collect();
        if bad.is_empty() {
            continue;
        }
        // Walk past `)]` and any further attributes to the item header.
        let mut k = close + 2;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            k = matching_close(tokens, k + 1) + 1;
        }
        let mut name: Option<&str> = None;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "struct" | "enum" | "union" => {
                    name = tokens.get(k + 1).map(|t| t.text.as_str());
                    break;
                }
                "{" | ";" | "fn" | "impl" | "trait" => break,
                _ => k += 1,
            }
        }
        if let Some(name) = name {
            if registry::is_secret_type(name) {
                out.push(finding(
                    "SEC01",
                    rel_path,
                    &tokens[i],
                    format!(
                        "secret type `{name}` derives {}; use a redacted Debug impl and \
                         constant-time equality (minshare_hash::ct) instead",
                        bad.join(" and ")
                    ),
                ));
            }
        }
    }
    out
}

/// Sibling-list tokens that end a comparison operand: the taint check
/// never crosses these, so an unrelated neighbouring expression cannot
/// trip the rule (the old ±8-token window's false-positive mode).
fn is_operand_boundary(tokens: &[Token], tree: &Tree) -> bool {
    match tree {
        Tree::Leaf(i) => tokens.get(*i).is_some_and(|t| match t.kind {
            TokKind::Punct => matches!(t.text.as_str(), "," | ";" | "&&" | "||" | "=" | "=>"),
            TokKind::Ident => matches!(
                t.text.as_str(),
                "let" | "if" | "else" | "while" | "for" | "in" | "match" | "return"
            ),
            _ => false,
        }),
        // A `{` ends the expression being compared: `if a == b { … }`
        // must not read the if-body as part of the right operand.
        Tree::Group(g) => g.delim == Delim::Brace,
    }
}

/// SEC02: variable-time comparison of KEY-tainted material.
fn sec02_fn(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    f: &FnDef,
    ft: &FnTaint,
    out: &mut Vec<Finding>,
) {
    ast::walk_sibling_lists(std::slice::from_ref(&Tree::Group(f.body.clone())), &mut |list| {
        for (i, tree) in list.iter().enumerate() {
            let Tree::Leaf(tok_idx) = tree else { continue };
            let Some(tok) = tokens.get(*tok_idx) else { continue };
            if mask.get(*tok_idx).copied().unwrap_or(false) {
                continue;
            }
            // Binary comparison: taint either operand span.
            if tok.kind == TokKind::Punct && (tok.text == "==" || tok.text == "!=") {
                let lo = (0..i)
                    .rev()
                    .find(|&k| is_operand_boundary(tokens, &list[k]))
                    .map(|k| k + 1)
                    .unwrap_or(0);
                let hi = (i + 1..list.len())
                    .find(|&k| is_operand_boundary(tokens, &list[k]))
                    .unwrap_or(list.len());
                let bits = taint::eval_span(tokens, &list[lo..i], ft)
                    | taint::eval_span(tokens, &list[i + 1..hi], ft);
                if bits & KEY != 0 {
                    let name = key_ident_in(tokens, &list[lo..hi], ft)
                        .unwrap_or_else(|| "key material".to_string());
                    out.push(finding(
                        "SEC02",
                        rel_path,
                        tok,
                        format!(
                            "`{}` compares secret material (`{name}`); use \
                             minshare_hash::ct::ct_eq for constant-time comparison",
                            tok.text
                        ),
                    ));
                }
            }
            // assert_eq!/assert_ne! outside tests.
            if tok.kind == TokKind::Ident
                && matches!(
                    tok.text.as_str(),
                    "assert_eq" | "assert_ne" | "debug_assert_eq" | "debug_assert_ne"
                )
                && list.get(i + 1).is_some_and(|t| ast::is_punct(tokens, t, "!"))
            {
                if let Some(Tree::Group(g)) = list.get(i + 2) {
                    if taint::eval_span(tokens, &g.children, ft) & KEY != 0 {
                        let name = key_ident_in(tokens, &g.children, ft)
                            .unwrap_or_else(|| "key material".to_string());
                        out.push(finding(
                            "SEC02",
                            rel_path,
                            tok,
                            format!(
                                "`{}!` on secret material (`{name}`) outside tests; use \
                                 minshare_hash::ct::ct_eq",
                                tok.text
                            ),
                        ));
                    }
                }
            }
        }
    });
}

/// First identifier in a span that carries KEY taint, for messages.
fn key_ident_in(tokens: &[Token], trees: &[Tree], ft: &FnTaint) -> Option<String> {
    for t in trees {
        match t {
            Tree::Leaf(i) => {
                let tok = tokens.get(*i)?;
                if tok.kind == TokKind::Ident
                    && (registry::is_secret_ident(&tok.text)
                        || ft.of(&tok.text) & KEY != 0)
                {
                    return Some(tok.text.clone());
                }
            }
            Tree::Group(g) => {
                if let Some(n) = key_ident_in(tokens, &g.children, ft) {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// PANIC01: panic paths in crates that parse peer-supplied data.
fn panic01_panics(rel_path: &str, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let after_dot = i > 0 && tokens[i - 1].text == ".";
                let called = tokens.get(i + 1).map(|n| n.text.as_str()) == Some("(");
                if after_dot && called {
                    out.push(finding(
                        "PANIC01",
                        rel_path,
                        t,
                        format!(
                            "`.{}()` in peer-facing crate; return a typed error instead",
                            t.text
                        ),
                    ));
                }
            }
            TokKind::Ident
                if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") =>
            {
                if tokens.get(i + 1).map(|n| n.text.as_str()) == Some("!") {
                    out.push(finding(
                        "PANIC01",
                        rel_path,
                        t,
                        format!(
                            "`{}!` in peer-facing crate; return a typed error instead",
                            t.text
                        ),
                    ));
                }
            }
            TokKind::Punct if t.text == "[" && i > 0 => {
                // Direct indexing `expr[...]`: `[` directly after an
                // identifier, `)` or `]`. Attributes (`#[...]`) and
                // macro brackets (`vec![...]`) do not match this shape.
                let prev = &tokens[i - 1];
                let indexes = (prev.kind == TokKind::Ident
                    && !is_keyword(&prev.text))
                    || prev.text == ")"
                    || prev.text == "]";
                if indexes {
                    out.push(finding(
                        "PANIC01",
                        rel_path,
                        t,
                        "direct slice indexing can panic on peer-controlled lengths; \
                         use .get()/.get_mut() or a checked split"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

fn is_keyword(ident: &str) -> bool {
    matches!(
        ident,
        "as" | "break" | "const" | "continue" | "crate" | "dyn" | "else" | "enum" | "extern"
            | "fn" | "for" | "if" | "impl" | "in" | "let" | "loop" | "match" | "mod" | "move"
            | "mut" | "pub" | "ref" | "return" | "static" | "struct" | "trait" | "type"
            | "union" | "unsafe" | "use" | "where" | "while"
    )
}

/// Macros whose first string argument is a format string.
const FMT_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "format", "write", "writeln", "info", "warn",
    "error", "debug", "trace",
];

/// FMT01: KEY-tainted material formatted into strings/logs.
fn fmt01_fn(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    f: &FnDef,
    ft: &FnTaint,
    out: &mut Vec<Finding>,
) {
    ast::walk_sibling_lists(std::slice::from_ref(&Tree::Group(f.body.clone())), &mut |list| {
        for (i, tree) in list.iter().enumerate() {
            let Tree::Leaf(tok_idx) = tree else { continue };
            let Some(tok) = tokens.get(*tok_idx) else { continue };
            if mask.get(*tok_idx).copied().unwrap_or(false)
                || tok.kind != TokKind::Ident
                || !FMT_MACROS.contains(&tok.text.as_str())
                || !list.get(i + 1).is_some_and(|t| ast::is_punct(tokens, t, "!"))
            {
                continue;
            }
            let Some(Tree::Group(g)) = list.get(i + 2) else {
                continue;
            };
            if let Some(name) = tainted_fmt_arg(tokens, &g.children, ft) {
                out.push(finding(
                    "FMT01",
                    rel_path,
                    tok,
                    format!(
                        "`{}!` formats secret material (`{name}`); secrets must never \
                         reach strings or logs",
                        tok.text
                    ),
                ));
            }
        }
    });
}

/// Name of the first KEY-tainted macro argument or inline string
/// capture, if any.
fn tainted_fmt_arg(tokens: &[Token], args: &[Tree], ft: &FnTaint) -> Option<String> {
    // Inline captures: `"{mac_key:?}"` names the secret directly;
    // `"{total}"` names a (possibly tainted) local.
    for t in args {
        if let Tree::Leaf(i) = t {
            if let Some(tok) = tokens.get(*i) {
                if tok.kind == TokKind::Str {
                    for p in parse_placeholders(&tok.text) {
                        if registry::is_secret_ident(&p)
                            || registry::is_secret_type(&p)
                            || ft.of(&p) & KEY != 0
                        {
                            return Some(p);
                        }
                    }
                }
            }
        }
    }
    // Positional arguments: each comma segment is an expression feeding
    // a placeholder.
    for seg in dataflow::split_top_level(tokens, args, ",") {
        if taint::eval_span(tokens, seg, ft) & KEY != 0 {
            return Some(
                key_ident_in(tokens, seg, ft).unwrap_or_else(|| "key material".to_string()),
            );
        }
    }
    None
}

/// Leading path segments that mark a telemetry call site: the
/// `minshare_trace` crate and its conventional `trace` alias (covers
/// `use minshare_trace as trace;` and re-export modules named `trace`).
const OBS01_TRACE_HEADS: &[&str] = &["trace", "minshare_trace"];

/// OBS01: KEY-tainted material inside telemetry call sites.
///
/// The trace layer is secret-safe by construction — fields are typed
/// counts, sizes, durations and flags — so key material appearing
/// *anywhere* inside a `trace::…(...)`/`minshare_trace::…(...)` call
/// (including the lazy field closure, nested `format!` arguments, and
/// inline `{secret:?}` captures) is a leak into observability output.
/// One finding per outermost call site; test code is exempt.
fn obs01_fn(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    f: &FnDef,
    ft: &FnTaint,
    out: &mut Vec<Finding>,
) {
    obs01_list(rel_path, tokens, mask, &f.body.children, ft, None, out);
}

fn obs01_list(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    list: &[Tree],
    ft: &FnTaint,
    prev_outer: Option<&Tree>,
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < list.len() {
        let tree = &list[i];
        let head = ast::ident_text(tokens, tree).filter(|n| {
            OBS01_TRACE_HEADS.contains(n)
                && list.get(i + 1).is_some_and(|t| ast::is_punct(tokens, t, "::"))
                // `run.trace` / `self.trace` is a field access, not the path.
                && !match i {
                    0 => prev_outer.is_some_and(|p| ast::is_punct(tokens, p, ".")),
                    _ => ast::is_punct(tokens, &list[i - 1], "."),
                }
        });
        if head.is_none() {
            if let Tree::Group(g) = tree {
                let prev = if i > 0 { Some(&list[i - 1]) } else { prev_outer };
                obs01_list(rel_path, tokens, mask, &g.children, ft, prev, out);
            }
            i += 1;
            continue;
        }
        // Walk the rest of the path (`trace::sink::…`) to its final
        // segment, then require a call.
        let mut j = i;
        while list.get(j + 1).is_some_and(|t| ast::is_punct(tokens, t, "::"))
            && list.get(j + 2).is_some_and(|t| ast::ident_text(tokens, t).is_some())
        {
            j += 2;
        }
        let Some(Tree::Group(args)) = list.get(j + 1) else {
            i = j + 1;
            continue;
        };
        if args.delim != Delim::Paren {
            i = j + 1;
            continue;
        }
        let tok_idx = tree.first_token();
        if !mask.get(tok_idx).copied().unwrap_or(false) {
            // Telemetry is stricter than FMT01: exported, retained and
            // searchable output must not even *mention* a registered
            // secret name — projections included. Locals that merely
            // carry propagated taint get the normal taint evaluation
            // (so `job.total_items()` stays clean).
            let via_registry = registry_name_in(tokens, &args.children);
            let direct = taint::eval_span(tokens, &args.children, ft) & KEY != 0;
            let via_placeholder = str_leaves(tokens, &args.children).into_iter().find_map(|s| {
                parse_placeholders(&s).into_iter().find(|p| {
                    registry::is_secret_ident(p)
                        || registry::is_secret_type(p)
                        || ft.of(p) & KEY != 0
                })
            });
            if direct || via_registry.is_some() || via_placeholder.is_some() {
                let name = via_placeholder
                    .or(via_registry)
                    .or_else(|| key_ident_in(tokens, &args.children, ft))
                    .unwrap_or_else(|| "key material".to_string());
                out.push(finding(
                    "OBS01",
                    rel_path,
                    &tokens[tok_idx],
                    format!(
                        "telemetry call site captures secret material (`{name}`); trace \
                         fields are counts, sizes, durations and flags — never secret values"
                    ),
                ));
            }
        }
        // Nested trace calls inside `args` were judged with the outer
        // call; one finding per outermost site.
        i = j + 2;
    }
}

/// First identifier in a span that *names* a registered secret (ident
/// or type), regardless of taint evaluation — OBS01's strict check.
fn registry_name_in(tokens: &[Token], trees: &[Tree]) -> Option<String> {
    for t in trees {
        match t {
            Tree::Leaf(i) => {
                let tok = tokens.get(*i)?;
                if tok.kind == TokKind::Ident
                    && (registry::is_secret_ident(&tok.text) || registry::is_secret_type(&tok.text))
                {
                    return Some(tok.text.clone());
                }
            }
            Tree::Group(g) => {
                if let Some(n) = registry_name_in(tokens, &g.children) {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// String-literal contents anywhere in a span.
fn str_leaves(tokens: &[Token], trees: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    for t in trees {
        match t {
            Tree::Leaf(i) => {
                if let Some(tok) = tokens.get(*i) {
                    if tok.kind == TokKind::Str {
                        out.push(tok.text.clone());
                    }
                }
            }
            Tree::Group(g) => out.extend(str_leaves(tokens, &g.children)),
        }
    }
    out
}

/// Extracts placeholder names from a format string: `{name}` / `{name:?}`
/// yield `name`; positional `{}` / `{:?}` / `{0}` yield `""`. `{{` is an
/// escape, not a placeholder.
fn parse_placeholders(fmt: &str) -> Vec<String> {
    let bytes = fmt.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'}' {
                j += 1;
            }
            let inner = &fmt[i + 1..j.min(fmt.len())];
            let name: String = inner
                .split(':')
                .next()
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let name = if name.chars().all(|c| c.is_ascii_digit()) {
                String::new()
            } else {
                name
            };
            out.push(name);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_parsing() {
        assert_eq!(parse_placeholders("no holes"), Vec::<String>::new());
        assert_eq!(parse_placeholders("{} and {:?}"), vec!["", ""]);
        assert_eq!(parse_placeholders("{key:?} {0}"), vec!["key", ""]);
        assert_eq!(parse_placeholders("{{escaped}} {x}"), vec!["x"]);
    }

    #[test]
    fn matching_close_handles_nesting() {
        // Tokens: f ( a , ( b , c ) , d ) g — outer `(` at 1 closes at 11.
        let toks = crate::lexer::lex("f(a, (b, c), d) g");
        assert_eq!(matching_close(&toks, 1), 11);
    }

    #[test]
    fn explain_covers_every_rule() {
        for rule in ALL_RULES {
            assert!(explain(rule).is_some(), "missing explanation for {rule}");
        }
        assert!(explain("NOPE99").is_none());
    }
}
