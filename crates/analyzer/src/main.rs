//! CLI for the minshare workspace analyzer.
//!
//! ```text
//! minshare-analyzer [--root DIR] [--baseline FILE] [--write-baseline FILE]
//!                   [--list] [--json] [--explain RULE]
//! ```
//!
//! `--json` emits machine-readable findings (one object per finding:
//! file, line, col, rule, note) plus a summary object. `--explain RULE`
//! prints the rule's rationale and exits.
//!
//! Exit codes: 0 = clean (or fully baselined), 1 = un-baselined findings,
//! 2 = usage or I/O error (including an unknown `--explain` rule).

use std::path::PathBuf;
use std::process::ExitCode;

use minshare_analyzer::baseline::{gate, Baseline};
use minshare_analyzer::scan::scan;
use minshare_analyzer::{rules, Finding};

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list: bool,
    json: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        write_baseline: None,
        list: false,
        json: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                args.write_baseline =
                    Some(PathBuf::from(it.next().ok_or("--write-baseline needs a file")?));
            }
            "--list" => args.list = true,
            "--json" => args.json = true,
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule name")?);
            }
            "--help" | "-h" => {
                return Err("usage: minshare-analyzer [--root DIR] [--baseline FILE] \
                            [--write-baseline FILE] [--list] [--json] [--explain RULE]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"note\":\"{}\"}}",
        json_escape(&f.file),
        f.line,
        f.col,
        f.rule,
        json_escape(&f.message)
    )
}

/// Renders findings + a verdict as a single JSON document on stdout.
fn print_json(findings: &[Finding], new_findings: Option<&[Finding]>) {
    println!("{{");
    println!("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        println!("    {}{comma}", finding_json(f));
    }
    println!("  ],");
    match new_findings {
        Some(new) => {
            println!("  \"new_findings\": [");
            for (i, f) in new.iter().enumerate() {
                let comma = if i + 1 < new.len() { "," } else { "" };
                println!("    {}{comma}", finding_json(f));
            }
            println!("  ],");
            println!("  \"total\": {},", findings.len());
            println!("  \"ok\": {}", new.is_empty());
        }
        None => {
            println!("  \"total\": {},", findings.len());
            println!("  \"ok\": null");
        }
    }
    println!("}}");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &args.explain {
        let rule = rule.to_ascii_uppercase();
        return match rules::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "analyzer: unknown rule `{rule}`; known rules: {}",
                    rules::ALL_RULES.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let findings = match scan(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("analyzer: scan failed under {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!("analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "analyzer: wrote baseline covering {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.list {
        if args.json {
            print_json(&findings, None);
        } else {
            for f in &findings {
                println!("{f}");
            }
            println!("analyzer: {} finding(s) total", findings.len());
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("analyzer: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("analyzer: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => Baseline::default(),
    };

    let result = gate(&findings, &baseline);
    for (rule, file, slack) in &result.stale {
        eprintln!(
            "analyzer: note: baseline for {rule} in {file} tolerates {slack} more \
             finding(s) than exist — ratchet it down"
        );
    }
    if args.json {
        print_json(&findings, Some(&result.new_findings));
        return if result.new_findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if result.new_findings.is_empty() {
        println!(
            "analyzer: OK — {} finding(s), all within baseline",
            findings.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &result.new_findings {
            eprintln!("{f}");
        }
        eprintln!(
            "analyzer: FAIL — {} new finding(s) not covered by the baseline",
            result.new_findings.len()
        );
        ExitCode::from(1)
    }
}
