//! CLI for the minshare workspace analyzer.
//!
//! ```text
//! minshare-analyzer [--root DIR] [--baseline FILE] [--write-baseline FILE] [--list]
//! ```
//!
//! Exit codes: 0 = clean (or fully baselined), 1 = un-baselined findings,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use minshare_analyzer::baseline::{gate, Baseline};
use minshare_analyzer::scan::scan;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        write_baseline: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                args.write_baseline =
                    Some(PathBuf::from(it.next().ok_or("--write-baseline needs a file")?));
            }
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err("usage: minshare-analyzer [--root DIR] [--baseline FILE] \
                            [--write-baseline FILE] [--list]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let findings = match scan(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("analyzer: scan failed under {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!("analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "analyzer: wrote baseline covering {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.list {
        for f in &findings {
            println!("{f}");
        }
        println!("analyzer: {} finding(s) total", findings.len());
        return ExitCode::SUCCESS;
    }

    let baseline = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("analyzer: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("analyzer: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => Baseline::default(),
    };

    let result = gate(&findings, &baseline);
    for (rule, file, slack) in &result.stale {
        eprintln!(
            "analyzer: note: baseline for {rule} in {file} tolerates {slack} more \
             finding(s) than exist — ratchet it down"
        );
    }
    if result.new_findings.is_empty() {
        println!(
            "analyzer: OK — {} finding(s), all within baseline",
            findings.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &result.new_findings {
            eprintln!("{f}");
        }
        eprintln!(
            "analyzer: FAIL — {} new finding(s) not covered by the baseline",
            result.new_findings.len()
        );
        ExitCode::from(1)
    }
}
