//! Token-tree parser: pairs `()`/`[]`/`{}` delimiters over the raw
//! token stream so the dataflow pass can reason about statement and
//! expression structure without a full Rust grammar.
//!
//! Trees hold *indices* into the caller's token slice rather than
//! cloned tokens, which keeps the `#[cfg(test)]` mask (indexed by token
//! position) trivially applicable to any tree node. Angle brackets are
//! deliberately left as leaves: `<`/`>` are ambiguous between generics
//! and comparisons, and nothing downstream needs them matched.

use crate::lexer::{TokKind, Token};

/// Delimiter kind of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

impl Delim {
    fn open(c: &str) -> Option<Delim> {
        match c {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    fn matches_close(self, c: &str) -> bool {
        matches!(
            (self, c),
            (Delim::Paren, ")") | (Delim::Bracket, "]") | (Delim::Brace, "}")
        )
    }
}

/// A delimited group and everything inside it.
#[derive(Debug, Clone)]
pub struct Group {
    /// Which delimiter pair encloses the children.
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter; `None` if the file ended
    /// (or a mismatched close appeared) before the group was closed.
    pub close: Option<usize>,
    /// Nested trees between the delimiters.
    pub children: Vec<Tree>,
}

/// One node of the token tree: either a single non-delimiter token or
/// a matched group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// Index of a non-delimiter token in the source token slice.
    Leaf(usize),
    /// A matched delimiter group.
    Group(Group),
}

impl Tree {
    /// Token index where this tree starts (for findings positions).
    pub fn first_token(&self) -> usize {
        match self {
            Tree::Leaf(i) => *i,
            Tree::Group(g) => g.open,
        }
    }

    /// The group inside this tree, if it is one.
    pub fn as_group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Leaf(_) => None,
        }
    }
}

/// Parses the token stream into a forest of token trees.
///
/// Unbalanced input never panics: a stray closing delimiter becomes a
/// leaf, and groups still open at end-of-file are closed with
/// `close: None`. The analyzer lints sources that may not even compile
/// (fixtures), so robustness beats strictness here.
pub fn parse(tokens: &[Token]) -> Vec<Tree> {
    // Each stack frame is a partially built group; `root` collects
    // completed top-level trees.
    let mut root: Vec<Tree> = Vec::new();
    let mut stack: Vec<Group> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let text = tok.text.as_str();
        if tok.kind == TokKind::Punct {
            if let Some(delim) = Delim::open(text) {
                stack.push(Group {
                    delim,
                    open: i,
                    close: None,
                    children: Vec::new(),
                });
                continue;
            }
            if matches!(text, ")" | "]" | "}") {
                match stack.pop() {
                    Some(mut g) if g.delim.matches_close(text) => {
                        g.close = Some(i);
                        push_tree(&mut root, &mut stack, Tree::Group(g));
                    }
                    Some(g) => {
                        // Mismatched close: keep it as a leaf so later
                        // delimiters still have a chance to pair up.
                        stack.push(g);
                        push_tree(&mut root, &mut stack, Tree::Leaf(i));
                    }
                    None => push_tree(&mut root, &mut stack, Tree::Leaf(i)),
                }
                continue;
            }
        }
        push_tree(&mut root, &mut stack, Tree::Leaf(i));
    }
    // Unclosed groups: unwind the stack, preserving nesting.
    while let Some(g) = stack.pop() {
        push_tree(&mut root, &mut stack, Tree::Group(g));
    }
    root
}

fn push_tree(root: &mut Vec<Tree>, stack: &mut [Group], tree: Tree) {
    match stack.last_mut() {
        Some(open) => open.children.push(tree),
        None => root.push(tree),
    }
}

/// Text of the token behind a leaf, or `None` for groups.
pub fn leaf_text<'a>(tokens: &'a [Token], tree: &Tree) -> Option<&'a str> {
    match tree {
        Tree::Leaf(i) => tokens.get(*i).map(|t| t.text.as_str()),
        Tree::Group(_) => None,
    }
}

/// True if the leaf at `trees[idx]` is an identifier with this text.
pub fn is_ident(tokens: &[Token], tree: &Tree, text: &str) -> bool {
    match tree {
        Tree::Leaf(i) => tokens
            .get(*i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text),
        Tree::Group(_) => false,
    }
}

/// Identifier text of a leaf, or `None` if the tree is a group or a
/// non-identifier token.
pub fn ident_text<'a>(tokens: &'a [Token], tree: &Tree) -> Option<&'a str> {
    match tree {
        Tree::Leaf(i) => tokens
            .get(*i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str()),
        Tree::Group(_) => None,
    }
}

/// True if the leaf is punctuation with exactly this text.
pub fn is_punct(tokens: &[Token], tree: &Tree, text: &str) -> bool {
    match tree {
        Tree::Leaf(i) => tokens
            .get(*i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text),
        Tree::Group(_) => false,
    }
}

/// Calls `f` on every sibling list in the forest, depth-first: the
/// top-level list first, then each group's children, recursively.
pub fn walk_sibling_lists<'t>(trees: &'t [Tree], f: &mut dyn FnMut(&'t [Tree])) {
    f(trees);
    for t in trees {
        if let Tree::Group(g) = t {
            walk_sibling_lists(&g.children, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn texts(tokens: &[Token], trees: &[Tree]) -> Vec<String> {
        trees
            .iter()
            .map(|t| match t {
                Tree::Leaf(i) => tokens[*i].text.clone(),
                Tree::Group(g) => format!("g{:?}", g.delim),
            })
            .collect()
    }

    #[test]
    fn nests_matched_delimiters() {
        let src = "fn f(a: u8) { g(a)[0]; }";
        let tokens = lex(src);
        let trees = parse(&tokens);
        assert_eq!(
            texts(&tokens, &trees),
            vec!["fn", "f", "gParen", "gBrace"]
        );
        let body = trees[3].as_group().unwrap();
        assert_eq!(body.delim, Delim::Brace);
        assert_eq!(
            texts(&tokens, &body.children),
            vec!["g", "gParen", "gBracket", ";"]
        );
    }

    #[test]
    fn survives_unbalanced_input() {
        let tokens = lex(") } ( [ x");
        let trees = parse(&tokens);
        // Stray closers become leaves; unclosed groups close at EOF.
        assert_eq!(trees.len(), 3);
        let paren = trees[2].as_group().unwrap();
        assert_eq!(paren.close, None);
        let bracket = paren.children[0].as_group().unwrap();
        assert_eq!(bracket.close, None);
        assert!(is_ident(&tokens, &bracket.children[0], "x"));
    }

    #[test]
    fn angle_brackets_stay_leaves() {
        let tokens = lex("Vec<Option<u8>>");
        let trees = parse(&tokens);
        assert!(trees.iter().all(|t| t.as_group().is_none()));
    }
}
