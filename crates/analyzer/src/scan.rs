//! Workspace walker: finds every `crates/*/src/**/*.rs` under a root and
//! runs the rules over each file.

use std::path::{Path, PathBuf};

use crate::rules::check_file;
use crate::Finding;

/// Collects all lintable source files (`crates/*/src/**/*.rs`), sorted
/// for deterministic output.
pub fn lintable_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace under `root`. Paths in findings are
/// root-relative with forward slashes.
pub fn scan(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in lintable_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        findings.extend(check_file(&rel, &src));
    }
    Ok(findings)
}
