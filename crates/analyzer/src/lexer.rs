//! A minimal Rust lexer: enough token structure for lint rules, with
//! exact line/column tracking and correct skipping of comments (line,
//! nested block, doc) and string/char literals (plain, raw, byte).
//!
//! Deliberately not a parser — rules pattern-match on the token stream.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Operator / delimiter. Multi-char operators that matter to the
    /// rules (`==`, `!=`, `=>`, `<=`, `>=`, `->`, `::`, `..`) are fused
    /// into single tokens so `==` is unambiguous.
    Punct,
    /// String literal (`"…"`, `r#"…"#`, `b"…"`); `text` holds the
    /// *contents* without quotes.
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token with its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Token text (contents only, for strings).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens, discarding comments and whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => out.push(lex_string(&mut cur, line, col)),
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                out.push(lex_prefixed_string(&mut cur, line, col));
            }
            b'\'' => {
                if let Some(tok) = lex_char_or_lifetime(&mut cur, line, col) {
                    out.push(tok);
                }
            }
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c as char);
                    cur.bump();
                }
                out.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if !(c.is_ascii_alphanumeric() || c == b'_') {
                        break;
                    }
                    text.push(c as char);
                    cur.bump();
                }
                out.push(Token {
                    kind: TokKind::Num,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                let two = cur.peek().map(|n| [b, n]);
                let fused = matches!(
                    two,
                    Some(
                        [b'=', b'='] | [b'!', b'='] | [b'=', b'>'] | [b'<', b'='] | [b'>', b'=']
                            | [b'-', b'>'] | [b':', b':'] | [b'.', b'.'] | [b'&', b'&']
                            | [b'|', b'|']
                    )
                );
                let mut text = (b as char).to_string();
                if fused {
                    if let Some([_, n]) = two {
                        text.push(n as char);
                        cur.bump();
                    }
                }
                out.push(Token {
                    kind: TokKind::Punct,
                    text,
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    // r"  r#"  b"  br"  br#"  rb is not a thing.
    let at = |i| cur.peek_at(i);
    match cur.peek() {
        Some(b'r') => {
            let mut i = 1;
            while at(i) == Some(b'#') {
                i += 1;
            }
            at(i) == Some(b'"')
        }
        Some(b'b') => match at(1) {
            Some(b'"') => true,
            Some(b'r') => {
                let mut i = 2;
                while at(i) == Some(b'#') {
                    i += 1;
                }
                at(i) == Some(b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

fn lex_string(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                if let Some(esc) = cur.bump() {
                    text.push('\\');
                    text.push(esc as char);
                }
            }
            b'"' => {
                cur.bump();
                break;
            }
            _ => {
                text.push(c as char);
                cur.bump();
            }
        }
    }
    Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

fn lex_prefixed_string(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    // Consume the b/r prefix characters.
    let mut raw = false;
    while let Some(c) = cur.peek() {
        match c {
            b'b' => {
                cur.bump();
            }
            b'r' => {
                raw = true;
                cur.bump();
            }
            _ => break,
        }
    }
    if !raw {
        return lex_string(cur, line, col);
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let mut text = String::new();
    'outer: while let Some(c) = cur.peek() {
        if c == b'"' {
            // Check for closing `"` + hashes.
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek_at(1 + i) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                break 'outer;
            }
        }
        text.push(c as char);
        cur.bump();
    }
    Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

fn lex_char_or_lifetime(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Token> {
    // `'a` (no closing quote) is a lifetime; `'a'`, `'\n'` are chars.
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal. The byte after the backslash is the
            // escaped character itself and must be consumed
            // unconditionally: in `'\''` it *is* a quote, and treating
            // it as the terminator would leave the real closing quote
            // to start a bogus literal that swallows the next token
            // (unbalancing every delimiter after it).
            cur.bump();
            let mut text = String::from("\\");
            if let Some(e) = cur.peek() {
                text.push(e as char);
                cur.bump();
            }
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == b'\'' {
                    break;
                }
                text.push(c as char);
            }
            Some(Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            })
        }
        Some(c) if is_ident_start(c) => {
            let mut text = String::new();
            while let Some(n) = cur.peek() {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(n as char);
                cur.bump();
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
                Some(Token {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                })
            } else {
                Some(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                })
            }
        }
        Some(c) => {
            // Single-char literal like '3' or ' '.
            cur.bump();
            let text = (c as char).to_string();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            Some(Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            })
        }
        None => None,
    }
}

/// Returns a boolean mask, parallel to `tokens`, marking tokens that live
/// inside test-only code: a `#[test]`-attributed function, a
/// `#[cfg(test)]` module/item, or any item whose attribute mentions
/// `test` without a `not(...)` (conservative: `#[cfg(any(test, ...))]`
/// is treated as test code).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Collect the attribute token range.
            let attr_start = i + 2;
            let mut depth = 1usize;
            let mut j = attr_start;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr_end = j; // one past the closing `]`
            let attr = &tokens[attr_start..attr_end.saturating_sub(1)];
            let mentions_test = attr
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test");
            let negated = attr
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "not");
            if mentions_test && !negated {
                // Skip any further attributes, then the item header, then
                // mark the braced body (or up to `;` for extern items).
                let mut k = attr_end;
                loop {
                    if k + 1 < tokens.len()
                        && tokens[k].text == "#"
                        && tokens[k + 1].text == "["
                    {
                        let mut d = 1usize;
                        k += 2;
                        while k < tokens.len() && d > 0 {
                            match tokens[k].text.as_str() {
                                "[" => d += 1,
                                "]" => d -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                    } else {
                        break;
                    }
                }
                // Find the body opening brace (stop at `;`: no body).
                let mut open = None;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "{" => {
                            open = Some(k);
                            break;
                        }
                        ";" => break,
                        _ => k += 1,
                    }
                }
                if let Some(open) = open {
                    let mut d = 0usize;
                    let mut end = open;
                    while end < tokens.len() {
                        match tokens[end].text.as_str() {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    for m in mask.iter_mut().take((end + 1).min(tokens.len())).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let toks = lex("let x = \"a.unwrap()\"; // b.unwrap()\n/* c.unwrap() */ y");
        assert!(toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .all(|t| t.text != "unwrap"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn equality_operators_are_fused() {
        assert_eq!(texts("a == b != c => d"), ["a", "==", "b", "!=", "c", "=>", "d"]);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = lex(r####"let a = r#"x "inner" y"#; let b = b"bytes";"####);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, "x \"inner\" y");
        assert_eq!(strs[1].text, "bytes");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(texts("a /* x /* y */ z */ b"), ["a", "b"]);
    }

    #[test]
    fn test_mask_covers_cfg_test_mod_and_test_fn() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n\
                   #[test]\nfn unit() { z.unwrap(); }\n\
                   fn live2() {}";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let masked: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, &m)| m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"y"));
        assert!(masked.contains(&"z"));
        let live: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, &m)| !m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(live.contains(&"x"));
        assert!(live.contains(&"live2"));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        assert!(mask.iter().all(|&m| !m));
    }
}
