//! # minshare-analyzer
//!
//! A repo-local static analyzer for the `minshare` workspace. It walks
//! every `crates/*/src/**/*.rs` file with a hand-rolled, comment- and
//! string-aware lexer (no external parser crates), builds a token tree
//! ([`ast`]), extracts per-function binding facts ([`dataflow`]), runs an
//! intraprocedural taint pass ([`taint`]) configured by the secret
//! registry, and enforces seven rule families:
//!
//! * **SEC01** — secret-registry types must not `#[derive(Debug)]` or
//!   `#[derive(PartialEq)]`; they need a redacted `Debug` and a
//!   constant-time equality instead.
//! * **SEC02** — KEY-tainted material must not be compared with `==`,
//!   `!=` or `assert_eq!`; comparisons must go through
//!   `minshare_hash::ct`.
//! * **PANIC01** — no `unwrap()` / `expect()` / `panic!` / direct slice
//!   indexing in non-test code of `crates/crypto`, `crates/core` and
//!   `crates/net` (code paths reachable from peer-supplied data).
//! * **FMT01** — no KEY-tainted expressions or inline `{secret}`
//!   captures in `println!` / `format!` / log-style macros.
//! * **OBS01** — no KEY-tainted material anywhere inside `trace::…(...)`
//!   / `minshare_trace::…(...)` telemetry call sites; trace fields are
//!   typed counts, sizes, durations and flags, never values.
//! * **WIRE01** — nothing but hash-then-encrypt output may reach a wire
//!   sink (`Transport::send`/`send_batch`, `encode_*`, `FrameBatch`
//!   writers) in `crates/core`, `crates/crypto` and `crates/net`: the
//!   paper's minimal-sharing invariant, proven mechanically with an
//!   expected count of zero.
//! * **LOCK01** — no blocking `recv`/`join`/`wait` while a lock guard is
//!   held in `crates/crypto` and `crates/net`; expected count zero.
//!
//! Run `minshare-analyzer --explain RULE` for the full rationale of any
//! rule, or see SECURITY.md for the taint model's guarantees and limits.
//!
//! Pre-existing findings are ratcheted via a checked-in baseline
//! (`analyzer.baseline.toml`): per `(rule, file)` counts that may only
//! shrink. Any finding beyond its baselined count fails the build.

pub mod ast;
pub mod baseline;
pub mod dataflow;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod scan;
pub mod taint;

/// One lint finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `"SEC01"`.
    pub rule: &'static str,
    /// Path of the offending file, relative to the scan root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}
