//! Intraprocedural taint pass over the token tree.
//!
//! ## Taint lattice
//!
//! Three independent bits, joined with `|`:
//!
//! * [`RAW`] — a raw set value, pre-`prepare`. Forbidden on the wire.
//! * [`HASHED`] — passed `h()` but not yet encrypted. Still forbidden
//!   on the wire: a bare `h(v)` permits offline dictionary probing, and
//!   the paper's invariant is hash **then** encrypt.
//! * [`KEY`] — key material (exponents, derived session keys). Never
//!   leaves the process.
//!
//! ## Evaluation rules
//!
//! A span's taint is the join over its identifier leaves (registered
//! secret/raw idents, key-source calls, and variables tainted by the
//! binding fixpoint), with three structural exceptions:
//!
//! 1. **Encrypt-class absorption.** If a span contains a call to an
//!    encrypt-class sanitizer anywhere, the span evaluates clean: the
//!    value was built by/around an encryption (`ys.iter().map(|y|
//!    group.encrypt(&key, y))`). This is the pass's one deliberate
//!    coarse approximation — see SECURITY.md for what it gives up.
//! 2. **Hash-class calls** absorb their receiver chain and arguments
//!    and contribute `RAW → HASHED`, `KEY → clean` (a digest/MAC tag
//!    does not reveal the key).
//! 3. **Projections** (`.len()`, `.total_items()`, ...) absorb their
//!    receiver chain and contribute nothing: a size is not the value.
//!
//! Binding facts come from [`crate::dataflow`] and are iterated to a
//! fixpoint, so the result is flow-insensitive: tainted anywhere in a
//! function means tainted everywhere in it. Shadowing a secret with a
//! sanitized value of the same name therefore stays tainted —
//! conservative, and rare enough in practice to live with.

use std::collections::HashMap;

use crate::ast::{self, Delim, Tree};
use crate::dataflow::{self, FnDef};
use crate::lexer::{TokKind, Token};
use crate::registry;
use crate::Finding;

/// Raw set value, pre-hash.
pub const RAW: u8 = 1;
/// Hashed but not yet encrypted.
pub const HASHED: u8 = 2;
/// Key material.
pub const KEY: u8 = 4;

/// Per-function taint result: variable name → taint bits.
#[derive(Debug, Default)]
pub struct FnTaint {
    /// Joined taint of each binding seen in the function.
    pub map: HashMap<String, u8>,
}

impl FnTaint {
    /// Taint bits recorded for a variable name.
    pub fn of(&self, name: &str) -> u8 {
        self.map.get(name).copied().unwrap_or(0)
    }
}

fn is_sanitizer(name: &str) -> bool {
    registry::is_hash_sanitizer(name) || registry::is_enc_sanitizer(name)
}

/// Runs the binding fixpoint for one function.
pub fn analyze_fn(tokens: &[Token], f: &FnDef) -> FnTaint {
    let mut taint = FnTaint::default();
    for p in &f.params {
        let mut t = 0;
        if registry::is_secret_ident(&p.name) {
            t |= KEY;
        }
        if registry::is_raw_value_ident(&p.name) {
            t |= RAW;
        }
        if p.ty.iter().any(|ty| registry::is_secret_type(ty)) {
            t |= KEY;
        }
        if t != 0 {
            taint.map.insert(p.name.clone(), t);
        }
    }
    let mut binds = Vec::new();
    dataflow::collect_binds(
        tokens,
        &f.body.children,
        &|callee| !is_sanitizer(callee),
        &mut binds,
    );
    // Monotone fixpoint; the bound only guards against pathological
    // inputs (each iteration can only add bits).
    for _ in 0..32 {
        let mut changed = false;
        for b in &binds {
            let mut t = eval_span(tokens, &b.rhs, &taint);
            if b.ty.iter().any(|ty| registry::is_secret_type(ty)) {
                t |= KEY;
            }
            if t == 0 {
                continue;
            }
            for name in &b.names {
                let entry = taint.map.entry(name.clone()).or_insert(0);
                if *entry | t != *entry {
                    *entry |= t;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    taint
}

/// Taint of an expression span under the function's taint map.
pub fn eval_span(tokens: &[Token], trees: &[Tree], taint: &FnTaint) -> u8 {
    if contains_enc_call(tokens, trees) {
        return 0;
    }
    eval_no_enc(tokens, trees, taint)
}

/// True iff an encrypt-class sanitizer is *called* anywhere in the span.
fn contains_enc_call(tokens: &[Token], trees: &[Tree]) -> bool {
    for (i, t) in trees.iter().enumerate() {
        if let Some(name) = ast::ident_text(tokens, t) {
            if registry::is_enc_sanitizer(name) && is_paren(trees.get(i + 1)) {
                return true;
            }
        }
        if let Tree::Group(g) = t {
            if contains_enc_call(tokens, &g.children) {
                return true;
            }
        }
    }
    false
}

fn is_paren(tree: Option<&Tree>) -> bool {
    matches!(tree, Some(Tree::Group(g)) if g.delim == Delim::Paren)
}

fn hash_out(arg_taint: u8) -> u8 {
    if arg_taint & (RAW | HASHED) != 0 {
        HASHED
    } else {
        0
    }
}

fn eval_no_enc(tokens: &[Token], trees: &[Tree], taint: &FnTaint) -> u8 {
    let mut skip = vec![false; trees.len()];
    let mut t = 0u8;
    // First pass: absorb hash-class and projection calls (callee, args,
    // receiver chain), taking the hash contribution from the arguments.
    for i in 0..trees.len() {
        let Some(name) = ast::ident_text(tokens, &trees[i]) else {
            continue;
        };
        let hash = registry::is_hash_sanitizer(name);
        // Stats exporters render the typed metrics registry to JSON —
        // projection-class: output clean, receiver chain absorbed.
        let proj = registry::is_projection_fn(name) || registry::is_stats_exporter_fn(name);
        if !(hash || proj) || !is_paren(trees.get(i + 1)) {
            continue;
        }
        if hash {
            if let Some(Tree::Group(g)) = trees.get(i + 1) {
                t |= hash_out(eval_span(tokens, &g.children, taint));
            }
        }
        skip[i] = true;
        skip[i + 1] = true;
        absorb_receiver_chain(tokens, trees, i, &mut skip);
    }
    // Attributes are not expressions: `#[derive(Debug)]` on a nested
    // item must not read as a call to the key-derivation source
    // `derive`. Skip every `#`-prefixed bracket group.
    for i in 0..trees.len() {
        if ast::is_punct(tokens, &trees[i], "#")
            && trees
                .get(i + 1)
                .and_then(|t| t.as_group())
                .is_some_and(|g| g.delim == ast::Delim::Bracket)
        {
            skip[i] = true;
            skip[i + 1] = true;
        }
    }
    // Second pass: join the remaining leaves and groups.
    for (i, tree) in trees.iter().enumerate() {
        if skip[i] {
            continue;
        }
        match tree {
            Tree::Leaf(tok_idx) => {
                let Some(tok) = tokens.get(*tok_idx) else { continue };
                if tok.kind != TokKind::Ident {
                    continue;
                }
                let name = tok.text.as_str();
                if registry::is_secret_ident(name) {
                    t |= KEY;
                }
                if registry::is_raw_value_ident(name) {
                    t |= RAW;
                }
                if registry::is_key_source_fn(name) && is_paren(trees.get(i + 1)) {
                    t |= KEY;
                }
                t |= taint.of(name);
            }
            Tree::Group(g) => t |= eval_no_enc(tokens, &g.children, taint),
        }
    }
    t
}

/// Marks the method-call receiver chain before `trees[call_idx]` as
/// absorbed: `scheme.hash_value(...)` must not leak taint from
/// `scheme`, nor `job.total_items()` from `job`.
fn absorb_receiver_chain(tokens: &[Token], trees: &[Tree], call_idx: usize, skip: &mut [bool]) {
    let mut j = call_idx;
    while j > 0 {
        j -= 1;
        let chain = match &trees[j] {
            Tree::Leaf(i) => tokens.get(*i).is_some_and(|tok| match tok.kind {
                TokKind::Ident => true,
                TokKind::Punct => matches!(tok.text.as_str(), "." | "::" | "?"),
                _ => false,
            }),
            Tree::Group(_) => true,
        };
        if chain {
            skip[j] = true;
        } else {
            break;
        }
    }
}

/// Highest-priority taint kind for messages.
pub fn describe(taint_bits: u8) -> &'static str {
    if taint_bits & KEY != 0 {
        "key material"
    } else if taint_bits & RAW != 0 {
        "a raw (pre-hash) set value"
    } else {
        "a hashed-but-not-encrypted value"
    }
}

/// WIRE01: tainted data reaching a wire/encode sink inside one
/// function body. Caller filters by crate scope and exemptions.
pub fn wire01_fn(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    f: &FnDef,
    taint: &FnTaint,
    out: &mut Vec<Finding>,
) {
    let mut lines_seen = Vec::new();
    scan_sinks(
        rel_path,
        tokens,
        mask,
        &f.body.children,
        taint,
        &mut lines_seen,
        out,
    );
}

fn scan_sinks(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    trees: &[Tree],
    taint: &FnTaint,
    lines_seen: &mut Vec<u32>,
    out: &mut Vec<Finding>,
) {
    for i in 0..trees.len() {
        if let Tree::Group(g) = &trees[i] {
            scan_sinks(rel_path, tokens, mask, &g.children, taint, lines_seen, out);
        }
        let Some(name) = ast::ident_text(tokens, &trees[i]) else {
            continue;
        };
        if !registry::is_wire_sink_fn(name) || !is_paren(trees.get(i + 1)) {
            continue;
        }
        let tok_idx = trees[i].first_token();
        if mask.get(tok_idx).copied().unwrap_or(false) {
            continue;
        }
        let mut bits = 0u8;
        if let Some(Tree::Group(g)) = trees.get(i + 1) {
            bits |= eval_span(tokens, &g.children, taint);
        }
        bits |= receiver_taint(tokens, trees, i, taint);
        if bits == 0 {
            continue;
        }
        let tok = &tokens[tok_idx];
        if lines_seen.contains(&tok.line) {
            continue; // nested sink (`send(..encode(..))`) — one report
        }
        lines_seen.push(tok.line);
        out.push(Finding {
            rule: "WIRE01",
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "{} reaches wire sink `{name}` without hash-then-encrypt \
                 (run `minshare-analyzer --explain WIRE01`)",
                describe(bits)
            ),
        });
    }
}

/// Taint of the receiver chain before a sink call
/// (`Message::Codewords(ys).encode(..)` must see `ys`).
fn receiver_taint(tokens: &[Token], trees: &[Tree], call_idx: usize, taint: &FnTaint) -> u8 {
    let mut start = call_idx;
    while start > 0 {
        let prev = &trees[start - 1];
        let chain = match prev {
            Tree::Leaf(i) => tokens.get(*i).is_some_and(|tok| match tok.kind {
                TokKind::Ident => !dataflow_boundary(tok.text.as_str()),
                TokKind::Punct => matches!(tok.text.as_str(), "." | "::" | "?"),
                _ => false,
            }),
            Tree::Group(_) => true,
        };
        if chain {
            start -= 1;
        } else {
            break;
        }
    }
    if start == call_idx {
        return 0;
    }
    eval_span(tokens, &trees[start..call_idx], taint)
}

fn dataflow_boundary(ident: &str) -> bool {
    matches!(
        ident,
        "let" | "return" | "if" | "else" | "while" | "match" | "in" | "for" | "move"
    )
}

/// LOCK01: blocking `recv`/`join`/`wait` while a lock guard is live.
pub fn lock01_fn(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    f: &FnDef,
    out: &mut Vec<Finding>,
) {
    scan_guards(rel_path, tokens, mask, &f.body.children, out);
}

fn scan_guards(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    list: &[Tree],
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < list.len() {
        if let Tree::Group(g) = &list[i] {
            scan_guards(rel_path, tokens, mask, &g.children, out);
        }
        if !ast::is_ident(tokens, &list[i], "let") {
            i += 1;
            continue;
        }
        // `let <pat> = <rhs>;` with a guard-producing call in the rhs.
        let Some(eq) = (i + 1..list.len()).find(|&k| ast::is_punct(tokens, &list[k], "="))
        else {
            i += 1;
            continue;
        };
        let semi = (eq + 1..list.len())
            .find(|&k| ast::is_punct(tokens, &list[k], ";"))
            .unwrap_or(list.len());
        if !has_guard_call(tokens, &list[eq + 1..semi]) {
            i = semi;
            continue;
        }
        let names = dataflow::pattern_names(tokens, &list[i + 1..eq]);
        let Some(guard) = names.first() else {
            i = semi; // `let _ = m.lock();` drops the guard immediately
            continue;
        };
        let let_line = tokens
            .get(list[i].first_token())
            .map(|t| t.line)
            .unwrap_or(0);
        // The guard lives until the end of this statement list or an
        // explicit `drop(guard)`.
        let scope_end = find_drop(tokens, &list[semi..], guard)
            .map(|off| semi + off)
            .unwrap_or(list.len());
        scan_blocking(
            rel_path,
            tokens,
            mask,
            &list[semi..scope_end],
            guard,
            let_line,
            out,
        );
        i = semi.max(i + 1);
    }
}

/// True iff the span calls `lock()`/`read()`/`write()` with no
/// arguments (the no-arg shape distinguishes guard acquisition from
/// `io::Read::read(&mut buf)` and friends).
fn has_guard_call(tokens: &[Token], trees: &[Tree]) -> bool {
    for (i, t) in trees.iter().enumerate() {
        if let Some(name) = ast::ident_text(tokens, t) {
            if registry::GUARD_FNS.contains(&name) {
                if let Some(Tree::Group(g)) = trees.get(i + 1) {
                    if g.delim == Delim::Paren && g.children.is_empty() {
                        return true;
                    }
                }
            }
        }
        if let Tree::Group(g) = t {
            if has_guard_call(tokens, &g.children) {
                return true;
            }
        }
    }
    false
}

/// Offset of a top-level `drop(guard)` statement within the scope.
fn find_drop(tokens: &[Token], trees: &[Tree], guard: &str) -> Option<usize> {
    for (i, t) in trees.iter().enumerate() {
        if ast::is_ident(tokens, t, "drop") {
            if let Some(Tree::Group(g)) = trees.get(i + 1) {
                if g.delim == Delim::Paren
                    && g.children.len() == 1
                    && ast::is_ident(tokens, &g.children[0], guard)
                {
                    return Some(i);
                }
            }
        }
    }
    None
}

fn scan_blocking(
    rel_path: &str,
    tokens: &[Token],
    mask: &[bool],
    trees: &[Tree],
    guard: &str,
    let_line: u32,
    out: &mut Vec<Finding>,
) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            // Skip closure bodies: `spawn(move || { .. })` runs on
            // another thread, which does not hold this guard.
            if !is_closure_arg(tokens, &g.children) {
                scan_blocking(rel_path, tokens, mask, &g.children, guard, let_line, out);
            }
            continue;
        }
        let Some(name) = ast::ident_text(tokens, t) else {
            continue;
        };
        if !registry::BLOCKING_FNS.contains(&name) {
            continue;
        }
        let Some(Tree::Group(args)) = trees.get(i + 1) else {
            continue;
        };
        if args.delim != Delim::Paren {
            continue;
        }
        // Condvar-style `cv.wait(&mut guard)` consumes the guard and
        // releases the lock while parked — that is the correct idiom.
        if name.starts_with("wait")
            && args
                .children
                .iter()
                .any(|a| ast::is_ident(tokens, a, guard))
        {
            continue;
        }
        let tok_idx = t.first_token();
        if mask.get(tok_idx).copied().unwrap_or(false) {
            continue;
        }
        let tok = &tokens[tok_idx];
        out.push(Finding {
            rule: "LOCK01",
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "blocking `{name}()` while guard `{guard}` (taken at line \
                 {let_line}) is held; drop the guard before blocking"
            ),
        });
    }
}

/// True iff a paren-group's children start a closure literal
/// (`move |..| ..` or `|..| ..`).
fn is_closure_arg(tokens: &[Token], children: &[Tree]) -> bool {
    match children.first() {
        Some(t) if ast::is_ident(tokens, t, "move") => true,
        Some(t) if ast::is_punct(tokens, t, "|") || ast::is_punct(tokens, t, "||") => true,
        _ => false,
    }
}
