//! Function-body extraction and binding facts for the taint pass.
//!
//! This is deliberately *not* a Rust parser. It recovers just enough
//! structure from the token tree for intraprocedural reasoning:
//!
//! * every `fn name(params) { body }` at any nesting depth (modules,
//!   impl blocks, trait default methods);
//! * binding facts — `let` patterns, assignments, `for` patterns,
//!   statement-level method mutation (`buf.extend_from_slice(x)`), and
//!   `&mut` out-params of non-sanitizer calls — each recorded as
//!   "these names receive the taint of this right-hand-side span".
//!
//! The taint pass iterates the facts to a fixpoint, so facts are
//! order-free: a variable tainted anywhere in a function is treated as
//! tainted everywhere in it. That is conservative for straight-line
//! code and exactly right for loops.

use crate::ast::{self, Delim, Group, Tree};
use crate::lexer::{TokKind, Token};

/// One parameter of an extracted function.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (tuple patterns yield several params, one per name).
    pub name: String,
    /// Identifier texts appearing in the declared type.
    pub ty: Vec<String>,
}

/// A function with a body, found anywhere in the file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Token index of the name (for positions).
    pub name_tok: usize,
    /// Parameters.
    pub params: Vec<Param>,
    /// The `{ ... }` body group.
    pub body: Group,
}

/// A binding fact: `names` receive the taint of `rhs`.
#[derive(Debug, Clone)]
pub struct Bind {
    /// Names bound (pattern idents, assignment target, out-param).
    pub names: Vec<String>,
    /// Identifier texts of the declared type, when annotated.
    pub ty: Vec<String>,
    /// Right-hand-side trees whose taint flows into `names`.
    pub rhs: Vec<Tree>,
}

/// Extracts every function with a body from the token-tree forest.
pub fn functions(tokens: &[Token], trees: &[Tree]) -> Vec<FnDef> {
    let mut out = Vec::new();
    collect_fns(tokens, trees, &mut out);
    out
}

fn collect_fns(tokens: &[Token], list: &[Tree], out: &mut Vec<FnDef>) {
    let mut i = 0;
    while i < list.len() {
        if ast::is_ident(tokens, &list[i], "fn") {
            if let Some(def) = parse_fn(tokens, list, i) {
                out.push(def);
            }
        }
        if let Tree::Group(g) = &list[i] {
            collect_fns(tokens, &g.children, out);
        }
        i += 1;
    }
}

/// Parses a `fn` starting at `list[at]`; returns `None` for bodyless
/// declarations (trait signatures) and `fn`-pointer types.
fn parse_fn(tokens: &[Token], list: &[Tree], at: usize) -> Option<FnDef> {
    let name_tree = list.get(at + 1)?;
    let name = ast::ident_text(tokens, name_tree)?;
    if is_keyword_like(name) {
        return None;
    }
    let name_tok = name_tree.first_token();
    // Params: first paren group after the name (generic params are
    // `<`/`>` leaves and pass through).
    let mut j = at + 2;
    let params_group = loop {
        match list.get(j)? {
            Tree::Group(g) if g.delim == Delim::Paren => break g,
            t if ast::is_punct(tokens, t, ";") => return None,
            _ => j += 1,
        }
    };
    // Body: first brace group after the params, unless a `;` ends the
    // declaration first.
    let mut k = j + 1;
    let body = loop {
        match list.get(k)? {
            Tree::Group(g) if g.delim == Delim::Brace => break g.clone(),
            t if ast::is_punct(tokens, t, ";") => return None,
            _ => k += 1,
        }
    };
    Some(FnDef {
        name: name.to_string(),
        name_tok,
        params: parse_params(tokens, &params_group.children),
        body,
    })
}

fn is_keyword_like(name: &str) -> bool {
    // `fn` immediately followed by one of these is not a definition we
    // can use (or not a name at all).
    matches!(name, "fn" | "mut" | "impl" | "dyn")
}

fn parse_params(tokens: &[Token], children: &[Tree]) -> Vec<Param> {
    let mut params = Vec::new();
    for seg in split_top_level(tokens, children, ",") {
        let colon = seg
            .iter()
            .position(|t| ast::is_punct(tokens, t, ":"));
        match colon {
            Some(c) => {
                let ty = ident_texts(tokens, &seg[c + 1..]);
                for name in pattern_names(tokens, &seg[..c]) {
                    params.push(Param {
                        name,
                        ty: ty.clone(),
                    });
                }
            }
            None => {
                // `self` / `&self` / `&mut self`.
                if seg.iter().any(|t| ast::is_ident(tokens, t, "self")) {
                    params.push(Param {
                        name: "self".to_string(),
                        ty: vec!["Self".to_string()],
                    });
                }
            }
        }
    }
    params
}

/// Splits a sibling list on a top-level punct, returning the segments.
pub fn split_top_level<'t>(
    tokens: &[Token],
    list: &'t [Tree],
    punct: &str,
) -> Vec<&'t [Tree]> {
    let mut segs = Vec::new();
    let mut start = 0;
    for (i, t) in list.iter().enumerate() {
        if ast::is_punct(tokens, t, punct) {
            segs.push(&list[start..i]);
            start = i + 1;
        }
    }
    segs.push(&list[start..]);
    segs
}

/// Lowercase/underscore-initial identifiers in a pattern, minus binding
/// noise words. `_guard` counts (guards matter); bare `_` does not.
pub fn pattern_names(tokens: &[Token], trees: &[Tree]) -> Vec<String> {
    let mut names = Vec::new();
    collect_pattern_names(tokens, trees, &mut names);
    names
}

fn collect_pattern_names(tokens: &[Token], trees: &[Tree], out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Leaf(i) => {
                let tok = match tokens.get(*i) {
                    Some(tok) => tok,
                    None => continue,
                };
                if tok.kind != TokKind::Ident {
                    continue;
                }
                let text = tok.text.as_str();
                if text == "_" || matches!(text, "mut" | "ref" | "box" | "self") {
                    continue;
                }
                if text.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
                    out.push(text.to_string());
                }
            }
            Tree::Group(g) => collect_pattern_names(tokens, &g.children, out),
        }
    }
}

/// All identifier texts in a span (used for type annotations).
pub fn ident_texts(tokens: &[Token], trees: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    for t in trees {
        match t {
            Tree::Leaf(i) => {
                if let Some(tok) = tokens.get(*i) {
                    if tok.kind == TokKind::Ident {
                        out.push(tok.text.clone());
                    }
                }
            }
            Tree::Group(g) => out.extend(ident_texts(tokens, &g.children)),
        }
    }
    out
}

/// Collects binding facts from a function body (recursively through
/// nested blocks, closures, match arms' bodies, ...).
///
/// `propagates_mut_args(f)` reports whether a call to `f` writes taint
/// into its `&mut` arguments — false for sanitizers, whose out-params
/// come back encrypted/hashed, true for everything else.
pub fn collect_binds(
    tokens: &[Token],
    list: &[Tree],
    propagates_mut_args: &dyn Fn(&str) -> bool,
    out: &mut Vec<Bind>,
) {
    // The entry list is a function body — a brace group's children.
    collect_binds_in(tokens, list, Delim::Brace, propagates_mut_args, out);
}

fn collect_binds_in(
    tokens: &[Token],
    list: &[Tree],
    delim: Delim,
    propagates_mut_args: &dyn Fn(&str) -> bool,
    out: &mut Vec<Bind>,
) {
    collect_lets_and_loops(tokens, list, out);
    collect_assignments(tokens, list, out);
    // Statement-level method mutation only exists in statement lists.
    // Running it on paren groups misreads a multi-argument call list
    // `f(group, …, x.method(), &mut out)` as `group` absorbing the
    // arguments' taint.
    if delim == Delim::Brace {
        collect_stmt_mutations(tokens, list, out);
    }
    collect_mut_out_params(tokens, list, propagates_mut_args, out);
    for t in list {
        if let Tree::Group(g) = t {
            collect_binds_in(tokens, &g.children, g.delim, propagates_mut_args, out);
        }
    }
}

/// `let pat[: ty] = rhs;` (incl. let-else) and `for pat in expr {}`.
fn collect_lets_and_loops(tokens: &[Token], list: &[Tree], out: &mut Vec<Bind>) {
    let mut i = 0;
    while i < list.len() {
        if ast::is_ident(tokens, &list[i], "let") {
            if let Some(next) = parse_let(tokens, list, i, out) {
                i = next;
                continue;
            }
        }
        if ast::is_ident(tokens, &list[i], "for") {
            if let Some(next) = parse_for(tokens, list, i, out) {
                i = next;
                continue;
            }
        }
        i += 1;
    }
}

fn parse_let(
    tokens: &[Token],
    list: &[Tree],
    at: usize,
    out: &mut Vec<Bind>,
) -> Option<usize> {
    // Find the `=` introducing the initializer (bare `=`: the lexer has
    // already fused `==`, `<=`, `>=`, `=>`, `!=`).
    let eq = (at + 1..list.len()).find(|&i| ast::is_punct(tokens, &list[i], "="))?;
    let semi = (eq + 1..list.len())
        .find(|&i| {
            ast::is_punct(tokens, &list[i], ";") || ast::is_ident(tokens, &list[i], "else")
        })
        .unwrap_or(list.len());
    let pat = &list[at + 1..eq];
    let colon = pat.iter().position(|t| ast::is_punct(tokens, t, ":"));
    let (pat, ty) = match colon {
        Some(c) => (&pat[..c], ident_texts(tokens, &pat[c + 1..])),
        None => (pat, Vec::new()),
    };
    out.push(Bind {
        names: pattern_names(tokens, pat),
        ty,
        rhs: list[eq + 1..semi].to_vec(),
    });
    Some(semi)
}

fn parse_for(
    tokens: &[Token],
    list: &[Tree],
    at: usize,
    out: &mut Vec<Bind>,
) -> Option<usize> {
    // `for pat in expr { .. }` — bail on `for<'a>` higher-ranked bounds
    // (no `in` before the body).
    let body = (at + 1..list.len()).find(|&i| {
        matches!(&list[i], Tree::Group(g) if g.delim == Delim::Brace)
    })?;
    let r#in = (at + 1..body).find(|&i| ast::is_ident(tokens, &list[i], "in"))?;
    out.push(Bind {
        names: pattern_names(tokens, &list[at + 1..r#in]),
        ty: Vec::new(),
        rhs: list[r#in + 1..body].to_vec(),
    });
    Some(r#in + 1)
}

/// `target = rhs;` and compound assignments (`+=` lexes as `+` `=`).
fn collect_assignments(tokens: &[Token], list: &[Tree], out: &mut Vec<Bind>) {
    let stmts = split_top_level(tokens, list, ";");
    for stmt in stmts {
        if stmt.first().is_some_and(|t| {
            ast::is_ident(tokens, t, "let") || ast::is_ident(tokens, t, "for")
        }) {
            continue; // handled by collect_lets_and_loops
        }
        let Some(eq) = stmt.iter().position(|t| ast::is_punct(tokens, t, "=")) else {
            continue;
        };
        // Walk back over the target chain (`*self.buf[i] +` ... `=`),
        // keeping the last identifier as the tracked name.
        let mut name = None;
        for t in stmt[..eq].iter().rev() {
            match t {
                Tree::Leaf(i) => {
                    let Some(tok) = tokens.get(*i) else { break };
                    match tok.kind {
                        TokKind::Ident => {
                            name = Some(tok.text.clone());
                            break;
                        }
                        TokKind::Punct
                            if matches!(
                                tok.text.as_str(),
                                "." | "*" | "+" | "-" | "|" | "&" | "^" | "%" | "/"
                            ) => {}
                        _ => break,
                    }
                }
                Tree::Group(g) if g.delim == Delim::Bracket => {} // indexing
                Tree::Group(_) => break,
            }
        }
        if let Some(name) = name {
            out.push(Bind {
                names: vec![name],
                ty: Vec::new(),
                rhs: stmt[eq + 1..].to_vec(),
            });
        }
    }
}

/// `receiver.method(args);` at statement level: the receiver absorbs
/// the statement's taint (covers `buf.extend_from_slice(&secret)`,
/// `set.insert(v)` and friends without a method allowlist).
fn collect_stmt_mutations(tokens: &[Token], list: &[Tree], out: &mut Vec<Bind>) {
    for stmt in split_top_level(tokens, list, ";") {
        let Some(first) = stmt.first() else { continue };
        let Some(recv) = ast::ident_text(tokens, first) else {
            continue;
        };
        if is_stmt_keyword(recv) {
            continue;
        }
        let has_eq = stmt.iter().any(|t| ast::is_punct(tokens, t, "="));
        let has_dot = stmt.iter().any(|t| ast::is_punct(tokens, t, "."));
        let has_call = stmt
            .iter()
            .any(|t| matches!(t, Tree::Group(g) if g.delim == Delim::Paren));
        if !has_eq && has_dot && has_call {
            out.push(Bind {
                names: vec![recv.to_string()],
                ty: Vec::new(),
                rhs: stmt.to_vec(),
            });
        }
    }
}

fn is_stmt_keyword(name: &str) -> bool {
    matches!(
        name,
        "let" | "if" | "else" | "while" | "for" | "loop" | "match" | "return" | "break"
            | "continue" | "fn" | "impl" | "mod" | "use" | "pub" | "struct" | "enum"
            | "trait" | "unsafe" | "static" | "const" | "move" | "where" | "type"
    )
}

/// `f(..., &mut x, ...)` for non-sanitizer `f`: `x` receives the taint
/// of the whole argument list (covers out-param style like
/// `read_into(&src, &mut dst)`).
fn collect_mut_out_params(
    tokens: &[Token],
    list: &[Tree],
    propagates_mut_args: &dyn Fn(&str) -> bool,
    out: &mut Vec<Bind>,
) {
    for (i, t) in list.iter().enumerate() {
        let Tree::Group(g) = t else { continue };
        if g.delim != Delim::Paren || i == 0 {
            continue;
        }
        let Some(callee) = ast::ident_text(tokens, &list[i - 1]) else {
            continue;
        };
        if !propagates_mut_args(callee) {
            continue;
        }
        let mut names = Vec::new();
        find_mut_refs(tokens, &g.children, &mut names);
        if !names.is_empty() {
            out.push(Bind {
                names,
                ty: Vec::new(),
                rhs: g.children.clone(),
            });
        }
    }
}

fn find_mut_refs(tokens: &[Token], list: &[Tree], out: &mut Vec<String>) {
    for w in 0..list.len() {
        if w + 2 < list.len()
            && ast::is_punct(tokens, &list[w], "&")
            && ast::is_ident(tokens, &list[w + 1], "mut")
        {
            if let Some(name) = ast::ident_text(tokens, &list[w + 2]) {
                if name != "self" {
                    out.push(name.to_string());
                }
            }
        }
    }
    for t in list {
        if let Tree::Group(g) = t {
            find_mut_refs(tokens, &g.children, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn fns_of(src: &str) -> (Vec<Token>, Vec<FnDef>) {
        let tokens = lex(src);
        let trees = parse(&tokens);
        let fns = functions(&tokens, &trees);
        (tokens, fns)
    }

    #[test]
    fn finds_nested_fns_and_params() {
        let src = "impl X { pub fn go<T: Y>(&mut self, key: &CommutativeKey, (a, b): (u8, u8)) -> bool { true } }\ntrait T { fn sig(&self); }";
        let (_, fns) = fns_of(src);
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.name, "go");
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["self", "key", "a", "b"]);
        assert!(f.params[1].ty.iter().any(|t| t == "CommutativeKey"));
    }

    #[test]
    fn collects_let_for_assign_and_mutation_facts() {
        let src = r#"
            fn f(values: &[u8]) {
                let mut acc: Vec<u8> = Vec::new();
                for v in values { acc.push(*v); }
                let (x, y) = (1, 2);
                total = x + y;
                fill(&src, &mut sink);
            }
        "#;
        let (tokens, fns) = fns_of(src);
        let mut binds = Vec::new();
        collect_binds(&tokens, &fns[0].body.children, &|_| true, &mut binds);
        let names: Vec<Vec<String>> = binds.iter().map(|b| b.names.clone()).collect();
        assert!(names.contains(&vec!["acc".to_string()]));
        assert!(names.contains(&vec!["v".to_string()]));
        assert!(names.contains(&vec!["x".to_string(), "y".to_string()]));
        assert!(names.contains(&vec!["total".to_string()]));
        assert!(names.contains(&vec!["sink".to_string()]));
        // The typed let keeps its annotation.
        let acc = binds.iter().find(|b| b.names == ["acc"]).unwrap();
        assert!(acc.ty.iter().any(|t| t == "Vec"));
    }

    #[test]
    fn call_argument_lists_are_not_statement_mutations() {
        // `group` heads the argument list and `cfg.window()` puts a
        // method call in it; that must not read as `group.method(...)`
        // absorbing the arguments' taint.
        let src = "fn f() { encrypt_to(group, pool, &key, cfg.window(), &mut sorter); }";
        let (tokens, fns) = fns_of(src);
        let mut binds = Vec::new();
        collect_binds(&tokens, &fns[0].body.children, &|_| true, &mut binds);
        assert!(binds.iter().all(|b| !b.names.contains(&"group".to_string())));
        // The `&mut` out-param fact is still collected.
        assert!(binds.iter().any(|b| b.names.contains(&"sorter".to_string())));
    }

    #[test]
    fn sanitizer_calls_do_not_bind_out_params() {
        let src = "fn f() { encryptish(&mut buf); }";
        let (tokens, fns) = fns_of(src);
        let mut binds = Vec::new();
        collect_binds(
            &tokens,
            &fns[0].body.children,
            &|f| f != "encryptish",
            &mut binds,
        );
        assert!(binds.iter().all(|b| !b.names.contains(&"buf".to_string())));
    }
}
