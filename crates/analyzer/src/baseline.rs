//! The findings baseline: a checked-in ratchet for pre-existing findings.
//!
//! Format is a strict subset of TOML (hand-parsed — the dependency policy
//! forbids pulling a TOML crate for this):
//!
//! ```toml
//! # comments allowed
//! [[allow]]
//! rule = "PANIC01"
//! file = "crates/core/src/wire.rs"
//! count = 4
//! note = "optional free text"
//! ```
//!
//! Semantics: up to `count` findings of `rule` in `file` are tolerated.
//! More than `count` fails the gate (new findings); fewer is reported as
//! slack so the baseline can be ratcheted down.

use std::collections::BTreeMap;

use crate::Finding;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule id, e.g. `"PANIC01"`.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Number of tolerated findings.
    pub count: usize,
    /// Optional reviewer note.
    pub note: Option<String>,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// All allow entries, in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses the TOML-subset text. Returns a descriptive error on any
    /// line the subset grammar does not cover.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries: Vec<Entry> = Vec::new();
        let mut current: Option<Entry> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    entries.push(validate(e, lineno)?);
                }
                current = Some(Entry {
                    rule: String::new(),
                    file: String::new(),
                    count: 0,
                    note: None,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let entry = current
                .as_mut()
                .ok_or_else(|| format!("line {}: key outside [[allow]] table", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => entry.rule = parse_string(value, lineno)?,
                "file" => entry.file = parse_string(value, lineno)?,
                "note" => entry.note = Some(parse_string(value, lineno)?),
                "count" => {
                    entry.count = value
                        .parse()
                        .map_err(|_| format!("line {}: count must be an integer", lineno + 1))?
                }
                other => {
                    return Err(format!("line {}: unknown key `{other}`", lineno + 1));
                }
            }
        }
        if let Some(e) = current.take() {
            entries.push(validate(e, text.lines().count())?);
        }
        Ok(Baseline { entries })
    }

    /// Renders back to the canonical TOML-subset text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Findings baseline for minshare-analyzer.\n\
             # Each entry tolerates up to `count` findings of `rule` in `file`.\n\
             # Counts may only shrink: fix a finding, then lower (or drop) the entry.\n",
        );
        for e in &self.entries {
            out.push_str("\n[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", e.rule));
            out.push_str(&format!("file = \"{}\"\n", e.file));
            out.push_str(&format!("count = {}\n", e.count));
            if let Some(note) = &e.note {
                out.push_str(&format!("note = \"{note}\"\n"));
            }
        }
        out
    }

    /// Builds a baseline exactly covering `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, file), count)| Entry {
                    rule,
                    file,
                    count,
                    note: None,
                })
                .collect(),
        }
    }

    /// Allowed count for `(rule, file)` (0 when absent).
    pub fn allowed(&self, rule: &str, file: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.rule == rule && e.file == file)
            .map(|e| e.count)
            .sum()
    }
}

fn validate(e: Entry, lineno: usize) -> Result<Entry, String> {
    if e.rule.is_empty() || e.file.is_empty() {
        return Err(format!(
            "entry ending near line {}: `rule` and `file` are required",
            lineno + 1
        ));
    }
    Ok(e)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment. The subset has no escapes
    // inside strings, so toggling on `"` is exact.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {}: expected a quoted string", lineno + 1))
    }
}

/// Outcome of comparing findings against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateResult {
    /// Findings beyond their baselined count — these fail the gate.
    pub new_findings: Vec<Finding>,
    /// `(rule, file, slack)` where the baseline tolerates more findings
    /// than exist; candidates for ratcheting down.
    pub stale: Vec<(String, String, usize)>,
}

/// Applies the count ratchet: per `(rule, file)`, the first `allowed`
/// findings pass, the remainder are new.
pub fn gate(findings: &[Finding], baseline: &Baseline) -> GateResult {
    let mut grouped: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        grouped
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default()
            .push(f);
    }
    let mut result = GateResult::default();
    for ((rule, file), group) in &grouped {
        let allowed = baseline.allowed(rule, file);
        if group.len() > allowed {
            result
                .new_findings
                .extend(group[allowed..].iter().map(|f| (*f).clone()));
        }
    }
    for e in &baseline.entries {
        let have = grouped
            .get(&(e.rule.clone(), e.file.clone()))
            .map(|g| g.len())
            .unwrap_or(0);
        if e.count > have {
            result.stale.push((e.rule.clone(), e.file.clone(), e.count - have));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_render_round_trip() {
        let text = "\n# header\n[[allow]]\nrule = \"PANIC01\" # trailing\nfile = \"crates/core/src/wire.rs\"\ncount = 3\n\n[[allow]]\nrule = \"SEC02\"\nfile = \"crates/crypto/src/sra.rs\"\ncount = 1\nnote = \"legacy\"\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.allowed("PANIC01", "crates/core/src/wire.rs"), 3);
        assert_eq!(b.entries[1].note.as_deref(), Some("legacy"));
        let b2 = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Baseline::parse("rule = \"X\"").is_err()); // key before table
        assert!(Baseline::parse("[[allow]]\nrule = X\nfile = \"f\"").is_err()); // unquoted
        assert!(Baseline::parse("[[allow]]\ncount = 1").is_err()); // missing rule/file
        assert!(Baseline::parse("[[allow]]\nrule = \"R\"\nfile = \"f\"\ncount = no").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = \"R\"\nfile = \"f\"\nbogus = 1").is_err());
    }

    #[test]
    fn gate_ratchets_counts() {
        let findings = vec![f("PANIC01", "a.rs", 1), f("PANIC01", "a.rs", 2), f("SEC02", "b.rs", 3)];
        let b = Baseline::parse("[[allow]]\nrule = \"PANIC01\"\nfile = \"a.rs\"\ncount = 1\n").unwrap();
        let r = gate(&findings, &b);
        // One PANIC01 over budget + the unbaselined SEC02.
        assert_eq!(r.new_findings.len(), 2);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn gate_reports_slack() {
        let b = Baseline::parse("[[allow]]\nrule = \"PANIC01\"\nfile = \"a.rs\"\ncount = 5\n").unwrap();
        let r = gate(&[f("PANIC01", "a.rs", 1)], &b);
        assert!(r.new_findings.is_empty());
        assert_eq!(r.stale, vec![("PANIC01".to_string(), "a.rs".to_string(), 4)]);
    }

    #[test]
    fn from_findings_covers_exactly() {
        let findings = vec![f("FMT01", "x.rs", 1), f("FMT01", "x.rs", 2)];
        let b = Baseline::from_findings(&findings);
        let r = gate(&findings, &b);
        assert!(r.new_findings.is_empty());
        assert!(r.stale.is_empty());
    }
}
