//! The secret-type registry: which types and identifiers the rules treat
//! as secret material.
//!
//! Kept as a plain source-of-truth module (not a config file) so adding a
//! new key type to the workspace forces a visible diff here, reviewed
//! alongside the type itself.

/// Type names holding long-term or session secrets. SEC01 forbids
/// `derive(Debug)` / `derive(PartialEq)` on these; FMT01 forbids
/// formatting them.
pub const SECRET_TYPES: &[&str] = &[
    // crates/crypto: commutative-encryption exponents and SRA keys.
    "CommutativeKey",
    "SraKey",
    "SraContext",
    // crates/crypto: OT receiver trapdoor + choice bit.
    "OtReceiverState",
    // crates/bignum: the recoded window schedule of a fixed exponent is
    // a deterministic encoding of the exponent; crates/crypto: the lazy
    // per-key cache cells holding such plans.
    "FixedExponentPlan",
    "PlanCachePair",
    // crates/crypto: pool work items carry the commutative key and group
    // elements between threads. The pool's tuning/counter cells
    // (PoolTuning, PoolCounters, CachePadded) are deliberately absent:
    // they hold only dispatch/item timing EWMAs and job counts — public
    // performance metadata, no key material.
    "PoolJob",
    "PendingBatch",
    // crates/simd: IfmaCtx is deliberately absent — it precomputes only
    // public modulus constants (n, R' mod n, R'^2 mod n, -n^-1 mod 2^52)
    // and touches group elements/ciphertexts; the secret window schedule
    // (FixedExponentPlan, above) never leaves crates/bignum, which
    // drives the vector ladder step by step. Revisit if the SIMD crate
    // ever grows exponent-dependent state.
    // crates/net: per-direction session keys.
    "DirectionKeys",
    // crates/core: the daemon's protocol brain owns the private database
    // (`V_S` with ext payloads, pre-hash plaintext) plus the base seed
    // every per-session key derives from. Debug/format on it would spill
    // the very set the protocols exist to protect. The surrounding
    // session *metadata* types (SessionRequest, SessionReport,
    // ClientTraffic in core; MuxFrame, SessionRegistry, ServerStats,
    // SessionTransport in net; SessionState/PoolSession in crypto) are
    // deliberately absent: they carry protocol codes, byte/op counters
    // and fair-share scheduling state — public observables with no key
    // or value material. Revisit if any of them ever grows a payload
    // field.
    "Service",
    // crates/net simnet/robust types (FaultPlan, SimEndpoint,
    // RobustTransport, SimTrace, ...) are deliberately absent: they
    // carry only opaque frame bytes, fault schedules and public seeds —
    // no key material. Revisit if the retry layer ever learns about
    // session state beyond ARQ counters.
    // crates/hashcore: the keyed MAC state embeds the key schedule.
    "HmacSha256",
];

/// Identifiers that name secret byte material. SEC02 flags `==` / `!=` /
/// `assert_eq!` comparisons mentioning them; FMT01 flags formatting them.
pub const SECRET_IDENTS: &[&str] = &[
    "exponent",
    "inverse_exponent",
    "e_inv",
    "phi",
    "opad_block",
    "mac_key",
    "cipher_key",
    "shared_secret",
    "ikm",
    "okm",
];

/// Identifiers that name *raw set values* — plaintexts that have not yet
/// passed `prepare_set`'s hash step. The taint pass seeds them with
/// `Taint::RAW`; WIRE01 forbids them (and anything derived from them)
/// from reaching a wire sink un-hashed-and-encrypted. Names are chosen
/// to match the protocol engines' parameter conventions (`values` in the
/// two-party engines, `vs`/`vr` in the three-party medical runs).
pub const RAW_VALUE_IDENTS: &[&str] = &["values", "vs", "vr", "raw_values", "plaintexts"];

/// Functions whose *return value* is key material (`Taint::KEY`):
/// key generation and key derivation. `hkdf::derive` is a source, not a
/// sanitizer — its output is the session key schedule, which must never
/// travel.
pub const KEY_SOURCE_FNS: &[&str] = &["key_gen", "gen_key", "gen_key_pair", "derive"];

/// Hash-class sanitizers: one-way maps into the group/digest domain.
/// Their output is no longer the raw value, but it is **not yet safe to
/// transmit** — the paper's invariant is hash *then* encrypt, and a bare
/// `h(v)` on the wire permits offline dictionary probing. The taint pass
/// maps `RAW → HASHED` through these and absorbs their arguments.
/// A `KEY` input maps to clean: a digest/MAC tag over key material
/// (e.g. `HmacSha256::finalize`) does not reveal the key.
pub const HASH_SANITIZER_FNS: &[&str] = &[
    // crates/hashcore + scheme trait: the paper's h : V → Z*_p.
    "hash_value",
    "hash_to_group",
    // crates/core/src/prepare.rs: dedup + hash of a whole value set.
    "prepare_set",
    "prepare_multiset",
    // crates/hashcore HMAC: tag emission over (already-clean) frames.
    "finalize",
];

/// Encrypt-class sanitizers: commutative/stream encryption and the
/// modexp paths implementing it. Anything that passed through one of
/// these is ciphertext and is safe to transmit (`→ CLEAN`). `pow` is
/// included deliberately: `g^x` with a secret exponent is a DH public
/// value whose safety is exactly the discrete-log assumption the whole
/// protocol rests on.
pub const ENC_SANITIZER_FNS: &[&str] = &[
    // crates/crypto scheme + QrGroup.
    "apply",
    "unapply",
    "encrypt",
    "decrypt",
    "encrypt_many",
    "decrypt_many",
    "encrypt_checked",
    "decrypt_checked",
    "hash_encrypt",
    "hash_encrypt_many",
    "pow",
    "pow_batch",
    "pow_multi_ctx",
    // crates/bignum/src/fixpow.rs: pow_multi_ctx pinned to the scalar
    // kernels — same modexp, same DH-safety argument, just no SIMD
    // dispatch. Exists as the differential oracle for the `simd` feature.
    "pow_batch_scalar",
    // crates/crypto/src/pool.rs: batch jobs — the pool applies the
    // scheme ops above on worker threads; the submitted items come back
    // encrypted via `PendingBatch::wait`, so `wait`'s output is
    // ciphertext too (the pool runs nothing but scheme ops).
    "submit_encrypt",
    "submit_decrypt",
    "submit_hash_encrypt",
    "encrypt_batch",
    "wait",
    // crates/core/src/pipeline.rs: accessor extracting the ciphertext
    // half of the sorted `(codeword, value)` pairing the receivers keep
    // for local matching; its output is exactly the pool-encrypted
    // codewords.
    "sorted_codewords",
    // crates/crypto/src/chacha20.rs: the secure-channel stream cipher.
    "apply_keystream",
    // crates/crypto/src/kcipher.rs: K(κ, ext(v)) payload encryption.
    "seal",
    // crates/core/src/spill.rs + shard.rs: records entering the spill
    // sorter are post-h-post-enc by construction (`push_record` is a
    // registered sink enforcing it), so reloading them from the merged
    // stream yields the same ciphertext codewords back.
    "next_record",
    "take_bucket",
    "rec_codeword",
];

/// Benign projections: methods that return sizes/counters/metadata of a
/// tainted receiver, not its contents. The taint pass absorbs the
/// receiver chain of these calls (a length is not the value). Keep this
/// list to genuinely content-free accessors.
pub const PROJECTION_FNS: &[&str] = &[
    "len",
    "is_empty",
    "is_some",
    "is_none",
    "count",
    // The group modulus is a public parameter; reading it off a
    // key-holding plan/context reveals nothing secret.
    "modulus",
    "total_items",
    "codeword_len",
    "elem_len",
    "wire_bits",
    "bytes_sent",
    "bytes_received",
    "ciphertext_len",
    "max_plaintext_len",
    // crates/core/src/spill.rs: run/byte/record counters of the external
    // sorter — sizes of ciphertext runs, no content.
    "stats",
    // crates/core/src/shard.rs: bucket arithmetic. `bucket_of` reads a
    // prefix of an *encoded group element* (its callers feed it h(v)
    // codewords or spilled ciphertexts) and returns an index mod B —
    // the public, mutually computable bucket assignment, disclosed by
    // design as per-bucket set sizes (see leakage.rs). `effective_shards`
    // is config arithmetic.
    "bucket_of",
    "value_bucket",
    "effective_shards",
    // crates/crypto/src/pool.rs: live run-queue length, read for the
    // telemetry depth gauge. The queue holds key-carrying jobs; its
    // length is scheduling metadata.
    "depth",
];

/// Wire/encode sinks (WIRE01): a tainted argument (or receiver chain)
/// reaching one of these without hash-then-encrypt is excess leakage.
/// `send`/`send_batch` are the `Transport` methods; `encode*` build wire
/// frames; `put_slice` is the `FrameBatch` writer append; the two
/// `*_chunked` helpers stream codewords straight onto a transport.
pub const WIRE_SINK_FNS: &[&str] = &[
    "send",
    "send_batch",
    "encode",
    "encode_into",
    "encode_codewords_into",
    "send_codewords_chunked",
    "send_payload_pairs_chunked",
    "put_slice",
    // crates/core/src/spill.rs: spill-run files persist outside the
    // process's memory protection, so a record entering the external
    // sorter is held to the same hash-then-encrypt bar as a network
    // frame — WIRE01 proves spill files carry only ciphertext bytes.
    "push_record",
];

/// Telemetry snapshot exporters: the only blessed builders of a `STATS`
/// reply payload. Their output is a JSON rendering of the metrics
/// registry, which ingests nothing but typed trace fields — counts,
/// sizes, durations and flags, enforced upstream by OBS01 at every emit
/// site — so the taint pass treats them like projections: the rendered
/// snapshot is clean metadata even when the handle reaching the
/// registry is itself taint-carrying (the daemon's stats provider lives
/// beside the private database). Keep in lockstep with
/// `minshare-trace::metrics`.
pub const STATS_EXPORTER_FNS: &[&str] = &["snapshot_json", "snapshot_and_reset"];

/// Crates WIRE01 runs over: everything that can reach a transport.
pub const WIRE01_CRATES: &[&str] = &["core", "crypto", "net"];

/// Files exempt from WIRE01, each with the reason the exemption is
/// sound. These are reviewed here, not silently baselined.
pub const WIRE01_EXEMPT_FILES: &[(&str, &str)] = &[
    (
        "crates/core/src/tradeoff.rs",
        "§7 tradeoff protocols *deliberately* disclose BF(V_R) — a Bloom \
         filter over hashed values — and a hit count in exchange for \
         zero/fewer exponentiations; the module quantifies its own \
         disclosure (see FilterDisclosure) and SECURITY.md documents it",
    ),
    (
        "crates/crypto/src/pool.rs",
        "the pool's fair-share run queue hands Arc<PoolJob> (which holds \
         the commutative key) to worker threads of the same process, and \
         crossbeam result channels carry the ciphertexts back; \
         `Sender::send` here is not a network transport. A real wire \
         sink must never be added to this file",
    ),
];

/// Crates LOCK01 runs over: the pool (ROADMAP sharding work) and the
/// transport stack, where a blocking call under a held guard can
/// deadlock a protocol party.
pub const LOCK01_CRATES: &[&str] = &["crypto", "net"];

/// Calls that produce a lock guard when they terminate a binding's
/// call chain (`let g = m.lock();`).
pub const GUARD_FNS: &[&str] = &["lock", "read", "write"];

/// Potentially unbounded blocking calls LOCK01 forbids while a guard is
/// live. `wait`/`wait_timeout` invocations that *consume the guard
/// itself* (condvar style, releasing the lock while parked) are exempt.
pub const BLOCKING_FNS: &[&str] = &["recv", "join", "wait", "wait_timeout"];

/// Crates whose non-test code must be panic-free (PANIC01): these process
/// peer-supplied bytes, where a panic is a remote denial of service.
pub const PANIC_FREE_CRATES: &[&str] = &["crypto", "core", "net"];

/// True iff `name` is a registered secret type.
pub fn is_secret_type(name: &str) -> bool {
    SECRET_TYPES.contains(&name)
}

/// True iff `name` is a registered secret identifier.
pub fn is_secret_ident(name: &str) -> bool {
    SECRET_IDENTS.contains(&name)
}

/// True iff `name` is a registered raw-value identifier.
pub fn is_raw_value_ident(name: &str) -> bool {
    RAW_VALUE_IDENTS.contains(&name)
}

/// True iff calling `name` yields key material.
pub fn is_key_source_fn(name: &str) -> bool {
    KEY_SOURCE_FNS.contains(&name)
}

/// True iff `name` is a hash-class sanitizer.
pub fn is_hash_sanitizer(name: &str) -> bool {
    HASH_SANITIZER_FNS.contains(&name)
}

/// True iff `name` is an encrypt-class sanitizer.
pub fn is_enc_sanitizer(name: &str) -> bool {
    ENC_SANITIZER_FNS.contains(&name)
}

/// True iff `name` is a benign size/counter projection.
pub fn is_projection_fn(name: &str) -> bool {
    PROJECTION_FNS.contains(&name)
}

/// True iff `name` is a registered telemetry snapshot exporter.
pub fn is_stats_exporter_fn(name: &str) -> bool {
    STATS_EXPORTER_FNS.contains(&name)
}

/// True iff `name` is a wire/encode sink method or function.
pub fn is_wire_sink_fn(name: &str) -> bool {
    WIRE_SINK_FNS.contains(&name)
}

/// Reason `rel_path` is exempt from WIRE01, if it is.
pub fn wire01_exemption(rel_path: &str) -> Option<&'static str> {
    let normalized = rel_path.replace('\\', "/");
    WIRE01_EXEMPT_FILES
        .iter()
        .find(|(f, _)| *f == normalized)
        .map(|(_, why)| *why)
}

/// True iff a workspace-relative path lies in a crate the given rule
/// scope covers (`crates/<name>/src/...`).
fn in_crates(rel_path: &str, crates: &[&str]) -> bool {
    let normalized = rel_path.replace('\\', "/");
    crates
        .iter()
        .any(|c| normalized.starts_with(&format!("crates/{c}/src/")))
}

/// True iff WIRE01 runs over this file.
pub fn in_wire01_scope(rel_path: &str) -> bool {
    in_crates(rel_path, WIRE01_CRATES) && wire01_exemption(rel_path).is_none()
}

/// True iff LOCK01 runs over this file.
pub fn in_lock01_scope(rel_path: &str) -> bool {
    in_crates(rel_path, LOCK01_CRATES)
}

/// True iff a workspace-relative path (e.g. `crates/crypto/src/ot.rs`)
/// lies in a panic-free crate.
pub fn in_panic_free_crate(rel_path: &str) -> bool {
    in_crates(rel_path, PANIC_FREE_CRATES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookups() {
        assert!(is_secret_type("CommutativeKey"));
        assert!(is_secret_type("FixedExponentPlan"));
        assert!(is_secret_type("Service"));
        assert!(!is_secret_type("OtQuery"));
        // Session metadata stays formattable: counters and scheduling
        // state, not secrets.
        assert!(!is_secret_type("SessionReport"));
        assert!(!is_secret_type("SessionState"));
        assert!(!is_secret_type("MuxFrame"));
        assert!(is_secret_ident("mac_key"));
        assert!(!is_secret_ident("modulus"));
        assert!(in_panic_free_crate("crates/crypto/src/ot.rs"));
        assert!(in_panic_free_crate("crates/net/src/secure.rs"));
        assert!(!in_panic_free_crate("crates/bignum/src/ubig.rs"));
        assert!(!in_panic_free_crate("crates/crypto/tests/props.rs"));
    }

    #[test]
    fn taint_registry_lookups() {
        assert!(is_raw_value_ident("values"));
        assert!(!is_raw_value_ident("vr_size"));
        assert!(is_key_source_fn("gen_key"));
        assert!(is_hash_sanitizer("prepare_set"));
        assert!(is_enc_sanitizer("pow_multi_ctx"));
        assert!(!is_enc_sanitizer("encode"));
        assert!(is_wire_sink_fn("send_batch"));
        assert!(is_wire_sink_fn("push_record"));
        assert!(is_enc_sanitizer("next_record"));
        assert!(is_enc_sanitizer("take_bucket"));
        assert!(is_projection_fn("bucket_of"));
        assert!(is_projection_fn("total_items"));
        // The stats exporters are projection-class, not enc-class: they
        // bless only their own rendered output.
        assert!(is_stats_exporter_fn("snapshot_json"));
        assert!(is_stats_exporter_fn("snapshot_and_reset"));
        assert!(!is_stats_exporter_fn("snapshot"));
        assert!(!is_enc_sanitizer("snapshot_json"));
        // Scope and exemptions.
        assert!(in_wire01_scope("crates/core/src/intersection.rs"));
        assert!(!in_wire01_scope("crates/core/src/tradeoff.rs"));
        assert!(wire01_exemption("crates/crypto/src/pool.rs").is_some());
        assert!(!in_wire01_scope("crates/bench/src/lib.rs"));
        assert!(in_lock01_scope("crates/net/src/simnet/mod.rs"));
        assert!(!in_lock01_scope("crates/core/src/wire.rs"));
    }
}
