//! The secret-type registry: which types and identifiers the rules treat
//! as secret material.
//!
//! Kept as a plain source-of-truth module (not a config file) so adding a
//! new key type to the workspace forces a visible diff here, reviewed
//! alongside the type itself.

/// Type names holding long-term or session secrets. SEC01 forbids
/// `derive(Debug)` / `derive(PartialEq)` on these; FMT01 forbids
/// formatting them.
pub const SECRET_TYPES: &[&str] = &[
    // crates/crypto: commutative-encryption exponents and SRA keys.
    "CommutativeKey",
    "SraKey",
    "SraContext",
    // crates/crypto: OT receiver trapdoor + choice bit.
    "OtReceiverState",
    // crates/bignum: the recoded window schedule of a fixed exponent is
    // a deterministic encoding of the exponent; crates/crypto: the lazy
    // per-key cache cells holding such plans.
    "FixedExponentPlan",
    "PlanCachePair",
    // crates/crypto: pool work items carry the commutative key and group
    // elements between threads.
    "PoolJob",
    "PendingBatch",
    // crates/net: per-direction session keys.
    "DirectionKeys",
    // crates/net simnet/robust types (FaultPlan, SimEndpoint,
    // RobustTransport, SimTrace, ...) are deliberately absent: they
    // carry only opaque frame bytes, fault schedules and public seeds —
    // no key material. Revisit if the retry layer ever learns about
    // session state beyond ARQ counters.
    // crates/hashcore: the keyed MAC state embeds the key schedule.
    "HmacSha256",
];

/// Identifiers that name secret byte material. SEC02 flags `==` / `!=` /
/// `assert_eq!` comparisons mentioning them; FMT01 flags formatting them.
pub const SECRET_IDENTS: &[&str] = &[
    "exponent",
    "inverse_exponent",
    "e_inv",
    "phi",
    "opad_block",
    "mac_key",
    "cipher_key",
    "shared_secret",
    "ikm",
    "okm",
];

/// Crates whose non-test code must be panic-free (PANIC01): these process
/// peer-supplied bytes, where a panic is a remote denial of service.
pub const PANIC_FREE_CRATES: &[&str] = &["crypto", "core", "net"];

/// True iff `name` is a registered secret type.
pub fn is_secret_type(name: &str) -> bool {
    SECRET_TYPES.contains(&name)
}

/// True iff `name` is a registered secret identifier.
pub fn is_secret_ident(name: &str) -> bool {
    SECRET_IDENTS.contains(&name)
}

/// True iff a workspace-relative path (e.g. `crates/crypto/src/ot.rs`)
/// lies in a panic-free crate.
pub fn in_panic_free_crate(rel_path: &str) -> bool {
    let normalized = rel_path.replace('\\', "/");
    PANIC_FREE_CRATES
        .iter()
        .any(|c| normalized.starts_with(&format!("crates/{c}/src/")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookups() {
        assert!(is_secret_type("CommutativeKey"));
        assert!(is_secret_type("FixedExponentPlan"));
        assert!(!is_secret_type("OtQuery"));
        assert!(is_secret_ident("mac_key"));
        assert!(!is_secret_ident("modulus"));
        assert!(in_panic_free_crate("crates/crypto/src/ot.rs"));
        assert!(in_panic_free_crate("crates/net/src/secure.rs"));
        assert!(!in_panic_free_crate("crates/bignum/src/ubig.rs"));
        assert!(!in_panic_free_crate("crates/crypto/tests/props.rs"));
    }
}
