//! Protocol messages and their byte encoding.
//!
//! Group elements go on the wire as fixed-width big-endian codewords of
//! exactly `⌈k/8⌉` bytes (the paper counts communication in `k`-bit
//! codewords, §6.1), so "lexicographic order" of codewords coincides with
//! numeric order of elements. Counts are 32-bit big-endian; payload blobs
//! are length-prefixed.

use bytes::{Buf, BufMut};
use minshare_bignum::UBig;
use minshare_crypto::CommutativeScheme;
use minshare_net::{FrameBatch, Transport};

use crate::error::ProtocolError;

/// A message exchanged by the protocol engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A list of encrypted codewords. Used for `Y_R`, `Y_S`,
    /// `f_{e_S}(Y_R)` (order-significant) and `Z_R` (sorted).
    Codewords(Vec<UBig>),
    /// Pairs `(f_{e_S}(y), f_{e'_S}(y))` answering `Y_R` in order
    /// (equijoin step 4, with the paper's §6.1 optimization of not
    /// retransmitting `y`).
    CodewordPairs(Vec<(UBig, UBig)>),
    /// Pairs `(f_{e_S}(h(v)), K(κ(v), ext(v)))`, sorted by the first
    /// component (equijoin step 5).
    PayloadPairs(Vec<(UBig, Vec<u8>)>),
}

pub(crate) const TAG_CODEWORDS: u8 = 1;
pub(crate) const TAG_CODEWORD_PAIRS: u8 = 2;
pub(crate) const TAG_PAYLOAD_PAIRS: u8 = 3;
/// Envelope tag announcing that one logical message follows split across
/// several frames (see [`ChunkedWriter`]).
pub(crate) const TAG_CHUNKED: u8 = 4;
/// Hello frame opening a *sharded* run (see [`crate::shard`]): the
/// receiver announces the bucket count before any codeword flows. Never
/// sent for single-shard runs, which therefore stay byte-identical to
/// the unsharded engines.
pub(crate) const TAG_SHARDED: u8 = 5;

/// Bytes of the shard hello frame:
/// `[TAG_SHARDED, version, shard_count: u32be]`.
pub(crate) const SHARD_HELLO_LEN: usize = 6;

/// Shard-hello codec version.
pub(crate) const SHARD_WIRE_VERSION: u8 = 1;

/// Upper bound on the bucket count a peer may announce: each bucket
/// costs per-bucket frames and merge state, so an absurd count is
/// rejected as malformed rather than honored.
pub(crate) const MAX_SHARDS: u32 = 1 << 16;

/// Encodes the shard hello frame for `shards` buckets.
pub(crate) fn encode_shard_hello(shards: u32) -> [u8; SHARD_HELLO_LEN] {
    let [b0, b1, b2, b3] = shards.to_be_bytes();
    [TAG_SHARDED, SHARD_WIRE_VERSION, b0, b1, b2, b3]
}

/// Inspects a received frame: `Ok(Some(shards))` when it is a valid
/// shard hello, `Ok(None)` when it is some other (non-hello) frame the
/// caller should process normally, and an error for a hello that is
/// malformed or announces an unsupported version or bucket count.
pub(crate) fn decode_shard_hello(frame: &[u8]) -> Result<Option<u32>, ProtocolError> {
    if frame.first() != Some(&TAG_SHARDED) {
        return Ok(None);
    }
    if frame.len() != SHARD_HELLO_LEN {
        return Err(chunk_malformed("bad shard hello length"));
    }
    if frame.get(1) != Some(&SHARD_WIRE_VERSION) {
        return Err(chunk_malformed("unsupported shard hello version"));
    }
    let bytes = frame
        .get(2..6)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .ok_or_else(|| chunk_malformed("bad shard hello length"))?;
    let shards = u32::from_be_bytes(bytes);
    if shards == 0 || shards > MAX_SHARDS {
        return Err(chunk_malformed("implausible shard count"));
    }
    Ok(Some(shards))
}

/// Bytes of a chunked-envelope header frame:
/// `[TAG_CHUNKED, inner_tag, total_items: u32, chunk_count: u32]`.
pub(crate) const CHUNK_HEADER_LEN: usize = 10;

impl Message {
    /// Short name for error reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Codewords(_) => "codewords",
            Message::CodewordPairs(_) => "codeword-pairs",
            Message::PayloadPairs(_) => "payload-pairs",
        }
    }

    /// Wire tag of this message variant.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Message::Codewords(_) => TAG_CODEWORDS,
            Message::CodewordPairs(_) => TAG_CODEWORD_PAIRS,
            Message::PayloadPairs(_) => TAG_PAYLOAD_PAIRS,
        }
    }

    /// Number of logical items (codewords or pairs) the message carries.
    pub(crate) fn item_count(&self) -> usize {
        match self {
            Message::Codewords(list) => list.len(),
            Message::CodewordPairs(list) => list.len(),
            Message::PayloadPairs(list) => list.len(),
        }
    }

    /// Serializes for the wire. Elements are encoded at the scheme's
    /// fixed codeword width.
    pub fn encode<S: CommutativeScheme>(&self, scheme: &S) -> Result<Vec<u8>, ProtocolError> {
        let mut buf = Vec::new();
        self.encode_into(scheme, &mut buf)?;
        Ok(buf)
    }

    /// Serializes directly into any [`BufMut`] sink — a `Vec`, or a
    /// [`FrameBatch`] frame writer, which lets a run of messages share
    /// one buffer without per-message `Vec`s.
    pub(crate) fn encode_into<S: CommutativeScheme, B: BufMut>(
        &self,
        scheme: &S,
        buf: &mut B,
    ) -> Result<(), ProtocolError> {
        match self {
            Message::Codewords(list) => encode_codewords_into(scheme, list, buf)?,
            Message::CodewordPairs(list) => {
                buf.put_u8(TAG_CODEWORD_PAIRS);
                buf.put_u32(list.len() as u32);
                for (a, b) in list {
                    buf.put_slice(&scheme.encode_elem(a)?);
                    buf.put_slice(&scheme.encode_elem(b)?);
                }
            }
            Message::PayloadPairs(list) => {
                buf.put_u8(TAG_PAYLOAD_PAIRS);
                buf.put_u32(list.len() as u32);
                for (a, payload) in list {
                    buf.put_slice(&scheme.encode_elem(a)?);
                    buf.put_u32(payload.len() as u32);
                    buf.put_slice(payload);
                }
            }
        }
        Ok(())
    }

    /// Parses a frame, validating every codeword is a domain element.
    pub fn decode<S: CommutativeScheme>(
        frame: &[u8],
        scheme: &S,
    ) -> Result<Message, ProtocolError> {
        let malformed = |detail: &str| ProtocolError::MalformedMessage {
            detail: detail.to_string(),
        };
        let mut buf = frame;
        if buf.remaining() < 5 {
            return Err(malformed("frame shorter than header"));
        }
        let tag = buf.get_u8();
        let count = buf.get_u32() as usize;
        let width = scheme.codeword_len();

        let take_element = |buf: &mut &[u8]| -> Result<UBig, ProtocolError> {
            let bytes = buf
                .get(..width)
                .ok_or_else(|| malformed("truncated codeword"))?;
            let x = scheme.decode_elem(bytes)?;
            buf.advance(width);
            Ok(x)
        };

        let msg = match tag {
            TAG_CODEWORDS => {
                let mut list = Vec::with_capacity(count.min(1 << 22));
                for _ in 0..count {
                    list.push(take_element(&mut buf)?);
                }
                Message::Codewords(list)
            }
            TAG_CODEWORD_PAIRS => {
                let mut list = Vec::with_capacity(count.min(1 << 21));
                for _ in 0..count {
                    let a = take_element(&mut buf)?;
                    let b = take_element(&mut buf)?;
                    list.push((a, b));
                }
                Message::CodewordPairs(list)
            }
            TAG_PAYLOAD_PAIRS => {
                let mut list = Vec::with_capacity(count.min(1 << 21));
                for _ in 0..count {
                    let a = take_element(&mut buf)?;
                    if buf.remaining() < 4 {
                        return Err(malformed("truncated payload length"));
                    }
                    let len = buf.get_u32() as usize;
                    let payload = buf
                        .get(..len)
                        .ok_or_else(|| malformed("truncated payload"))?
                        .to_vec();
                    buf.advance(len);
                    list.push((a, payload));
                }
                Message::PayloadPairs(list)
            }
            TAG_CHUNKED => {
                return Err(malformed(
                    "chunked envelope where a single message was expected",
                ))
            }
            TAG_SHARDED => {
                return Err(malformed(
                    "shard hello where a single message was expected",
                ))
            }
            _ => return Err(malformed("unknown message tag")),
        };
        if buf.has_remaining() {
            return Err(malformed("trailing bytes"));
        }
        Ok(msg)
    }
}

/// Checks that a codeword list is strictly increasing (lexicographic order
/// of fixed-width codewords = numeric order; strictness also catches
/// duplicate hashes, the paper's collision check).
pub fn require_strictly_sorted(list: &[UBig], what: &'static str) -> Result<(), ProtocolError> {
    for w in list.windows(2) {
        if let [a, b] = w {
            if a >= b {
                return Err(ProtocolError::NotSorted { what });
            }
        }
    }
    Ok(())
}

/// Checks that a codeword list is non-decreasing (multiset variant, used
/// by the equijoin-size protocol where duplicates are legitimate).
pub fn require_sorted(list: &[UBig], what: &'static str) -> Result<(), ProtocolError> {
    for w in list.windows(2) {
        if let [a, b] = w {
            if a > b {
                return Err(ProtocolError::NotSorted { what });
            }
        }
    }
    Ok(())
}

/// Default number of codewords per chunk for the pipelined engines: small
/// enough that encryption of one chunk overlaps the wire time of another,
/// large enough that the 5-byte frame header is noise.
pub const DEFAULT_CHUNK_SIZE: usize = 32;

fn chunk_malformed(detail: &str) -> ProtocolError {
    ProtocolError::MalformedMessage {
        detail: detail.to_string(),
    }
}

/// Streams one logical message as several frames under a chunked envelope.
///
/// Wire layout: a 10-byte header frame
/// `[TAG_CHUNKED, inner_tag, total_items: u32be, chunk_count: u32be]`
/// followed by `chunk_count` ordinary [`Message`] frames of `inner_tag`
/// whose item counts sum to `total_items`. When everything fits in one
/// chunk the header is skipped and a single plain frame goes out, so a
/// single-chunk stream is byte-identical to the serial protocol and
/// readable by a serial peer.
pub(crate) struct ChunkedWriter {
    inner_tag: u8,
    items_left: usize,
    chunks_left: u32,
}

impl ChunkedWriter {
    /// Starts a stream that will carry `total` items split every
    /// `chunk_size` items (the last chunk may be short).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn begin<T: Transport + ?Sized>(
        transport: &mut T,
        inner_tag: u8,
        total: usize,
        chunk_size: usize,
    ) -> Result<Self, ProtocolError> {
        let chunk_size = chunk_size.max(1);
        Self::begin_with_chunks(transport, inner_tag, total, total.div_ceil(chunk_size).max(1))
    }

    /// Starts a stream with an explicit chunk count — used when answering
    /// a peer's list chunk-for-chunk, whatever sizes the peer chose.
    pub(crate) fn begin_with_chunks<T: Transport + ?Sized>(
        transport: &mut T,
        inner_tag: u8,
        total: usize,
        chunk_count: usize,
    ) -> Result<Self, ProtocolError> {
        let chunk_count = chunk_count.max(1);
        if chunk_count > 1 {
            if total > u32::MAX as usize || chunk_count > u32::MAX as usize {
                return Err(chunk_malformed("chunked stream exceeds u32 bounds"));
            }
            let mut frame = Vec::with_capacity(CHUNK_HEADER_LEN);
            frame.push(TAG_CHUNKED);
            frame.push(inner_tag);
            frame.extend_from_slice(&(total as u32).to_be_bytes());
            frame.extend_from_slice(&(chunk_count as u32).to_be_bytes());
            transport.send(&frame)?;
        }
        Ok(ChunkedWriter {
            inner_tag,
            items_left: total,
            chunks_left: chunk_count as u32,
        })
    }

    /// Sends the next chunk. The message kind and cumulative item count
    /// must agree with what `begin` announced.
    pub(crate) fn send<T: Transport + ?Sized, S: CommutativeScheme>(
        &mut self,
        transport: &mut T,
        scheme: &S,
        msg: &Message,
    ) -> Result<(), ProtocolError> {
        if msg.tag() != self.inner_tag {
            return Err(chunk_malformed("chunk kind differs from envelope"));
        }
        if self.chunks_left == 0 || msg.item_count() > self.items_left {
            return Err(chunk_malformed("chunk stream overflow"));
        }
        self.items_left -= msg.item_count();
        self.chunks_left -= 1;
        transport.send(&msg.encode(scheme)?)?;
        emit_chunk_sent(msg.item_count() as u64);
        Ok(())
    }

    /// Verifies the stream was fully sent.
    pub(crate) fn finish(self) -> Result<(), ProtocolError> {
        if self.items_left != 0 || self.chunks_left != 0 {
            return Err(chunk_malformed("chunk stream ended early"));
        }
        Ok(())
    }
}

/// Writes a `Codewords` frame body (identical bytes to
/// `Message::Codewords(list.to_vec()).encode(..)`, without the clone).
fn encode_codewords_into<S: CommutativeScheme, B: BufMut>(
    scheme: &S,
    list: &[UBig],
    buf: &mut B,
) -> Result<(), ProtocolError> {
    buf.put_u8(TAG_CODEWORDS);
    buf.put_u32(list.len() as u32);
    for x in list {
        buf.put_slice(&scheme.encode_elem(x)?);
    }
    Ok(())
}

/// Appends the 10-byte chunked-envelope header frame to `batch` when the
/// stream needs one (more than one chunk).
fn push_chunk_header(
    batch: &mut FrameBatch,
    inner_tag: u8,
    total: usize,
    chunk_count: usize,
) -> Result<(), ProtocolError> {
    if chunk_count <= 1 {
        return Ok(());
    }
    if total > u32::MAX as usize || chunk_count > u32::MAX as usize {
        return Err(chunk_malformed("chunked stream exceeds u32 bounds"));
    }
    batch.push(&[
        &[TAG_CHUNKED, inner_tag],
        &(total as u32).to_be_bytes(),
        &(chunk_count as u32).to_be_bytes(),
    ])?;
    Ok(())
}

/// Sends an already-materialized codeword list through the chunked
/// envelope (plain single frame when it fits in one chunk). The whole
/// stream — header plus every chunk frame — is assembled into one
/// [`FrameBatch`] buffer in a single pass and handed to the transport's
/// bulk path; the wire bytes are identical to sending frame by frame.
pub(crate) fn send_codewords_chunked<T: Transport + ?Sized, S: CommutativeScheme>(
    transport: &mut T,
    scheme: &S,
    items: &[UBig],
    chunk_size: usize,
) -> Result<(), ProtocolError> {
    let chunk_size = chunk_size.max(1);
    let chunk_count = items.len().div_ceil(chunk_size).max(1);
    let mut batch = FrameBatch::with_capacity(
        items.len() * scheme.codeword_len() + chunk_count * 9 + CHUNK_HEADER_LEN + 4,
    );
    push_chunk_header(&mut batch, TAG_CODEWORDS, items.len(), chunk_count)?;
    if items.is_empty() {
        encode_codewords_into(scheme, &[], &mut batch.frame_writer())?;
        emit_chunk_sent(0);
    } else {
        for chunk in items.chunks(chunk_size) {
            encode_codewords_into(scheme, chunk, &mut batch.frame_writer())?;
            emit_chunk_sent(chunk.len() as u64);
        }
    }
    transport.send_batch(batch)?;
    Ok(())
}

/// One `pipeline/chunk_sent` trace event. Chunk boundaries are a pure
/// function of item count and chunk size, so the event is deterministic.
fn emit_chunk_sent(items: u64) {
    minshare_trace::emit("pipeline", "chunk_sent", true, move || {
        vec![minshare_trace::count("items", items)]
    });
}

/// One `pipeline/chunk_recv` trace event, mirroring [`emit_chunk_sent`]
/// on the reading side.
fn emit_chunk_recv(items: u64) {
    minshare_trace::emit("pipeline", "chunk_recv", true, move || {
        vec![minshare_trace::count("items", items)]
    });
}

/// Sends a materialized payload-pair table through the chunked envelope,
/// batched like [`send_codewords_chunked`] (equijoin step 5).
pub(crate) fn send_payload_pairs_chunked<T: Transport + ?Sized, S: CommutativeScheme>(
    transport: &mut T,
    scheme: &S,
    items: &[(UBig, Vec<u8>)],
    chunk_size: usize,
) -> Result<(), ProtocolError> {
    let chunk_size = chunk_size.max(1);
    let chunk_count = items.len().div_ceil(chunk_size).max(1);
    let payload_bytes: usize = items.iter().map(|(_, p)| p.len() + 4).sum();
    let mut batch = FrameBatch::with_capacity(
        items.len() * scheme.codeword_len() + payload_bytes + chunk_count * 9 + CHUNK_HEADER_LEN,
    );
    push_chunk_header(&mut batch, TAG_PAYLOAD_PAIRS, items.len(), chunk_count)?;
    let mut push_pairs = |chunk: &[(UBig, Vec<u8>)]| -> Result<(), ProtocolError> {
        let mut w = batch.frame_writer();
        w.put_u8(TAG_PAYLOAD_PAIRS);
        w.put_u32(chunk.len() as u32);
        for (a, payload) in chunk {
            w.put_slice(&scheme.encode_elem(a)?);
            w.put_u32(payload.len() as u32);
            w.put_slice(payload);
        }
        Ok(())
    };
    if items.is_empty() {
        push_pairs(&[])?;
        emit_chunk_sent(0);
    } else {
        for chunk in items.chunks(chunk_size) {
            push_pairs(chunk)?;
            emit_chunk_sent(chunk.len() as u64);
        }
    }
    transport.send_batch(batch)?;
    Ok(())
}

/// Reads one logical message that may arrive either as a single plain
/// frame (serial peer, or a stream that fit in one chunk) or as a chunked
/// envelope. Yields each chunk as it lands so callers overlap computation
/// with the remaining receives.
pub(crate) struct ChunkedReader {
    inner_tag: u8,
    expected_kind: &'static str,
    total: usize,
    chunks_left: u32,
    items_seen: usize,
    first: Option<Message>,
}

impl ChunkedReader {
    /// Receives the first frame and dispatches on plain vs. chunked.
    pub(crate) fn begin<T: Transport + ?Sized, S: CommutativeScheme>(
        transport: &mut T,
        scheme: &S,
        inner_tag: u8,
        expected_kind: &'static str,
    ) -> Result<Self, ProtocolError> {
        let frame = transport.recv()?;
        if frame.first() == Some(&TAG_CHUNKED) {
            if frame.len() != CHUNK_HEADER_LEN {
                return Err(chunk_malformed("bad chunked header length"));
            }
            if frame.get(1) != Some(&inner_tag) {
                return Err(chunk_malformed("chunked envelope of unexpected kind"));
            }
            let word = |at: usize| -> Result<usize, ProtocolError> {
                let bytes = frame
                    .get(at..at + 4)
                    .and_then(|s| <[u8; 4]>::try_from(s).ok())
                    .ok_or_else(|| chunk_malformed("bad chunked header length"))?;
                Ok(u32::from_be_bytes(bytes) as usize)
            };
            let total = word(2)?;
            let chunk_count = word(6)?;
            if chunk_count == 0 || chunk_count > total.max(1) {
                return Err(chunk_malformed("implausible chunk count"));
            }
            Ok(ChunkedReader {
                inner_tag,
                expected_kind,
                total,
                chunks_left: chunk_count as u32,
                items_seen: 0,
                first: None,
            })
        } else {
            let msg = Message::decode(&frame, scheme)?;
            if msg.tag() != inner_tag {
                return Err(ProtocolError::UnexpectedMessage {
                    expected: expected_kind,
                    got: msg.kind(),
                });
            }
            Ok(ChunkedReader {
                inner_tag,
                expected_kind,
                total: msg.item_count(),
                chunks_left: 1,
                items_seen: 0,
                first: Some(msg),
            })
        }
    }

    /// Total item count across the whole stream (trusted only after the
    /// stream finishes: `next` verifies the chunks actually add up).
    pub(crate) fn total_items(&self) -> usize {
        self.total
    }

    /// Returns the next chunk, or `None` once the stream is complete.
    pub(crate) fn next<T: Transport + ?Sized, S: CommutativeScheme>(
        &mut self,
        transport: &mut T,
        scheme: &S,
    ) -> Result<Option<Message>, ProtocolError> {
        if let Some(msg) = self.first.take() {
            self.items_seen = msg.item_count();
            self.chunks_left = 0;
            emit_chunk_recv(msg.item_count() as u64);
            return Ok(Some(msg));
        }
        if self.chunks_left == 0 {
            return Ok(None);
        }
        let msg = Message::decode(&transport.recv()?, scheme)?;
        if msg.tag() != self.inner_tag {
            return Err(ProtocolError::UnexpectedMessage {
                expected: self.expected_kind,
                got: msg.kind(),
            });
        }
        self.items_seen = self.items_seen.saturating_add(msg.item_count());
        self.chunks_left -= 1;
        if self.items_seen > self.total || (self.chunks_left == 0 && self.items_seen != self.total)
        {
            return Err(chunk_malformed("chunk item counts disagree with header"));
        }
        emit_chunk_recv(msg.item_count() as u64);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minshare_crypto::QrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(5);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn elements(g: &QrGroup, n: usize) -> Vec<UBig> {
        let mut rng = StdRng::seed_from_u64(17);
        (0..n).map(|_| g.sample_element(&mut rng)).collect()
    }

    #[test]
    fn codewords_round_trip() {
        let g = group();
        let msg = Message::Codewords(elements(&g, 5));
        let frame = msg.encode(&g).unwrap();
        assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
    }

    #[test]
    fn pairs_round_trip() {
        let g = group();
        let els = elements(&g, 6);
        let msg = Message::CodewordPairs(vec![
            (els[0].clone(), els[1].clone()),
            (els[2].clone(), els[3].clone()),
            (els[4].clone(), els[5].clone()),
        ]);
        let frame = msg.encode(&g).unwrap();
        assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
    }

    #[test]
    fn payload_pairs_round_trip() {
        let g = group();
        let els = elements(&g, 2);
        let msg = Message::PayloadPairs(vec![
            (els[0].clone(), b"payload-a".to_vec()),
            (els[1].clone(), vec![]),
        ]);
        let frame = msg.encode(&g).unwrap();
        assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
    }

    #[test]
    fn empty_lists_round_trip() {
        let g = group();
        for msg in [
            Message::Codewords(vec![]),
            Message::CodewordPairs(vec![]),
            Message::PayloadPairs(vec![]),
        ] {
            let frame = msg.encode(&g).unwrap();
            assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
        }
    }

    #[test]
    fn frame_size_matches_paper_accounting() {
        // A Codewords frame of n elements costs n·⌈k/8⌉ bytes + 5 header.
        let g = group();
        let n = 7;
        let frame = Message::Codewords(elements(&g, n)).encode(&g).unwrap();
        assert_eq!(frame.len(), 5 + n * g.codeword_bytes());
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let g = group();
        let frame = Message::Codewords(elements(&g, 3)).encode(&g).unwrap();
        assert!(Message::decode(&frame[..frame.len() - 1], &g).is_err());
        assert!(Message::decode(&[], &g).is_err());
        assert!(Message::decode(&[9, 0, 0, 0, 0], &g).is_err());
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(Message::decode(&trailing, &g).is_err());
    }

    #[test]
    fn decode_rejects_non_group_elements() {
        let g = group();
        let mut frame = vec![TAG_CODEWORDS, 0, 0, 0, 1];
        frame.extend(vec![0u8; g.codeword_bytes()]); // zero is not a member
        assert!(matches!(
            Message::decode(&frame, &g),
            Err(ProtocolError::Crypto(_))
        ));
    }

    #[test]
    fn chunked_round_trip_over_duplex() {
        let g = group();
        let items = {
            let mut v = elements(&g, 11);
            v.sort();
            v
        };
        for chunk_size in [1usize, 3, 4, 11, 64] {
            let (mut a, mut b) = minshare_net::duplex_pair();
            send_codewords_chunked(&mut a, &g, &items, chunk_size).unwrap();
            let mut reader = ChunkedReader::begin(&mut b, &g, TAG_CODEWORDS, "codewords").unwrap();
            assert_eq!(reader.total_items(), items.len());
            let mut got = Vec::new();
            while let Some(Message::Codewords(chunk)) = reader.next(&mut b, &g).unwrap() {
                assert!(chunk.len() <= chunk_size);
                got.extend(chunk);
            }
            assert_eq!(got, items, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn single_chunk_stream_is_byte_identical_to_plain() {
        // A stream that fits in one chunk must put exactly the serial
        // protocol's bytes on the wire (no envelope header).
        let g = group();
        let items = elements(&g, 4);
        let (mut a, mut b) = minshare_net::duplex_pair();
        send_codewords_chunked(&mut a, &g, &items, 16).unwrap();
        let frame = b.recv().unwrap();
        assert_eq!(
            frame,
            Message::Codewords(items.clone()).encode(&g).unwrap()
        );
    }

    #[test]
    fn chunked_reader_accepts_plain_message() {
        let g = group();
        let items = elements(&g, 3);
        let (mut a, mut b) = minshare_net::duplex_pair();
        a.send(&Message::Codewords(items.clone()).encode(&g).unwrap())
            .unwrap();
        let mut reader = ChunkedReader::begin(&mut b, &g, TAG_CODEWORDS, "codewords").unwrap();
        assert_eq!(reader.total_items(), 3);
        assert_eq!(
            reader.next(&mut b, &g).unwrap(),
            Some(Message::Codewords(items))
        );
        assert_eq!(reader.next(&mut b, &g).unwrap(), None);
    }

    #[test]
    fn chunked_reader_rejects_lying_header() {
        let g = group();
        let items = elements(&g, 2);
        // Header promises 5 items over 2 chunks; only 4 arrive.
        let (mut a, mut b) = minshare_net::duplex_pair();
        let mut header = vec![TAG_CHUNKED, TAG_CODEWORDS];
        header.extend_from_slice(&5u32.to_be_bytes());
        header.extend_from_slice(&2u32.to_be_bytes());
        a.send(&header).unwrap();
        for _ in 0..2 {
            a.send(&Message::Codewords(items.clone()).encode(&g).unwrap())
                .unwrap();
        }
        let mut reader = ChunkedReader::begin(&mut b, &g, TAG_CODEWORDS, "codewords").unwrap();
        assert!(reader.next(&mut b, &g).unwrap().is_some());
        assert!(reader.next(&mut b, &g).is_err());
    }

    #[test]
    fn chunked_reader_rejects_kind_mismatch() {
        let g = group();
        let (mut a, mut b) = minshare_net::duplex_pair();
        a.send(
            &Message::CodewordPairs(vec![])
                .encode(&g)
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            ChunkedReader::begin(&mut b, &g, TAG_CODEWORDS, "codewords"),
            Err(ProtocolError::UnexpectedMessage { .. })
        ));
    }

    #[test]
    fn writer_enforces_announced_counts() {
        let g = group();
        let items = elements(&g, 4);
        let (mut a, _b) = minshare_net::duplex_pair();
        let mut w = ChunkedWriter::begin(&mut a, TAG_CODEWORDS, 4, 2).unwrap();
        w.send(&mut a, &g, &Message::Codewords(items[..2].to_vec()))
            .unwrap();
        // Wrong kind is rejected.
        assert!(w.send(&mut a, &g, &Message::CodewordPairs(vec![])).is_err());
        // Finishing with items outstanding is rejected.
        let w2 = ChunkedWriter::begin(&mut a, TAG_CODEWORDS, 4, 2).unwrap();
        assert!(w2.finish().is_err());
    }

    #[test]
    fn serial_decode_rejects_envelope_header() {
        let g = group();
        let mut header = vec![TAG_CHUNKED, TAG_CODEWORDS];
        header.extend_from_slice(&1u32.to_be_bytes());
        header.extend_from_slice(&1u32.to_be_bytes());
        assert!(Message::decode(&header, &g).is_err());
    }

    #[test]
    fn shard_hello_round_trips_and_rejects_junk() {
        for shards in [1u32, 2, 7, MAX_SHARDS] {
            let frame = encode_shard_hello(shards);
            assert_eq!(decode_shard_hello(&frame).unwrap(), Some(shards));
        }
        // Non-hello frames pass through untouched.
        let g = group();
        let plain = Message::Codewords(elements(&g, 2)).encode(&g).unwrap();
        assert_eq!(decode_shard_hello(&plain).unwrap(), None);
        assert_eq!(decode_shard_hello(&[]).unwrap(), None);
        // Malformed hellos are typed errors, not pass-throughs.
        assert!(decode_shard_hello(&[TAG_SHARDED]).is_err());
        assert!(decode_shard_hello(&[TAG_SHARDED, 9, 0, 0, 0, 1]).is_err());
        assert!(decode_shard_hello(&[TAG_SHARDED, SHARD_WIRE_VERSION, 0, 0, 0, 0]).is_err());
        let mut too_many = encode_shard_hello(MAX_SHARDS + 1);
        too_many[2..6].copy_from_slice(&(MAX_SHARDS + 1).to_be_bytes());
        assert!(decode_shard_hello(&too_many).is_err());
        // A hello is never a valid stand-alone protocol message.
        assert!(Message::decode(&encode_shard_hello(4), &g).is_err());
    }

    #[test]
    fn sortedness_checks() {
        let one = UBig::from(1u64);
        let two = UBig::from(2u64);
        assert!(require_strictly_sorted(&[one.clone(), two.clone()], "t").is_ok());
        assert!(require_strictly_sorted(&[one.clone(), one.clone()], "t").is_err());
        assert!(require_strictly_sorted(&[two.clone(), one.clone()], "t").is_err());
        assert!(require_sorted(&[one.clone(), one.clone(), two.clone()], "t").is_ok());
        assert!(require_sorted(&[two, one], "t").is_err());
        assert!(require_strictly_sorted(&[], "t").is_ok());
    }
}
