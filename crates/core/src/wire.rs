//! Protocol messages and their byte encoding.
//!
//! Group elements go on the wire as fixed-width big-endian codewords of
//! exactly `⌈k/8⌉` bytes (the paper counts communication in `k`-bit
//! codewords, §6.1), so "lexicographic order" of codewords coincides with
//! numeric order of elements. Counts are 32-bit big-endian; payload blobs
//! are length-prefixed.

use bytes::{Buf, BufMut, BytesMut};
use minshare_bignum::UBig;
use minshare_crypto::CommutativeScheme;

use crate::error::ProtocolError;

/// A message exchanged by the protocol engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A list of encrypted codewords. Used for `Y_R`, `Y_S`,
    /// `f_{e_S}(Y_R)` (order-significant) and `Z_R` (sorted).
    Codewords(Vec<UBig>),
    /// Pairs `(f_{e_S}(y), f_{e'_S}(y))` answering `Y_R` in order
    /// (equijoin step 4, with the paper's §6.1 optimization of not
    /// retransmitting `y`).
    CodewordPairs(Vec<(UBig, UBig)>),
    /// Pairs `(f_{e_S}(h(v)), K(κ(v), ext(v)))`, sorted by the first
    /// component (equijoin step 5).
    PayloadPairs(Vec<(UBig, Vec<u8>)>),
}

const TAG_CODEWORDS: u8 = 1;
const TAG_CODEWORD_PAIRS: u8 = 2;
const TAG_PAYLOAD_PAIRS: u8 = 3;

impl Message {
    /// Short name for error reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Codewords(_) => "codewords",
            Message::CodewordPairs(_) => "codeword-pairs",
            Message::PayloadPairs(_) => "payload-pairs",
        }
    }

    /// Serializes for the wire. Elements are encoded at the scheme's
    /// fixed codeword width.
    pub fn encode<S: CommutativeScheme>(&self, scheme: &S) -> Result<Vec<u8>, ProtocolError> {
        let mut buf = BytesMut::new();
        match self {
            Message::Codewords(list) => {
                buf.put_u8(TAG_CODEWORDS);
                buf.put_u32(list.len() as u32);
                for x in list {
                    buf.put_slice(&scheme.encode_elem(x)?);
                }
            }
            Message::CodewordPairs(list) => {
                buf.put_u8(TAG_CODEWORD_PAIRS);
                buf.put_u32(list.len() as u32);
                for (a, b) in list {
                    buf.put_slice(&scheme.encode_elem(a)?);
                    buf.put_slice(&scheme.encode_elem(b)?);
                }
            }
            Message::PayloadPairs(list) => {
                buf.put_u8(TAG_PAYLOAD_PAIRS);
                buf.put_u32(list.len() as u32);
                for (a, payload) in list {
                    buf.put_slice(&scheme.encode_elem(a)?);
                    buf.put_u32(payload.len() as u32);
                    buf.put_slice(payload);
                }
            }
        }
        Ok(buf.to_vec())
    }

    /// Parses a frame, validating every codeword is a domain element.
    pub fn decode<S: CommutativeScheme>(
        frame: &[u8],
        scheme: &S,
    ) -> Result<Message, ProtocolError> {
        let malformed = |detail: &str| ProtocolError::MalformedMessage {
            detail: detail.to_string(),
        };
        let mut buf = frame;
        if buf.remaining() < 5 {
            return Err(malformed("frame shorter than header"));
        }
        let tag = buf.get_u8();
        let count = buf.get_u32() as usize;
        let width = scheme.codeword_len();

        let take_element = |buf: &mut &[u8]| -> Result<UBig, ProtocolError> {
            if buf.remaining() < width {
                return Err(malformed("truncated codeword"));
            }
            let bytes = &buf[..width];
            let x = scheme.decode_elem(bytes)?;
            buf.advance(width);
            Ok(x)
        };

        let msg = match tag {
            TAG_CODEWORDS => {
                let mut list = Vec::with_capacity(count.min(1 << 22));
                for _ in 0..count {
                    list.push(take_element(&mut buf)?);
                }
                Message::Codewords(list)
            }
            TAG_CODEWORD_PAIRS => {
                let mut list = Vec::with_capacity(count.min(1 << 21));
                for _ in 0..count {
                    let a = take_element(&mut buf)?;
                    let b = take_element(&mut buf)?;
                    list.push((a, b));
                }
                Message::CodewordPairs(list)
            }
            TAG_PAYLOAD_PAIRS => {
                let mut list = Vec::with_capacity(count.min(1 << 21));
                for _ in 0..count {
                    let a = take_element(&mut buf)?;
                    if buf.remaining() < 4 {
                        return Err(malformed("truncated payload length"));
                    }
                    let len = buf.get_u32() as usize;
                    if buf.remaining() < len {
                        return Err(malformed("truncated payload"));
                    }
                    let payload = buf[..len].to_vec();
                    buf.advance(len);
                    list.push((a, payload));
                }
                Message::PayloadPairs(list)
            }
            _ => return Err(malformed("unknown message tag")),
        };
        if buf.has_remaining() {
            return Err(malformed("trailing bytes"));
        }
        Ok(msg)
    }
}

/// Checks that a codeword list is strictly increasing (lexicographic order
/// of fixed-width codewords = numeric order; strictness also catches
/// duplicate hashes, the paper's collision check).
pub fn require_strictly_sorted(list: &[UBig], what: &'static str) -> Result<(), ProtocolError> {
    for w in list.windows(2) {
        if w[0] >= w[1] {
            return Err(ProtocolError::NotSorted { what });
        }
    }
    Ok(())
}

/// Checks that a codeword list is non-decreasing (multiset variant, used
/// by the equijoin-size protocol where duplicates are legitimate).
pub fn require_sorted(list: &[UBig], what: &'static str) -> Result<(), ProtocolError> {
    for w in list.windows(2) {
        if w[0] > w[1] {
            return Err(ProtocolError::NotSorted { what });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minshare_crypto::QrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(5);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn elements(g: &QrGroup, n: usize) -> Vec<UBig> {
        let mut rng = StdRng::seed_from_u64(17);
        (0..n).map(|_| g.sample_element(&mut rng)).collect()
    }

    #[test]
    fn codewords_round_trip() {
        let g = group();
        let msg = Message::Codewords(elements(&g, 5));
        let frame = msg.encode(&g).unwrap();
        assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
    }

    #[test]
    fn pairs_round_trip() {
        let g = group();
        let els = elements(&g, 6);
        let msg = Message::CodewordPairs(vec![
            (els[0].clone(), els[1].clone()),
            (els[2].clone(), els[3].clone()),
            (els[4].clone(), els[5].clone()),
        ]);
        let frame = msg.encode(&g).unwrap();
        assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
    }

    #[test]
    fn payload_pairs_round_trip() {
        let g = group();
        let els = elements(&g, 2);
        let msg = Message::PayloadPairs(vec![
            (els[0].clone(), b"payload-a".to_vec()),
            (els[1].clone(), vec![]),
        ]);
        let frame = msg.encode(&g).unwrap();
        assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
    }

    #[test]
    fn empty_lists_round_trip() {
        let g = group();
        for msg in [
            Message::Codewords(vec![]),
            Message::CodewordPairs(vec![]),
            Message::PayloadPairs(vec![]),
        ] {
            let frame = msg.encode(&g).unwrap();
            assert_eq!(Message::decode(&frame, &g).unwrap(), msg);
        }
    }

    #[test]
    fn frame_size_matches_paper_accounting() {
        // A Codewords frame of n elements costs n·⌈k/8⌉ bytes + 5 header.
        let g = group();
        let n = 7;
        let frame = Message::Codewords(elements(&g, n)).encode(&g).unwrap();
        assert_eq!(frame.len(), 5 + n * g.codeword_bytes());
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let g = group();
        let frame = Message::Codewords(elements(&g, 3)).encode(&g).unwrap();
        assert!(Message::decode(&frame[..frame.len() - 1], &g).is_err());
        assert!(Message::decode(&[], &g).is_err());
        assert!(Message::decode(&[9, 0, 0, 0, 0], &g).is_err());
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(Message::decode(&trailing, &g).is_err());
    }

    #[test]
    fn decode_rejects_non_group_elements() {
        let g = group();
        let mut frame = vec![TAG_CODEWORDS, 0, 0, 0, 1];
        frame.extend(vec![0u8; g.codeword_bytes()]); // zero is not a member
        assert!(matches!(
            Message::decode(&frame, &g),
            Err(ProtocolError::Crypto(_))
        ));
    }

    #[test]
    fn sortedness_checks() {
        let one = UBig::from(1u64);
        let two = UBig::from(2u64);
        assert!(require_strictly_sorted(&[one.clone(), two.clone()], "t").is_ok());
        assert!(require_strictly_sorted(&[one.clone(), one.clone()], "t").is_err());
        assert!(require_strictly_sorted(&[two.clone(), one.clone()], "t").is_err());
        assert!(require_sorted(&[one.clone(), one.clone(), two.clone()], "t").is_ok());
        assert!(require_sorted(&[two, one], "t").is_err());
        assert!(require_strictly_sorted(&[], "t").is_ok());
    }
}
