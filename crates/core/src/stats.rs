//! Operation counters.
//!
//! §6.1 of the paper prices the protocols in abstract units — `Ce`
//! (commutative encryption/decryption, i.e. one modular exponentiation),
//! `Ch` (hash), `CK` (payload encryption/decryption). Each protocol engine
//! counts its own operations in these exact units so the bench harness can
//! check the paper's formulas *symbolically* (experiment E4): e.g. a full
//! intersection run must perform exactly `2(|V_S| + |V_R|)` exponentiations
//! across both parties.

use std::ops::{Add, AddAssign};

/// Counts of the paper's abstract cost units performed by one party.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// `Ce` spent encrypting (exponentiations by a forward key).
    pub encryptions: u64,
    /// `Ce` spent decrypting (exponentiations by an inverse key).
    pub decryptions: u64,
    /// `Ch`: hash-to-group evaluations.
    pub hashes: u64,
    /// `CK`: payload encryptions.
    pub payload_encryptions: u64,
    /// `CK`: payload decryptions.
    pub payload_decryptions: u64,
}

impl OpCounters {
    /// Total `Ce` operations (the dominant term in the paper's analysis).
    pub fn total_ce(&self) -> u64 {
        self.encryptions + self.decryptions
    }

    /// Total `CK` operations.
    pub fn total_ck(&self) -> u64 {
        self.payload_encryptions + self.payload_decryptions
    }

    /// The counters as trace fields, in the paper's cost units.
    pub fn trace_fields(&self) -> Vec<minshare_trace::Field> {
        vec![
            minshare_trace::count("encryptions", self.encryptions),
            minshare_trace::count("decryptions", self.decryptions),
            minshare_trace::count("hashes", self.hashes),
            minshare_trace::count("payload_encryptions", self.payload_encryptions),
            minshare_trace::count("payload_decryptions", self.payload_decryptions),
        ]
    }
}

/// Emits one deterministic ops event for a finished party: the party's
/// exact `Ce`/`Ch`/`CK` expenditure in §6.1 units, plus both set sizes.
/// An aggregating sink over both parties therefore reproduces the §6.1
/// totals (e.g. intersection: `Σ encryptions + decryptions = 2(v_s+v_r)`).
pub(crate) fn emit_ops(
    scope: &'static str,
    name: &'static str,
    ops: &OpCounters,
    own_values: usize,
    peer_values: usize,
) {
    let ops = *ops;
    minshare_trace::emit(scope, name, true, move || {
        let mut fields = ops.trace_fields();
        fields.push(minshare_trace::count("own_values", own_values as u64));
        fields.push(minshare_trace::count("peer_values", peer_values as u64));
        fields
    });
}

impl Add for OpCounters {
    type Output = OpCounters;
    fn add(self, rhs: OpCounters) -> OpCounters {
        OpCounters {
            encryptions: self.encryptions + rhs.encryptions,
            decryptions: self.decryptions + rhs.decryptions,
            hashes: self.hashes + rhs.hashes,
            payload_encryptions: self.payload_encryptions + rhs.payload_encryptions,
            payload_decryptions: self.payload_decryptions + rhs.payload_decryptions,
        }
    }
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: OpCounters) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_addition() {
        let a = OpCounters {
            encryptions: 3,
            decryptions: 2,
            hashes: 5,
            payload_encryptions: 1,
            payload_decryptions: 0,
        };
        let b = OpCounters {
            encryptions: 1,
            ..Default::default()
        };
        let sum = a + b;
        assert_eq!(sum.encryptions, 4);
        assert_eq!(sum.total_ce(), 6);
        assert_eq!(sum.total_ck(), 1);
        let mut c = a;
        c += b;
        assert_eq!(c, sum);
    }
}
