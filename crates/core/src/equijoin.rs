//! The equijoin protocol of §4.3.
//!
//! On top of the intersection, the receiver obtains the sender's payload
//! `ext(v)` for every matching value: `S` encrypts `ext(v)` under the key
//! `κ(v) = f_{e'S}(h(v))`, and `R` learns `κ(v)` only for `v ∈ V_R` by
//! the blind-exponentiation exchange (§4.1): `R` sends `f_eR(h(v))`, `S`
//! raises it to `e'_S`, and `R` strips its own layer:
//! `f_eR⁻¹(f_{e'S}(f_eR(h(v)))) = f_{e'S}(h(v))`.
//!
//! Message flow (with the §6.1 wire optimization — `S` answers `Y_R` in
//! order instead of echoing each `y`, so the traffic is
//! `(|V_S| + 3|V_R|)·k + |V_S|·k'` bits):
//!
//! ```text
//!   R                                    S  (keys e_S, e'_S)
//!   Y_R = sort(f_eR(h(V_R)))  ────────▶
//!            ◀──── (f_eS(y), f_e'S(y)) per y ∈ Y_R, in order
//!            ◀──── sort[(f_eS(h(v)), K(f_e'S(h(v)), ext(v))) : v ∈ V_S]
//!   match on f_eS(h(v)), decrypt with κ(v)
//! ```

use std::collections::{BTreeMap, BTreeSet};

use minshare_bignum::UBig;
use minshare_crypto::kcipher::ExtCipher;
use minshare_crypto::QrGroup;
use minshare_net::Transport;
use rand::Rng;

use crate::error::ProtocolError;
use crate::prepare::prepare_set;
use crate::stats::OpCounters;
use crate::wire::{require_strictly_sorted, Message};

/// What the sender learns: `|V_R|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquijoinSenderOutput {
    /// The receiver's set size.
    pub peer_set_size: usize,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// What the receiver learns: the matching values **with** `ext(v)`, plus
/// `|V_S|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquijoinReceiverOutput {
    /// `(v, ext(v))` for every `v ∈ V_S ∩ V_R`, in ascending value order.
    pub matches: Vec<(Vec<u8>, Vec<u8>)>,
    /// `|V_S|`.
    pub peer_set_size: usize,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// Runs the sender (`S`) side. `entries` maps each value of `V_S` to its
/// payload `ext(v)` (already serialized — e.g. by
/// `minshare_privdb::rowcodec::encode_rows`). Duplicate values are
/// rejected implicitly by set preparation keeping the first payload.
pub fn run_sender<T: Transport + ?Sized, C: ExtCipher + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    cipher: &C,
    entries: &[(Vec<u8>, Vec<u8>)],
    rng: &mut R,
) -> Result<EquijoinSenderOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Step 1: hash V_S; pick both keys.
    let values: Vec<Vec<u8>> = entries.iter().map(|(v, _)| v.clone()).collect();
    let payloads: BTreeMap<&Vec<u8>, &Vec<u8>> = entries.iter().map(|(v, p)| (v, p)).collect();
    let prepared = prepare_set(group, &values, &mut ops)?;
    let e_s = group.gen_key(rng);
    let e_s_prime = group.gen_key(rng);

    // Step 3: receive Y_R.
    let yr = super::intersection::expect_codewords(transport, group)?;
    require_strictly_sorted(&yr, "Y_R")?;
    let peer_set_size = yr.len();

    // Step 4: answer each y with (f_eS(y), f_e'S(y)), preserving order.
    let pairs: Vec<(UBig, UBig)> = yr
        .iter()
        .map(|y| {
            ops.encryptions += 2;
            (group.encrypt(&e_s, y), group.encrypt(&e_s_prime, y))
        })
        .collect();
    transport.send(&Message::CodewordPairs(pairs).encode(group)?)?;

    // Step 5: for each v ∈ V_S, pair f_eS(h(v)) with K(κ(v), ext(v)).
    let mut payload_pairs: Vec<(UBig, Vec<u8>)> = prepared
        .entries
        .iter()
        .map(|(v, h)| {
            ops.encryptions += 2;
            let tag = group.encrypt(&e_s, h);
            let kappa = group.encrypt(&e_s_prime, h);
            ops.payload_encryptions += 1;
            let ext = payloads.get(v).copied().cloned().unwrap_or_default();
            let ct = cipher.encrypt(&kappa, &ext)?;
            Ok((tag, ct))
        })
        .collect::<Result<_, ProtocolError>>()?;
    payload_pairs.sort_by(|a, b| a.0.cmp(&b.0));
    transport.send(&Message::PayloadPairs(payload_pairs).encode(group)?)?;

    crate::stats::emit_ops(
        "equijoin",
        "sender_done",
        &ops,
        prepared.entries.len(),
        peer_set_size,
    );
    Ok(EquijoinSenderOutput { peer_set_size, ops })
}

/// Runs the receiver (`R`) side.
pub fn run_receiver<T: Transport + ?Sized, C: ExtCipher + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    cipher: &C,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<EquijoinReceiverOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Steps 1-3: hash, encrypt, sort, send Y_R.
    let prepared = prepare_set(group, values, &mut ops)?;
    let e_r = group.gen_key(rng);
    let mut encrypted: Vec<(UBig, Vec<u8>)> = prepared
        .entries
        .into_iter()
        .map(|(v, h)| {
            ops.encryptions += 1;
            (group.encrypt(&e_r, &h), v)
        })
        .collect();
    encrypted.sort_by(|a, b| a.0.cmp(&b.0));
    let yr: Vec<UBig> = encrypted.iter().map(|(y, _)| y.clone()).collect();
    transport.send(&Message::Codewords(yr).encode(group)?)?;

    // Step 4 response: (f_eS(y), f_e'S(y)) aligned with Y_R.
    let pairs = match Message::decode(&transport.recv()?, group)? {
        Message::CodewordPairs(p) => p,
        other => {
            return Err(ProtocolError::UnexpectedMessage {
                expected: "codeword-pairs",
                got: other.kind(),
            })
        }
    };
    if pairs.len() != encrypted.len() {
        return Err(ProtocolError::LengthMismatch {
            expected: encrypted.len(),
            got: pairs.len(),
        });
    }

    // Step 5 response: the payload table, sorted by its first component.
    let payload_pairs = match Message::decode(&transport.recv()?, group)? {
        Message::PayloadPairs(p) => p,
        other => {
            return Err(ProtocolError::UnexpectedMessage {
                expected: "payload-pairs",
                got: other.kind(),
            })
        }
    };
    let tags: Vec<UBig> = payload_pairs.iter().map(|(t, _)| t.clone()).collect();
    require_strictly_sorted(&tags, "payload table")?;
    let peer_set_size = payload_pairs.len();
    let table: BTreeMap<UBig, Vec<u8>> = payload_pairs.into_iter().collect();

    // Steps 6-7: strip our layer from both entries; match; decrypt.
    let own_set_size = encrypted.len();
    let mut matches = Vec::new();
    let mut seen_tags = BTreeSet::new();
    for ((_, v), (fes_y, fesp_y)) in encrypted.into_iter().zip(pairs) {
        ops.decryptions += 2;
        let tag = group.decrypt(&e_r, &fes_y); //   f_eS(h(v))
        let kappa = group.decrypt(&e_r, &fesp_y); // f_e'S(h(v)) = κ(v)
        if !seen_tags.insert(tag.clone()) {
            // Two of our values mapping to one sender tag would mean a
            // hash collision across the sets.
            return Err(ProtocolError::HashCollision);
        }
        if let Some(ct) = table.get(&tag) {
            ops.payload_decryptions += 1;
            let ext = cipher.decrypt(&kappa, ct)?;
            matches.push((v, ext));
        }
    }
    matches.sort();

    crate::stats::emit_ops(
        "equijoin",
        "receiver_done",
        &ops,
        own_set_size,
        peer_set_size,
    );
    Ok(EquijoinReceiverOutput {
        matches,
        peer_set_size,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_two_party;
    use minshare_crypto::kcipher::{HybridCipher, MulBlockCipher};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn entries(pairs: &[(&str, &str)]) -> Vec<(Vec<u8>, Vec<u8>)> {
        pairs
            .iter()
            .map(|(v, p)| (v.as_bytes().to_vec(), p.as_bytes().to_vec()))
            .collect()
    }

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn run_hybrid(
        vs: &[(&str, &str)],
        vr: &[&str],
    ) -> (EquijoinSenderOutput, EquijoinReceiverOutput) {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 64);
        let vs = entries(vs);
        let vr = to_values(vr);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                run_sender(t, &g, &cipher, &vs, &mut rng)
            },
            |t| {
                let g = group();
                let cipher = HybridCipher::new(g.clone(), 64);
                let mut rng = StdRng::seed_from_u64(600);
                run_receiver(t, &g, &cipher, &vr, &mut rng)
            },
        )
        .unwrap();
        (run.sender, run.receiver)
    }

    #[test]
    fn join_returns_matching_payloads() {
        let (s, r) = run_hybrid(
            &[("a", "ext-a"), ("b", "ext-b"), ("c", "ext-c")],
            &["b", "c", "d"],
        );
        assert_eq!(
            r.matches,
            vec![
                (b"b".to_vec(), b"ext-b".to_vec()),
                (b"c".to_vec(), b"ext-c".to_vec())
            ]
        );
        assert_eq!(r.peer_set_size, 3);
        assert_eq!(s.peer_set_size, 3);
    }

    #[test]
    fn disjoint_join_is_empty() {
        let (_, r) = run_hybrid(&[("a", "x")], &["b"]);
        assert!(r.matches.is_empty());
        assert_eq!(r.peer_set_size, 1);
    }

    #[test]
    fn empty_payloads_survive() {
        let (_, r) = run_hybrid(&[("a", "")], &["a"]);
        assert_eq!(r.matches, vec![(b"a".to_vec(), vec![])]);
    }

    #[test]
    fn mulblock_cipher_works_too() {
        let g = group();
        let cipher = MulBlockCipher::new(g.clone()).unwrap();
        let vs = entries(&[("k1", "pay"), ("k2", "off")]);
        let vr = to_values(&["k2"]);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                run_sender(t, &g, &cipher, &vs, &mut rng)
            },
            |t| {
                let g = group();
                let cipher = MulBlockCipher::new(g.clone()).unwrap();
                let mut rng = StdRng::seed_from_u64(2);
                run_receiver(t, &g, &cipher, &vr, &mut rng)
            },
        )
        .unwrap();
        assert_eq!(
            run.receiver.matches,
            vec![(b"k2".to_vec(), b"off".to_vec())]
        );
    }

    #[test]
    fn op_counts_match_section_6_1() {
        // Join: Ch(|VS|+|VR|) + 2Ce|VS| + 5Ce|VR| + CK(|VS|+|VS∩VR|).
        let (s, r) = run_hybrid(
            &[("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")],
            &["b", "d", "e"],
        );
        let (vs, vr, both) = (4u64, 3u64, 2u64);
        assert_eq!(s.ops.hashes + r.ops.hashes, vs + vr);
        assert_eq!(
            s.ops.total_ce() + r.ops.total_ce(),
            2 * vs + 5 * vr,
            "2Ce|VS| + 5Ce|VR|"
        );
        assert_eq!(s.ops.payload_encryptions, vs);
        assert_eq!(r.ops.payload_decryptions, both);
        assert_eq!(s.ops.total_ck() + r.ops.total_ck(), vs + both);
    }
}
