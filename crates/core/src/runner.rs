//! Two-party orchestration: run both protocol engines against each other
//! over an in-memory byte-counted link, on separate threads.

use minshare_net::{duplex_pair, CountingTransport, TrafficStats, Transport};

use crate::error::ProtocolError;

/// Results of a two-party run, including exact per-side traffic.
#[derive(Debug)]
pub struct TwoPartyRun<SO, RO> {
    /// Sender party's output.
    pub sender: SO,
    /// Receiver party's output.
    pub receiver: RO,
    /// Bytes/frames as seen from the sender's endpoint.
    pub sender_traffic: TrafficStats,
    /// Bytes/frames as seen from the receiver's endpoint.
    pub receiver_traffic: TrafficStats,
}

impl<SO, RO> TwoPartyRun<SO, RO> {
    /// Total protocol traffic in bits (the paper's unit): everything the
    /// sender put on the wire plus everything the receiver put on the
    /// wire.
    pub fn total_bits(&self) -> u64 {
        (self.sender_traffic.bytes_sent() + self.receiver_traffic.bytes_sent()) * 8
    }
}

/// Runs `sender` and `receiver` concurrently over a fresh duplex pair.
///
/// Each closure receives its endpoint (wrapped for byte accounting). A
/// panic in either party is converted into
/// [`ProtocolError::PartyPanicked`]; an error from either party is
/// propagated (sender error wins ties).
pub fn run_two_party<SO, RO>(
    sender: impl FnOnce(&mut dyn Transport) -> Result<SO, ProtocolError> + Send,
    receiver: impl FnOnce(&mut dyn Transport) -> Result<RO, ProtocolError> + Send,
) -> Result<TwoPartyRun<SO, RO>, ProtocolError>
where
    SO: Send,
    RO: Send,
{
    let (s_end, r_end) = duplex_pair();
    let (mut s_transport, sender_traffic) = CountingTransport::new(s_end);
    let (mut r_transport, receiver_traffic) = CountingTransport::new(r_end);

    let (sender_result, receiver_result) = std::thread::scope(|scope| {
        let s_handle = scope.spawn(move || sender(&mut s_transport));
        let r_handle = scope.spawn(move || receiver(&mut r_transport));
        let s = s_handle
            .join()
            .map_err(|_| ProtocolError::PartyPanicked { party: "sender" });
        let r = r_handle
            .join()
            .map_err(|_| ProtocolError::PartyPanicked { party: "receiver" });
        (s, r)
    });

    let sender_output = sender_result??;
    let receiver_output = receiver_result??;
    Ok(TwoPartyRun {
        sender: sender_output,
        receiver: receiver_output,
        sender_traffic,
        receiver_traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_and_traffic_are_collected() {
        let run = run_two_party(
            |t| {
                t.send(b"hello")?;
                let got = t.recv()?;
                Ok(got.len())
            },
            |t| {
                let got = t.recv()?;
                t.send(&[0u8; 3])?;
                Ok(got)
            },
        )
        .unwrap();
        assert_eq!(run.sender, 3);
        assert_eq!(run.receiver, b"hello");
        assert_eq!(run.sender_traffic.bytes_sent(), 5);
        assert_eq!(run.receiver_traffic.bytes_sent(), 3);
        assert_eq!(run.total_bits(), (5 + 3) * 8);
    }

    #[test]
    fn party_error_propagates() {
        let err = run_two_party(
            |_t| -> Result<(), ProtocolError> { Err(ProtocolError::HashCollision) },
            |_t| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err, ProtocolError::HashCollision);
    }

    #[test]
    fn panic_is_contained() {
        let err = run_two_party(
            |_t| -> Result<(), ProtocolError> { panic!("boom") },
            |_t| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err, ProtocolError::PartyPanicked { party: "sender" });
    }

    #[test]
    fn blocked_peer_unblocks_on_close() {
        // If one party exits early (dropping its endpoint), the other's
        // recv must fail rather than hang.
        let err = run_two_party(
            |_t| -> Result<(), ProtocolError> { Ok(()) }, // exits immediately
            |t| -> Result<Vec<u8>, ProtocolError> { Ok(t.recv()?) },
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::Net(_)));
    }
}
