//! Per-session protocol dispatch for the long-running daemon.
//!
//! The mux server in `minshare-net` turns one framed connection into many
//! concurrent sessions; this module gives those sessions protocol
//! semantics. A client opens a session whose OPEN payload is an encoded
//! [`SessionRequest`] naming the protocol it wants; the daemon-side
//! [`Service`] decodes it and runs the matching *sender* engine (the
//! daemon is `S`, the party holding the private database) over the
//! session's transport, while the client runs the *receiver* engine and
//! learns exactly what §3/§4 of the paper allow — nothing else changes
//! hands.
//!
//! Every session runs inside its own [`minshare_crypto::PoolSession`]
//! scope, so the shared [`EncryptPool`] schedules its exponentiations
//! fairly against every other live session, and through a
//! [`CountingTransport`] so the daemon can print per-session byte
//! reconciliation against the §6.1 cost formulas.
//!
//! Key material is derived per session from the service seed and the
//! session id, so concurrent sessions never share an exponent and a
//! session replayed solo (same id, same seed) reproduces its run — the
//! property the multi-session conformance harness pins.

use minshare_crypto::kcipher::HybridCipher;
use minshare_crypto::{EncryptPool, QrGroup};
use minshare_net::{CountingTransport, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::equijoin::EquijoinReceiverOutput;
use crate::equijoin_size::EquijoinSizeReceiverOutput;
use crate::error::ProtocolError;
use crate::intersection::IntersectionReceiverOutput;
use crate::intersection_size::IntersectionSizeReceiverOutput;
use crate::pipeline::{self, PipelineConfig};
use crate::shard::{self, ShardConfig};
use crate::stats::OpCounters;

/// Leading bytes of every session request, so a daemon never mistakes a
/// stray protocol frame for a request.
const REQUEST_MAGIC: [u8; 2] = *b"MS";

/// Session-request codec version.
const REQUEST_VERSION: u8 = 1;

/// The protocol a client asks a daemon session to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// §3.2 intersection: the client learns `V_S ∩ V_R`.
    Intersection,
    /// §4.3 equijoin: the client additionally learns `ext(v)` for
    /// matching values.
    Equijoin,
    /// §3.2 intersection-size: the client learns `|V_S ∩ V_R|` only.
    IntersectionSize,
    /// §4 equijoin-size: the client learns `|T_S ⋈ T_R|` and the §5.2
    /// duplicate-class matrix, not the matching values.
    EquijoinSize,
}

impl ProtocolKind {
    /// Stable wire code.
    fn code(self) -> u8 {
        match self {
            ProtocolKind::Intersection => 1,
            ProtocolKind::Equijoin => 2,
            ProtocolKind::IntersectionSize => 3,
            ProtocolKind::EquijoinSize => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(ProtocolKind::Intersection),
            2 => Some(ProtocolKind::Equijoin),
            3 => Some(ProtocolKind::IntersectionSize),
            4 => Some(ProtocolKind::EquijoinSize),
            _ => None,
        }
    }

    /// Human-readable name (also the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Intersection => "intersection",
            ProtocolKind::Equijoin => "equijoin",
            ProtocolKind::IntersectionSize => "intersection-size",
            ProtocolKind::EquijoinSize => "equijoin-size",
        }
    }

    /// Parses the CLI spelling produced by [`ProtocolKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "intersection" => Some(ProtocolKind::Intersection),
            "equijoin" => Some(ProtocolKind::Equijoin),
            "intersection-size" => Some(ProtocolKind::IntersectionSize),
            "equijoin-size" => Some(ProtocolKind::EquijoinSize),
            _ => None,
        }
    }

    /// True for the multiset (`-size` over multisets) variant whose
    /// disclosure is occurrence counts rather than distinct values.
    pub fn discloses_multiset(self) -> bool {
        matches!(self, ProtocolKind::EquijoinSize)
    }
}

/// The OPEN payload of a daemon session: which protocol to run.
///
/// Wire format: `b"MS" ‖ version ‖ protocol-code` — four bytes, strictly
/// validated so a malformed or truncated request is a typed
/// [`ProtocolError::MalformedMessage`], never a misdispatched session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionRequest {
    /// The protocol the client wants this session to run.
    pub protocol: ProtocolKind,
}

impl SessionRequest {
    /// A request for `protocol`.
    pub fn new(protocol: ProtocolKind) -> Self {
        SessionRequest { protocol }
    }

    /// Encodes the request as an OPEN payload.
    pub fn encode(&self) -> Vec<u8> {
        let [m0, m1] = REQUEST_MAGIC;
        vec![m0, m1, REQUEST_VERSION, self.protocol.code()]
    }

    /// Decodes an OPEN payload; every malformation is typed.
    pub fn decode(raw: &[u8]) -> Result<Self, ProtocolError> {
        let [m0, m1, version, code] = raw else {
            return Err(ProtocolError::MalformedMessage {
                detail: format!("session request must be 4 bytes, got {}", raw.len()),
            });
        };
        if [*m0, *m1] != REQUEST_MAGIC {
            return Err(ProtocolError::MalformedMessage {
                detail: "session request magic mismatch".to_string(),
            });
        }
        if *version != REQUEST_VERSION {
            return Err(ProtocolError::MalformedMessage {
                detail: format!("unsupported session request version {version}"),
            });
        }
        let Some(protocol) = ProtocolKind::from_code(*code) else {
            return Err(ProtocolError::MalformedMessage {
                detail: format!("unknown protocol code {code}"),
            });
        };
        Ok(SessionRequest { protocol })
    }
}

/// What one completed daemon session did — the per-session
/// reconciliation record the daemon prints and the harness asserts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionReport {
    /// Mux session id.
    pub session: u32,
    /// The protocol that ran.
    pub protocol: ProtocolKind,
    /// `|V_R|` as learned by the sender side.
    pub peer_set_size: usize,
    /// Payload bytes this session sent.
    pub bytes_sent: u64,
    /// Payload bytes this session received.
    pub bytes_received: u64,
    /// §6.1 cost-unit counts for the daemon side.
    pub ops: OpCounters,
}

/// The daemon's protocol brain: one private database (`V_S` with
/// optional `ext` payloads), one shared [`EncryptPool`], dispatched to by
/// session id. `handle` takes `&self` and is safe to call from many
/// session handler threads at once.
pub struct Service {
    group: QrGroup,
    /// `(v, ext(v))` — the value set serves intersections, the pairs
    /// serve equijoins.
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Values only, precomputed for the intersection path.
    values: Vec<Vec<u8>>,
    pool: EncryptPool,
    config: PipelineConfig,
    /// Equijoin `ext` record length for the hybrid payload cipher.
    record_len: usize,
    /// Base seed; per-session key material derives from this and the
    /// session id.
    seed: u64,
    /// Spill/memory knobs for sessions whose client elects sharding;
    /// `shards` here is ignored (the client's hello chooses `B`).
    shard_cfg: ShardConfig,
    /// `|distinct(V_S)|` — the size every non-multiset session disclosed
    /// to its peer (leakage model: `leakage::bucket_size_disclosure`
    /// sums to exactly this whatever the bucket count).
    disclosed_distinct: u64,
    /// `|V_S|` with duplicates — the multiset size an equijoin-size
    /// session disclosed (`leakage::bucket_multiset_disclosure` total).
    disclosed_multiset: u64,
}

impl Service {
    /// Builds a service over `entries` (`(value, ext-payload)` pairs; use
    /// empty payloads when only intersections will run). The pool is
    /// owned by the service and shared — fairly — by every session.
    pub fn new(
        group: QrGroup,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        pool: EncryptPool,
        config: PipelineConfig,
        record_len: usize,
        seed: u64,
    ) -> Self {
        let values: Vec<Vec<u8>> = entries.iter().map(|(v, _)| v.clone()).collect();
        // Disclosure totals straight from the §5.2 leakage model; a
        // single bucket makes the per-bucket sums the plain totals.
        let disclosed_distinct = crate::leakage::bucket_size_disclosure(&values, 1, &|_| 0)
            .iter()
            .sum();
        let disclosed_multiset = crate::leakage::bucket_multiset_disclosure(&values, 1, &|_| 0)
            .iter()
            .sum();
        Service {
            group,
            entries,
            values,
            pool,
            config,
            record_len,
            seed,
            shard_cfg: ShardConfig::default(),
            disclosed_distinct,
            disclosed_multiset,
        }
    }

    /// What one session of `protocol` disclosed about `V_S`: the
    /// distinct-set size, or the multiset size for the multiset variant.
    /// This is the per-session increment of the daemon's cumulative
    /// per-peer disclosure counters.
    pub fn session_disclosure(&self, protocol: ProtocolKind) -> u64 {
        if protocol.discloses_multiset() {
            self.disclosed_multiset
        } else {
            self.disclosed_distinct
        }
    }

    /// Sets the spill/memory knobs used when a client's session opens
    /// with a shard hello (the client still chooses the bucket count).
    pub fn with_shard_config(mut self, cfg: ShardConfig) -> Self {
        self.shard_cfg = cfg;
        self
    }

    /// The service's group (clients must use the same one).
    pub fn group(&self) -> &QrGroup {
        &self.group
    }

    /// The shared encryption pool (e.g. for stats).
    pub fn pool(&self) -> &EncryptPool {
        &self.pool
    }

    /// Deterministic per-session RNG seed: a SplitMix-style mix of the
    /// service seed and the session id, so concurrent sessions use
    /// independent keys and a replayed session reproduces its run.
    fn session_seed(&self, session: u32) -> u64 {
        self.seed ^ u64::from(session).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs one daemon session to completion: decode the request, then
    /// drive the matching sender engine over `transport` inside this
    /// session's fair-scheduling pool scope. Errors are per-session — the
    /// caller (the mux server handler) reports them without touching any
    /// other session.
    ///
    /// Sharding is client-elected: the sender engines peek the session's
    /// first protocol frame and adopt the client's bucket count when it
    /// is a shard hello, falling back byte-identically to the pipelined
    /// engines otherwise — one service serves both kinds of client.
    pub fn handle<T: Transport>(
        &self,
        session: u32,
        request: &[u8],
        transport: T,
    ) -> Result<SessionReport, ProtocolError> {
        self.handle_for_peer(0, session, request, transport)
    }

    /// [`Service::handle`] with a peer identity for the live-telemetry
    /// layer: the daemon assigns one `peer` id per accepted connection,
    /// and the cumulative per-peer size-disclosure counters in the
    /// metrics registry aggregate under that label. Telemetry-only — the
    /// protocol run is identical, and every event carrying the peer id
    /// is non-deterministic so solo-replay digests are unaffected.
    pub fn handle_for_peer<T: Transport>(
        &self,
        peer: u64,
        session: u32,
        request: &[u8],
        transport: T,
    ) -> Result<SessionReport, ProtocolError> {
        let request = SessionRequest::decode(request)?;
        let (mut counted, traffic) = CountingTransport::new(transport);
        let mut rng = StdRng::seed_from_u64(self.session_seed(session));
        let pool_session = self.pool.session(1);
        let started = std::time::Instant::now();
        let (peer_set_size, ops) = pool_session.scope(|| match request.protocol {
            ProtocolKind::Intersection => shard::run_intersection_sender(
                &mut counted,
                &self.group,
                &self.values,
                &mut rng,
                &self.pool,
                self.config,
                &self.shard_cfg,
            )
            .map(|out| (out.peer_set_size, out.ops)),
            ProtocolKind::Equijoin => {
                let cipher = HybridCipher::new(self.group.clone(), self.record_len);
                shard::run_equijoin_sender(
                    &mut counted,
                    &self.group,
                    &cipher,
                    &self.entries,
                    &mut rng,
                    &self.pool,
                    self.config,
                    &self.shard_cfg,
                )
                .map(|out| (out.peer_set_size, out.ops))
            }
            ProtocolKind::IntersectionSize => shard::run_intersection_size_sender(
                &mut counted,
                &self.group,
                &self.values,
                &mut rng,
                &self.pool,
                self.config,
                &self.shard_cfg,
            )
            .map(|out| (out.peer_set_size, out.ops)),
            ProtocolKind::EquijoinSize => shard::run_equijoin_size_sender(
                &mut counted,
                &self.group,
                &self.values,
                &mut rng,
                &self.pool,
                self.config,
                &self.shard_cfg,
            )
            .map(|out| (out.peer_multiset_size, out.ops)),
        })?;
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let report = SessionReport {
            session,
            protocol: request.protocol,
            peer_set_size,
            bytes_sent: traffic.bytes_sent(),
            bytes_received: traffic.bytes_received(),
            ops,
        };
        // Deterministic per-session completion event: everything in it is
        // a pure function of the protocol inputs (no session id — the
        // harness compares a session's digest against a solo replay that
        // may be numbered differently).
        minshare_trace::emit("service", "session_done", true, || {
            vec![
                minshare_trace::count("peer_set_size", report.peer_set_size as u64),
                minshare_trace::size("bytes_sent", report.bytes_sent),
                minshare_trace::size("bytes_received", report.bytes_received),
                minshare_trace::count("encryptions", report.ops.encryptions),
            ]
        });
        // Per-protocol wall-time and Ce-throughput: the event *name* is
        // the protocol, so the registry keeps one histogram per
        // protocol. Timing-dependent, hence non-deterministic.
        minshare_trace::emit("protocol", request.protocol.name(), false, || {
            let ce_per_sec = if elapsed_ns == 0 {
                0
            } else {
                report.ops.encryptions.saturating_mul(1_000_000_000) / elapsed_ns
            };
            vec![
                minshare_trace::count("session", u64::from(session)),
                minshare_trace::duration_ns("duration_ns", elapsed_ns),
                minshare_trace::count("ce_per_sec", ce_per_sec),
            ]
        });
        // Cumulative per-peer size disclosure, straight from the §5.2
        // leakage model: what this session told the peer about `V_S`
        // (distinct-set or multiset size) and what the daemon learned
        // about the peer's set in return.
        minshare_trace::emit("leakage", "size_disclosure", false, || {
            vec![
                minshare_trace::count("peer", peer),
                minshare_trace::size("revealed", self.session_disclosure(report.protocol)),
                minshare_trace::size("learned", report.peer_set_size as u64),
            ]
        });
        Ok(report)
    }
}

/// Client side of a daemon intersection session. `transport` is the
/// already-open session (the OPEN payload must have been
/// `SessionRequest::new(ProtocolKind::Intersection).encode()`); returns
/// the receiver output plus the session's byte counts for
/// reconciliation against the daemon's [`SessionReport`].
pub fn run_client_intersection<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
) -> Result<(IntersectionReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let out = pipeline::run_intersection_receiver(&mut counted, group, values, rng, pool, config)?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// Client side of a daemon equijoin session; see
/// [`run_client_intersection`]. `record_len` must match the daemon's.
pub fn run_client_equijoin<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
    record_len: usize,
) -> Result<(EquijoinReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let cipher = HybridCipher::new(group.clone(), record_len);
    let out =
        pipeline::run_equijoin_receiver(&mut counted, group, &cipher, values, rng, pool, config)?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// Sharded client side of a daemon intersection session: announces
/// `cfg.shards` buckets and runs the bounded-memory receiver engine
/// (`cfg.shards <= 1` degenerates byte-identically to
/// [`run_client_intersection`]). The daemon adopts the bucket count
/// automatically.
pub fn run_client_intersection_sharded<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<(IntersectionReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let out =
        shard::run_intersection_receiver(&mut counted, group, values, rng, pool, config, cfg)?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// Sharded client side of a daemon equijoin session; see
/// [`run_client_intersection_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn run_client_equijoin_sharded<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
    record_len: usize,
    cfg: &ShardConfig,
) -> Result<(EquijoinReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let cipher = HybridCipher::new(group.clone(), record_len);
    let out = shard::run_equijoin_receiver(
        &mut counted,
        group,
        &cipher,
        values,
        rng,
        pool,
        config,
        cfg,
    )?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// Client side of a daemon intersection-size session: learns
/// `|V_S ∩ V_R|` and `|V_S|`, never which values matched.
pub fn run_client_intersection_size<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<(IntersectionSizeReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let out = crate::intersection_size::run_receiver(&mut counted, group, values, rng)?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// Sharded client side of a daemon intersection-size session: announces
/// `cfg.shards` buckets and runs the bounded-memory engine
/// (`cfg.shards <= 1` degenerates to the serial receiver). The daemon
/// adopts the bucket count automatically.
pub fn run_client_intersection_size_sharded<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<(IntersectionSizeReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let out =
        shard::run_intersection_size_receiver(&mut counted, group, values, rng, pool, config, cfg)?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// Client side of a daemon equijoin-size session: learns the join size
/// and the §5.2 duplicate-class matrix.
pub fn run_client_equijoin_size<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<(EquijoinSizeReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let out = crate::equijoin_size::run_receiver(&mut counted, group, values, rng)?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// Sharded client side of a daemon equijoin-size session; see
/// [`run_client_intersection_size_sharded`].
pub fn run_client_equijoin_size_sharded<T: Transport, R: Rng + ?Sized>(
    transport: T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<(EquijoinSizeReceiverOutput, ClientTraffic), ProtocolError> {
    let (mut counted, traffic) = CountingTransport::new(transport);
    let out =
        shard::run_equijoin_size_receiver(&mut counted, group, values, rng, pool, config, cfg)?;
    Ok((out, ClientTraffic::from(&traffic)))
}

/// A client session's byte counts, mirror image of the daemon's
/// [`SessionReport`] traffic fields: the client's `sent` must equal the
/// daemon's `received` and vice versa.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientTraffic {
    /// Payload bytes the client sent.
    pub bytes_sent: u64,
    /// Payload bytes the client received.
    pub bytes_received: u64,
}

impl From<&minshare_net::TrafficStats> for ClientTraffic {
    fn from(stats: &minshare_net::TrafficStats) -> Self {
        ClientTraffic {
            bytes_sent: stats.bytes_sent(),
            bytes_received: stats.bytes_received(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minshare_net::duplex_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(0x5e55);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn to_values(names: &[&str]) -> Vec<Vec<u8>> {
        names.iter().map(|n| n.as_bytes().to_vec()).collect()
    }

    #[test]
    fn request_codec_round_trips_and_rejects_junk() {
        for protocol in [
            ProtocolKind::Intersection,
            ProtocolKind::Equijoin,
            ProtocolKind::IntersectionSize,
            ProtocolKind::EquijoinSize,
        ] {
            let wire = SessionRequest::new(protocol).encode();
            assert_eq!(SessionRequest::decode(&wire).unwrap().protocol, protocol);
            assert_eq!(ProtocolKind::parse(protocol.name()), Some(protocol));
        }
        for bad in [
            &b""[..],
            &b"MS"[..],
            &b"XX\x01\x01"[..],
            &b"MS\x02\x01"[..],
            &b"MS\x01\x09"[..],
            &b"MS\x01\x01\x00"[..],
        ] {
            assert!(matches!(
                SessionRequest::decode(bad),
                Err(ProtocolError::MalformedMessage { .. })
            ));
        }
    }

    #[test]
    fn service_runs_an_intersection_session() {
        let g = group();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = to_values(&["apple", "grape", "melon"])
            .into_iter()
            .map(|v| (v, Vec::new()))
            .collect();
        let service = Service::new(
            g.clone(),
            entries,
            EncryptPool::new(2),
            PipelineConfig::default(),
            16,
            7,
        );
        let (server_t, client_t) = duplex_pair();
        let request = SessionRequest::new(ProtocolKind::Intersection).encode();
        let client_pool = EncryptPool::new(2);
        let client = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(99);
            run_client_intersection(
                client_t,
                &group(),
                &to_values(&["grape", "melon", "pear"]),
                &mut rng,
                &client_pool,
                PipelineConfig::default(),
            )
            .unwrap()
        });
        let report = service.handle(1, &request, server_t).unwrap();
        let (out, traffic) = client.join().unwrap();
        assert_eq!(out.intersection, to_values(&["grape", "melon"]));
        assert_eq!(report.protocol, ProtocolKind::Intersection);
        assert_eq!(report.peer_set_size, 3);
        // Byte reconciliation: each side's sent is the other's received.
        assert_eq!(report.bytes_sent, traffic.bytes_received);
        assert_eq!(report.bytes_received, traffic.bytes_sent);
        assert!(report.bytes_sent > 0 && report.bytes_received > 0);
    }

    #[test]
    fn service_runs_an_equijoin_session() {
        let g = group();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"apple".to_vec(), b"fruit:1".to_vec()),
            (b"grape".to_vec(), b"fruit:2".to_vec()),
        ];
        let service = Service::new(
            g.clone(),
            entries,
            EncryptPool::new(2),
            PipelineConfig::default(),
            64,
            7,
        );
        let (server_t, client_t) = duplex_pair();
        let request = SessionRequest::new(ProtocolKind::Equijoin).encode();
        let client_pool = EncryptPool::new(2);
        let client = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(3);
            run_client_equijoin(
                client_t,
                &group(),
                &to_values(&["grape", "kiwi"]),
                &mut rng,
                &client_pool,
                PipelineConfig::default(),
                64,
            )
            .unwrap()
        });
        let report = service.handle(2, &request, server_t).unwrap();
        let (out, traffic) = client.join().unwrap();
        assert_eq!(out.matches, vec![(b"grape".to_vec(), b"fruit:2".to_vec())]);
        assert_eq!(report.protocol, ProtocolKind::Equijoin);
        assert_eq!(report.bytes_sent, traffic.bytes_received);
        assert_eq!(report.bytes_received, traffic.bytes_sent);
    }

    #[test]
    fn service_auto_adopts_a_sharded_client() {
        let g = group();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = to_values(&["apple", "grape", "melon", "pear"])
            .into_iter()
            .map(|v| (v, Vec::new()))
            .collect();
        let service = Service::new(
            g.clone(),
            entries,
            EncryptPool::new(2),
            PipelineConfig::default(),
            16,
            7,
        )
        .with_shard_config(ShardConfig {
            mem_budget: 64, // force the spill path on the daemon side too
            ..ShardConfig::default()
        });
        let (server_t, client_t) = duplex_pair();
        let request = SessionRequest::new(ProtocolKind::Intersection).encode();
        let client_pool = EncryptPool::new(2);
        let client = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(99);
            run_client_intersection_sharded(
                client_t,
                &group(),
                &to_values(&["grape", "melon", "kiwi"]),
                &mut rng,
                &client_pool,
                PipelineConfig::default(),
                &ShardConfig::with_shards(4),
            )
            .unwrap()
        });
        let report = service.handle(1, &request, server_t).unwrap();
        let (out, traffic) = client.join().unwrap();
        assert_eq!(out.intersection, to_values(&["grape", "melon"]));
        assert_eq!(report.peer_set_size, 3);
        assert_eq!(report.bytes_sent, traffic.bytes_received);
        assert_eq!(report.bytes_received, traffic.bytes_sent);
    }

    #[test]
    fn service_runs_an_intersection_size_session_sharded() {
        let g = group();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = to_values(&["apple", "grape", "melon", "pear"])
            .into_iter()
            .map(|v| (v, Vec::new()))
            .collect();
        let service = Service::new(
            g.clone(),
            entries,
            EncryptPool::new(2),
            PipelineConfig::default(),
            16,
            7,
        );
        let (server_t, client_t) = duplex_pair();
        let request = SessionRequest::new(ProtocolKind::IntersectionSize).encode();
        let client_pool = EncryptPool::new(2);
        let client = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(41);
            run_client_intersection_size_sharded(
                client_t,
                &group(),
                &to_values(&["grape", "melon", "kiwi"]),
                &mut rng,
                &client_pool,
                PipelineConfig::default(),
                &ShardConfig::with_shards(4),
            )
            .unwrap()
        });
        let report = service.handle(3, &request, server_t).unwrap();
        let (out, traffic) = client.join().unwrap();
        // The client learns only the sizes, never which values matched.
        assert_eq!(out.intersection_size, 2);
        assert_eq!(out.peer_set_size, 4);
        assert_eq!(report.protocol, ProtocolKind::IntersectionSize);
        assert_eq!(report.peer_set_size, 3);
        assert_eq!(report.bytes_sent, traffic.bytes_received);
        assert_eq!(report.bytes_received, traffic.bytes_sent);
    }

    #[test]
    fn service_runs_an_equijoin_size_session() {
        let g = group();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = to_values(&["apple", "grape", "grape"])
            .into_iter()
            .map(|v| (v, Vec::new()))
            .collect();
        let service = Service::new(
            g.clone(),
            entries,
            EncryptPool::new(2),
            PipelineConfig::default(),
            16,
            7,
        );
        assert_eq!(service.session_disclosure(ProtocolKind::Intersection), 2);
        assert_eq!(service.session_disclosure(ProtocolKind::EquijoinSize), 3);
        let (server_t, client_t) = duplex_pair();
        let request = SessionRequest::new(ProtocolKind::EquijoinSize).encode();
        let client = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(5);
            run_client_equijoin_size(client_t, &group(), &to_values(&["grape", "kiwi"]), &mut rng)
                .unwrap()
        });
        let report = service.handle(4, &request, server_t).unwrap();
        let (out, traffic) = client.join().unwrap();
        assert_eq!(out.join_size, 2); // "grape" matches twice on S's side
        assert_eq!(out.peer_multiset_size, 3);
        assert_eq!(report.protocol, ProtocolKind::EquijoinSize);
        assert_eq!(report.peer_set_size, 2);
        assert_eq!(report.bytes_sent, traffic.bytes_received);
        assert_eq!(report.bytes_received, traffic.bytes_sent);
    }

    #[test]
    fn malformed_request_is_a_typed_session_error() {
        let g = group();
        let service = Service::new(
            g,
            vec![(b"x".to_vec(), Vec::new())],
            EncryptPool::new(0),
            PipelineConfig::default(),
            16,
            1,
        );
        let (server_t, _client_t) = duplex_pair();
        assert!(matches!(
            service.handle(1, b"garbage!", server_t),
            Err(ProtocolError::MalformedMessage { .. })
        ));
    }

    #[test]
    fn session_seeds_differ_per_session_and_replay_stably() {
        let g = group();
        let service = Service::new(
            g,
            vec![(b"x".to_vec(), Vec::new())],
            EncryptPool::new(0),
            PipelineConfig::default(),
            16,
            0xfeed,
        );
        assert_ne!(service.session_seed(1), service.session_seed(2));
        assert_eq!(service.session_seed(7), service.session_seed(7));
    }
}
