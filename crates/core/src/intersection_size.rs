//! The intersection-size protocol of §5.1.
//!
//! Identical to the intersection protocol except step 4(b): `S` returns
//! the re-encryptions `Z_R = f_eS(Y_R)` **lexicographically reordered**,
//! destroying the pairing between elements of `Y_R` and their
//! re-encryptions. `R` can then count `|Z_S ∩ Z_R| = |V_S ∩ V_R|` but
//! cannot tell *which* of its values matched (Statements 5–6).

use std::collections::BTreeSet;

use minshare_bignum::UBig;
use minshare_crypto::CommutativeScheme;
use minshare_net::Transport;
use rand::Rng;

use crate::error::ProtocolError;
use crate::intersection::expect_codewords;
use crate::prepare::prepare_set;
use crate::stats::OpCounters;
use crate::wire::{require_strictly_sorted, Message};

/// What the sender learns: `|V_R|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionSizeSenderOutput {
    /// The receiver's set size.
    pub peer_set_size: usize,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// What the receiver learns: `|V_S ∩ V_R|` and `|V_S|` — but not which
/// values matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionSizeReceiverOutput {
    /// `|V_S ∩ V_R|`.
    pub intersection_size: usize,
    /// `|V_S|`.
    pub peer_set_size: usize,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// Runs the sender (`S`) side.
pub fn run_sender<T: Transport + ?Sized, S: CommutativeScheme, R: Rng + ?Sized>(
    transport: &mut T,
    scheme: &S,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<IntersectionSizeSenderOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    let prepared = prepare_set(scheme, values, &mut ops)?;
    let key = scheme.key_gen(rng);
    let mut ys: Vec<UBig> = prepared
        .entries
        .iter()
        .map(|(_, h)| {
            ops.encryptions += 1;
            scheme.apply(&key, h)
        })
        .collect();
    ys.sort();

    // Step 3: receive Y_R.
    let yr = expect_codewords(transport, scheme)?;
    require_strictly_sorted(&yr, "Y_R")?;
    let peer_set_size = yr.len();

    // Step 4(a): ship Y_S.
    transport.send(&Message::Codewords(ys).encode(scheme)?)?;

    // Step 4(b): re-encrypt Y_R and *reorder lexicographically* — this is
    // the one deliberate difference from the intersection protocol.
    let mut zr: Vec<UBig> = yr
        .iter()
        .map(|y| {
            ops.encryptions += 1;
            scheme.apply(&key, y)
        })
        .collect();
    zr.sort();
    transport.send(&Message::Codewords(zr).encode(scheme)?)?;

    crate::stats::emit_ops(
        "intersection_size",
        "sender_done",
        &ops,
        prepared.entries.len(),
        peer_set_size,
    );
    Ok(IntersectionSizeSenderOutput { peer_set_size, ops })
}

/// Runs the receiver (`R`) side.
pub fn run_receiver<T: Transport + ?Sized, S: CommutativeScheme, R: Rng + ?Sized>(
    transport: &mut T,
    scheme: &S,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<IntersectionSizeReceiverOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    let prepared = prepare_set(scheme, values, &mut ops)?;
    let key = scheme.key_gen(rng);
    let mut yr: Vec<UBig> = prepared
        .entries
        .iter()
        .map(|(_, h)| {
            ops.encryptions += 1;
            scheme.apply(&key, h)
        })
        .collect();
    yr.sort();
    let yr_len = yr.len();
    transport.send(&Message::Codewords(yr).encode(scheme)?)?;

    // Step 4(a): Y_S.
    let ys = expect_codewords(transport, scheme)?;
    require_strictly_sorted(&ys, "Y_S")?;
    let peer_set_size = ys.len();

    // Step 4(b): Z_R, sorted.
    let zr = expect_codewords(transport, scheme)?;
    require_strictly_sorted(&zr, "Z_R")?;
    if zr.len() != yr_len {
        return Err(ProtocolError::LengthMismatch {
            expected: yr_len,
            got: zr.len(),
        });
    }

    // Step 5: Z_S = f_eR(Y_S).
    let zs: BTreeSet<UBig> = ys
        .iter()
        .map(|y| {
            ops.encryptions += 1;
            scheme.apply(&key, y)
        })
        .collect();

    // Step 6: |Z_S ∩ Z_R|.
    let intersection_size = zr.iter().filter(|z| zs.contains(z)).count();

    crate::stats::emit_ops(
        "intersection_size",
        "receiver_done",
        &ops,
        yr_len,
        peer_set_size,
    );
    Ok(IntersectionSizeReceiverOutput {
        intersection_size,
        peer_set_size,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_two_party;
    use minshare_crypto::QrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn run(
        vs: &[&str],
        vr: &[&str],
    ) -> (IntersectionSizeSenderOutput, IntersectionSizeReceiverOutput) {
        let g = group();
        let vs = to_values(vs);
        let vr = to_values(vr);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(300);
                run_sender(t, &group(), &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(400);
                run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        (run.sender, run.receiver)
    }

    #[test]
    fn counts_without_revealing_members() {
        let (s, r) = run(&["a", "b", "c"], &["b", "c", "d", "e"]);
        assert_eq!(r.intersection_size, 2);
        assert_eq!(r.peer_set_size, 3);
        assert_eq!(s.peer_set_size, 4);
    }

    #[test]
    fn extremes() {
        let (_, r) = run(&["a", "b"], &["c"]);
        assert_eq!(r.intersection_size, 0);
        let (_, r) = run(&["a", "b"], &["a", "b"]);
        assert_eq!(r.intersection_size, 2);
        let (_, r) = run(&[], &["a"]);
        assert_eq!(r.intersection_size, 0);
    }

    #[test]
    fn cost_matches_intersection_protocol() {
        // §6.1: the size protocol has the same computation cost as the
        // intersection protocol.
        let (s, r) = run(&["a", "b", "c"], &["b", "c"]);
        let (vs, vr) = (3u64, 2u64);
        assert_eq!(s.ops.total_ce() + r.ops.total_ce(), 2 * (vs + vr));
        assert_eq!(s.ops.hashes + r.ops.hashes, vs + vr);
    }
}
