//! Sharded, bounded-memory protocol engines.
//!
//! §6.2 of the paper observes that the `Ce` work is embarrassingly
//! parallel; this module adds the data-layout half of that observation.
//! Both parties bucket their values on a prefix of `h(v)`'s fixed-width
//! codeword into `B` shards (the assignment is a pure function of the
//! public scheme, so it is common knowledge), then run `B` independent
//! per-bucket instances of the chosen protocol back to back over one
//! transport. Each bucket's lists travel under the existing chunked
//! envelope; encryption batches go to the shared
//! [`minshare_crypto::EncryptPool`] inside whatever fair-queuing session
//! scope the caller established, so one giant sharded join cannot starve
//! concurrent daemon sessions.
//!
//! **Memory stays O(bucket)**: every "collect all codewords, then sort"
//! step of the unsharded engines becomes a push into the spill-to-disk
//! [`crate::spill::ExtSorter`], keyed by `bucket_id ‖ codeword`, and the
//! wire phase walks the merged stream one bucket at a time. Spill files
//! hold only post-`h`-post-`enc` bytes — the analyzer's WIRE01 pass
//! treats `push_record` as a wire sink and proves it.
//!
//! ## Wire format
//!
//! A sharded receiver opens with the 6-byte hello
//! `[TAG_SHARDED, 1, B:u32be]`, then for each bucket `b = 0..B` the
//! parties exchange exactly the unsharded message sequence restricted to
//! bucket `b`. With `B = 1` no hello is sent and the engines delegate to
//! the unsharded paths, so single-shard runs are byte-identical to
//! today's protocols. Senders adopt sharding automatically by peeking at
//! the first frame ([`recv_hello_or_pushback`]): a hello announces `B`,
//! anything else is pushed back ([`PushbackTransport`]) and handled by
//! the unsharded engine.
//!
//! ## Leakage delta
//!
//! Sharding discloses, per party, the *per-bucket set sizes* — `B`
//! values summing to `|V|` — where the unsharded protocols disclose only
//! the total. For the -size variants it additionally localizes each
//! match to its bucket. [`crate::leakage`] quantifies both deltas
//! exactly, the same way the §5.2 duplicate-class leak is handled; §6.1
//! cost totals are unchanged because every formula is linear in
//! `|V_S|`/`|V_R|` (see `minshare-costmodel`'s `reconcile_sharded`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

use minshare_bignum::UBig;
use minshare_crypto::kcipher::ExtCipher;
use minshare_crypto::{CommutativeScheme, EncryptPool, PendingBatch, QrGroup};
use minshare_net::{FrameBatch, NetError, Transport};
use rand::Rng;

use crate::equijoin_size::{EquijoinSizeReceiverOutput, EquijoinSizeSenderOutput};
use crate::equijoin::{EquijoinReceiverOutput, EquijoinSenderOutput};
use crate::error::ProtocolError;
use crate::intersection::{IntersectionReceiverOutput, IntersectionSenderOutput};
use crate::intersection_size::{IntersectionSizeReceiverOutput, IntersectionSizeSenderOutput};
use crate::pipeline::{self, into_codewords, require_chunk_strictly_sorted, PipelineConfig};
use crate::prepare::{prepare_multiset, prepare_set};
use crate::spill::{ExtSorter, SortedStream, SpillStats};
use crate::stats::OpCounters;
use crate::wire::{
    decode_shard_hello, encode_shard_hello, send_codewords_chunked, send_payload_pairs_chunked,
    ChunkedReader, ChunkedWriter, Message, MAX_SHARDS, TAG_CODEWORDS, TAG_CODEWORD_PAIRS,
    TAG_PAYLOAD_PAIRS,
};

/// Knobs for the sharded engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Bucket count `B` chosen by the receiver. `1` (the default) means
    /// unsharded: no hello frame, byte-identical delegation to the
    /// plain engines.
    pub shards: u32,
    /// In-memory byte budget of each spill sorter; codeword records
    /// beyond it go to sorted run files on disk.
    pub mem_budget: usize,
    /// Directory for spill run files (`None` = the OS temp dir). Runs
    /// are unlinked at creation, so nothing lingers after the process.
    pub spill_dir: Option<PathBuf>,
    /// How many buckets' encryption jobs may be in flight at once during
    /// the spill phase; bounds peak codeword memory to `window` buckets.
    pub window: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            mem_budget: 64 << 20,
            spill_dir: None,
            window: 4,
        }
    }
}

impl ShardConfig {
    /// A config for `shards` buckets with default memory knobs.
    pub fn with_shards(shards: u32) -> Self {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }

    fn dir(&self) -> PathBuf {
        self.spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
    }

    fn window(&self) -> usize {
        self.window.max(1)
    }

    /// Shard count clamped to the wire-format bounds.
    pub fn effective_shards(&self) -> u32 {
        self.shards.clamp(1, MAX_SHARDS)
    }
}

/// A transport wrapper that re-delivers one already-received frame
/// before reading from the underlying link — how a sender hands a
/// peeked non-hello first frame to the unsharded engine.
pub struct PushbackTransport<'a, T: Transport + ?Sized> {
    first: Option<Vec<u8>>,
    inner: &'a mut T,
}

impl<'a, T: Transport + ?Sized> PushbackTransport<'a, T> {
    /// Wraps `inner`, making `first` the next received frame.
    pub fn new(first: Vec<u8>, inner: &'a mut T) -> Self {
        PushbackTransport {
            first: Some(first),
            inner,
        }
    }
}

impl<T: Transport + ?Sized> Transport for PushbackTransport<'_, T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.inner.send(frame)
    }

    fn send_batch(&mut self, batch: FrameBatch) -> Result<(), NetError> {
        self.inner.send_batch(batch)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        match self.first.take() {
            Some(frame) => Ok(frame),
            None => self.inner.recv(),
        }
    }
}

/// Receives the first frame of a session on the sender side:
/// `Ok(shards)` when the peer opened with a shard hello, `Err(frame)`
/// when it is an ordinary first message to push back into an unsharded
/// engine via [`PushbackTransport`].
pub fn recv_hello_or_pushback<T: Transport + ?Sized>(
    transport: &mut T,
) -> Result<Result<u32, Vec<u8>>, ProtocolError> {
    let frame = transport.recv()?;
    match decode_shard_hello(&frame)? {
        Some(shards) => Ok(Ok(shards)),
        None => Ok(Err(frame)),
    }
}

/// The bucket a fixed-width codeword prefix maps to: the first (up to)
/// eight bytes read big-endian, mod `shards`. Applied to `h(v)`'s
/// encoding by both parties, so the assignment needs no coordination.
pub fn bucket_of(codeword: &[u8], shards: u32) -> u32 {
    let mut prefix = [0u8; 8];
    for (d, s) in prefix.iter_mut().zip(codeword.iter()) {
        *d = *s;
    }
    (u64::from_be_bytes(prefix) % u64::from(shards.max(1))) as u32
}

/// The bucket a clear value lands in under `scheme`: `bucket_of` applied
/// to the fixed-width encoding of `h(value)`. This is the assignment
/// function the leakage calculator and tests feed to
/// [`crate::leakage::bucket_size_disclosure`].
pub fn value_bucket<S: CommutativeScheme>(
    scheme: &S,
    value: &[u8],
    shards: u32,
) -> Result<u32, ProtocolError> {
    let h = scheme.hash_value(value);
    Ok(bucket_of(&scheme.encode_elem(&h)?, shards))
}

fn shard_err(detail: impl std::fmt::Display) -> ProtocolError {
    ProtocolError::Spill {
        detail: detail.to_string(),
    }
}

/// Per-bucket entry indices: `plan[b]` lists the positions (in the
/// prepared entry list) whose hash falls in bucket `b`.
fn plan_buckets(
    group: &QrGroup,
    hashes: &[UBig],
    shards: u32,
) -> Result<Vec<Vec<u32>>, ProtocolError> {
    let shards = shards.clamp(1, MAX_SHARDS);
    let mut plan: Vec<Vec<u32>> = vec![Vec::new(); shards as usize];
    for (i, h) in hashes.iter().enumerate() {
        let b = bucket_of(&group.encode_elem(h)?, shards);
        let idx = u32::try_from(i).map_err(|_| shard_err("set too large for u32 indices"))?;
        plan.get_mut(b as usize)
            .ok_or_else(|| shard_err("bucket index out of range"))?
            .push(idx);
    }
    Ok(plan)
}

/// One in-flight spill-phase encryption batch: the bucket it belongs
/// to, the entry indices it covers, and the pool job.
struct SpillJob {
    bucket: u32,
    idxs: Vec<u32>,
    job: PendingBatch,
}

/// Waits one spill job and pushes its codewords into the sorter as
/// `bucket ‖ codeword [‖ idx]` records.
fn drain_spill_job(
    group: &QrGroup,
    sorter: &mut ExtSorter,
    job: SpillJob,
    with_idx: bool,
) -> Result<(), ProtocolError> {
    let codewords = job.job.wait();
    for (k, y) in codewords.iter().enumerate() {
        let mut rec = Vec::with_capacity(sorter.record_len());
        rec.extend_from_slice(&job.bucket.to_be_bytes());
        rec.extend_from_slice(&group.encode_elem(y)?);
        if with_idx {
            let idx = job
                .idxs
                .get(k)
                .copied()
                .ok_or_else(|| shard_err("spill job shorter than its index list"))?;
            rec.extend_from_slice(&idx.to_be_bytes());
        }
        sorter.push_record(&rec)?;
    }
    Ok(())
}

/// The equijoin sender's two-key analogue of [`SpillJob`]: one batch
/// per exponent (`e_s` tags, `e'_s` κ seeds) over the same entries.
struct PairSpillJob {
    bucket: u32,
    idxs: Vec<u32>,
    tags: PendingBatch,
    kappas: PendingBatch,
}

/// Waits one equijoin spill job and pushes its
/// `bucket ‖ tag ‖ idx ‖ κ` records — tag-sorted within the bucket by
/// the merge, which is exactly the payload-table order.
fn drain_pair_spill_job(
    group: &QrGroup,
    sorter: &mut ExtSorter,
    job: PairSpillJob,
) -> Result<(), ProtocolError> {
    let tags = job.tags.wait();
    let kappas = job.kappas.wait();
    for (k, (tag, kappa)) in tags.iter().zip(&kappas).enumerate() {
        let mut rec = Vec::with_capacity(sorter.record_len());
        rec.extend_from_slice(&job.bucket.to_be_bytes());
        rec.extend_from_slice(&group.encode_elem(tag)?);
        let idx = job
            .idxs
            .get(k)
            .copied()
            .ok_or_else(|| shard_err("spill job shorter than its index list"))?;
        rec.extend_from_slice(&idx.to_be_bytes());
        rec.extend_from_slice(&group.encode_elem(kappa)?);
        sorter.push_record(&rec)?;
    }
    Ok(())
}

/// Spill phase shared by every single-key engine: encrypt each bucket's
/// hashes on the pool (at most `window` buckets in flight) and spill the
/// codewords. Counts one `Ce` per hash.
#[allow(clippy::too_many_arguments)]
fn encrypt_buckets_to_sorter(
    group: &QrGroup,
    pool: &EncryptPool,
    key: &minshare_crypto::CommutativeKey,
    hashes: &[UBig],
    plan: &[Vec<u32>],
    sorter: &mut ExtSorter,
    with_idx: bool,
    window: usize,
    ops: &mut OpCounters,
) -> Result<(), ProtocolError> {
    let mut in_flight: VecDeque<SpillJob> = VecDeque::new();
    for (b, idxs) in plan.iter().enumerate() {
        let batch: Vec<UBig> = idxs
            .iter()
            .map(|&i| {
                hashes
                    .get(i as usize)
                    .cloned()
                    .ok_or_else(|| shard_err("bucket plan index out of range"))
            })
            .collect::<Result<_, _>>()?;
        ops.encryptions += batch.len() as u64;
        in_flight.push_back(SpillJob {
            bucket: b as u32,
            idxs: idxs.clone(),
            job: pool.submit_encrypt(group, key, &batch),
        });
        while in_flight.len() >= window {
            if let Some(job) = in_flight.pop_front() {
                drain_spill_job(group, sorter, job, with_idx)?;
            }
        }
    }
    while let Some(job) = in_flight.pop_front() {
        drain_spill_job(group, sorter, job, with_idx)?;
    }
    Ok(())
}

/// Walks a merged spill stream one bucket at a time (records are sorted
/// by their `bucket ‖ codeword` prefix, so each bucket is contiguous).
struct BucketStream {
    stream: SortedStream,
    lookahead: Option<Vec<u8>>,
}

impl BucketStream {
    fn new(stream: SortedStream) -> Self {
        BucketStream {
            stream,
            lookahead: None,
        }
    }

    /// Every record of bucket `b`, in codeword order. Must be called
    /// with strictly increasing `b`.
    fn take_bucket(&mut self, b: u32) -> Result<Vec<Vec<u8>>, ProtocolError> {
        let mut out = Vec::new();
        loop {
            let rec = match self.lookahead.take() {
                Some(rec) => rec,
                None => match self.stream.next_record()? {
                    Some(rec) => rec,
                    None => return Ok(out),
                },
            };
            let bucket = rec_u32(&rec, 0)?;
            if bucket == b {
                out.push(rec);
            } else if bucket > b {
                self.lookahead = Some(rec);
                return Ok(out);
            } else {
                return Err(shard_err("spill stream went backwards across buckets"));
            }
        }
    }
}

fn rec_u32(rec: &[u8], at: usize) -> Result<u32, ProtocolError> {
    let bytes = rec
        .get(at..at + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .ok_or_else(|| shard_err("truncated spill record"))?;
    Ok(u32::from_be_bytes(bytes))
}

/// Decodes the codeword field of a spill record. The bytes are our own
/// prior `encode_elem` output, so plain big-endian reconstruction
/// suffices (no domain re-validation).
fn rec_codeword(rec: &[u8], at: usize, width: usize) -> Result<UBig, ProtocolError> {
    let bytes = rec
        .get(at..at + width)
        .ok_or_else(|| shard_err("truncated spill record"))?;
    Ok(UBig::from_be_bytes(bytes))
}

/// Non-strict chunk-boundary sortedness check (multiset lists, where
/// duplicates are legitimate).
fn require_chunk_sorted(
    last: &mut Option<UBig>,
    chunk: &[UBig],
    what: &'static str,
) -> Result<(), ProtocolError> {
    for x in chunk {
        if let Some(prev) = last.as_ref() {
            if prev > x {
                return Err(ProtocolError::NotSorted { what });
            }
        }
        *last = Some(x.clone());
    }
    Ok(())
}

/// One deterministic per-bucket completion event. `ce` is the bucket's
/// exact §6.1 `Ce` expenditure on this party; `minshare-costmodel`'s
/// `reconcile_sharded` checks these per-bucket figures still sum to the
/// paper's formulas.
fn emit_bucket_done(
    name: &'static str,
    protocol: &'static str,
    bucket: u32,
    own_items: usize,
    peer_items: usize,
    ce: u64,
) {
    minshare_trace::emit("shard", name, true, move || {
        vec![
            minshare_trace::count("bucket", u64::from(bucket)),
            minshare_trace::count("own_items", own_items as u64),
            minshare_trace::count("peer_items", peer_items as u64),
            minshare_trace::count("ce", ce),
            minshare_trace::count(protocol, 1),
        ]
    });
}

/// Deterministic spill summary for one engine's sort phase: run/byte/
/// record counters only (sizes, never content). `runs_spilled == 0`
/// means the whole set fit in the memory budget.
fn emit_spill_done(stats: &SpillStats) {
    let (runs, bytes, records) = (stats.runs_spilled, stats.bytes_spilled, stats.records);
    minshare_trace::emit("shard", "spill_done", true, move || {
        vec![
            minshare_trace::count("runs_spilled", runs),
            minshare_trace::count("bytes_spilled", bytes),
            minshare_trace::count("records", records),
        ]
    });
}

// ---------------------------------------------------------------------------
// Intersection
// ---------------------------------------------------------------------------

/// Sharded intersection receiver. With `cfg.shards <= 1` this delegates
/// to [`pipeline::run_intersection_receiver`] (no hello frame, byte-
/// identical); otherwise it announces `B` and runs the per-bucket flow.
pub fn run_intersection_receiver<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<IntersectionReceiverOutput, ProtocolError> {
    let shards = cfg.effective_shards();
    if shards <= 1 {
        return pipeline::run_intersection_receiver(transport, group, values, rng, pool, pipe);
    }
    let mut ops = OpCounters::default();
    transport.send(&encode_shard_hello(shards))?;

    let prepared = prepare_set(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let (own_values, hashes): (Vec<Vec<u8>>, Vec<UBig>) = prepared.entries.into_iter().unzip();
    let plan = plan_buckets(group, &hashes, shards)?;

    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width + 4, cfg.mem_budget, &cfg.dir())?;
    encrypt_buckets_to_sorter(
        group,
        pool,
        &key,
        &hashes,
        &plan,
        &mut sorter,
        true,
        cfg.window(),
        &mut ops,
    )?;
    drop(hashes);
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_set_size = 0usize;
    let mut matched_idx: Vec<u32> = Vec::new();
    for b in 0..shards {
        let recs = buckets.take_bucket(b)?;
        let mut yr_b: Vec<UBig> = Vec::with_capacity(recs.len());
        let mut idx_b: Vec<u32> = Vec::with_capacity(recs.len());
        for rec in &recs {
            yr_b.push(rec_codeword(rec, 4, width)?);
            idx_b.push(rec_u32(rec, 4 + width)?);
        }
        send_codewords_chunked(transport, group, &yr_b, pipe.effective_chunk(yr_b.len()))?;

        // Y_S^b, overlapping Z_S^b = f_eR(Y_S^b) with the receive.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut zs_jobs: Vec<PendingBatch> = Vec::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_strictly_sorted(&mut last, &chunk, "Y_S")?;
            peer_b += chunk.len();
            ops.encryptions += chunk.len() as u64;
            zs_jobs.push(pool.submit_encrypt(group, &key, &chunk));
        }
        peer_set_size += peer_b;

        // f_eS(Y_R^b), aligned with this bucket's Y_R order.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut reencrypted: Vec<UBig> = Vec::with_capacity(reader.total_items().min(1 << 22));
        while let Some(msg) = reader.next(transport, group)? {
            reencrypted.extend(into_codewords(msg)?);
        }
        if reencrypted.len() != yr_b.len() {
            return Err(ProtocolError::LengthMismatch {
                expected: yr_b.len(),
                got: reencrypted.len(),
            });
        }

        let zs: BTreeSet<UBig> = zs_jobs.into_iter().flat_map(PendingBatch::wait).collect();
        for (i, fes_y) in idx_b.iter().zip(&reencrypted) {
            if zs.contains(fes_y) {
                matched_idx.push(*i);
            }
        }
        emit_bucket_done(
            "receiver_bucket_done",
            "intersection",
            b,
            yr_b.len(),
            peer_b,
            (yr_b.len() + peer_b) as u64,
        );
    }

    let mut intersection: Vec<Vec<u8>> = matched_idx
        .into_iter()
        .map(|i| {
            own_values
                .get(i as usize)
                .cloned()
                .ok_or_else(|| shard_err("matched index out of range"))
        })
        .collect::<Result<_, _>>()?;
    intersection.sort();

    crate::stats::emit_ops(
        "intersection",
        "receiver_done",
        &ops,
        own_values.len(),
        peer_set_size,
    );
    Ok(IntersectionReceiverOutput {
        intersection,
        peer_set_size,
        ops,
    })
}

/// Sharded intersection sender for a peer that announced `shards`
/// buckets (see [`recv_hello_or_pushback`]; the hello frame must already
/// have been consumed).
pub fn run_intersection_sender_sharded<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
    shards: u32,
) -> Result<IntersectionSenderOutput, ProtocolError> {
    let shards = shards.clamp(1, MAX_SHARDS);
    let mut ops = OpCounters::default();
    let prepared = prepare_set(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let hashes: Vec<UBig> = prepared.entries.iter().map(|(_, h)| h.clone()).collect();
    let own_set_size = hashes.len();
    let plan = plan_buckets(group, &hashes, shards)?;

    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width, cfg.mem_budget, &cfg.dir())?;
    encrypt_buckets_to_sorter(
        group,
        pool,
        &key,
        &hashes,
        &plan,
        &mut sorter,
        false,
        cfg.window(),
        &mut ops,
    )?;
    drop(hashes);
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_set_size = 0usize;
    for b in 0..shards {
        // Y_R^b in, re-encryption jobs per chunk.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut pending: Vec<PendingBatch> = Vec::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_strictly_sorted(&mut last, &chunk, "Y_R")?;
            peer_b += chunk.len();
            ops.encryptions += chunk.len() as u64;
            pending.push(pool.submit_encrypt(group, &key, &chunk));
        }
        peer_set_size += peer_b;

        // Y_S^b out (already sorted by the merge).
        let recs = buckets.take_bucket(b)?;
        let mut ys_b: Vec<UBig> = Vec::with_capacity(recs.len());
        for rec in &recs {
            ys_b.push(rec_codeword(rec, 4, width)?);
        }
        send_codewords_chunked(transport, group, &ys_b, pipe.effective_chunk(ys_b.len()))?;

        // f_eS(Y_R^b), answered chunk-for-chunk.
        let mut writer =
            ChunkedWriter::begin_with_chunks(transport, TAG_CODEWORDS, peer_b, pending.len())?;
        for job in pending {
            writer.send(transport, group, &Message::Codewords(job.wait()))?;
        }
        writer.finish()?;
        emit_bucket_done(
            "sender_bucket_done",
            "intersection",
            b,
            ys_b.len(),
            peer_b,
            (ys_b.len() + peer_b) as u64,
        );
    }

    crate::stats::emit_ops(
        "intersection",
        "sender_done",
        &ops,
        own_set_size,
        peer_set_size,
    );
    Ok(IntersectionSenderOutput { peer_set_size, ops })
}

/// Auto-adopting intersection sender: peeks the first frame and runs the
/// sharded flow when the peer sent a hello, else pushes the frame back
/// into the pipelined engine. This is what the daemon [`crate::service`]
/// dispatches to, so one service serves sharded and unsharded clients
/// alike.
pub fn run_intersection_sender<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<IntersectionSenderOutput, ProtocolError> {
    match recv_hello_or_pushback(transport)? {
        Ok(shards) => run_intersection_sender_sharded(
            transport, group, values, rng, pool, pipe, cfg, shards,
        ),
        Err(frame) => {
            let mut t = PushbackTransport::new(frame, transport);
            pipeline::run_intersection_sender(&mut t, group, values, rng, pool, pipe)
        }
    }
}

// ---------------------------------------------------------------------------
// Equijoin
// ---------------------------------------------------------------------------

/// Sharded equijoin receiver; delegates to the pipelined engine when
/// `cfg.shards <= 1`.
#[allow(clippy::too_many_arguments)]
pub fn run_equijoin_receiver<T: Transport + ?Sized, C: ExtCipher + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    cipher: &C,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<EquijoinReceiverOutput, ProtocolError> {
    let shards = cfg.effective_shards();
    if shards <= 1 {
        return pipeline::run_equijoin_receiver(transport, group, cipher, values, rng, pool, pipe);
    }
    let mut ops = OpCounters::default();
    transport.send(&encode_shard_hello(shards))?;

    let prepared = prepare_set(group, values, &mut ops)?;
    let e_r = group.gen_key(rng);
    let (own_values, hashes): (Vec<Vec<u8>>, Vec<UBig>) = prepared.entries.into_iter().unzip();
    let plan = plan_buckets(group, &hashes, shards)?;

    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width + 4, cfg.mem_budget, &cfg.dir())?;
    encrypt_buckets_to_sorter(
        group,
        pool,
        &e_r,
        &hashes,
        &plan,
        &mut sorter,
        true,
        cfg.window(),
        &mut ops,
    )?;
    drop(hashes);
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_set_size = 0usize;
    let mut matches: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for b in 0..shards {
        let recs = buckets.take_bucket(b)?;
        let mut yr_b: Vec<UBig> = Vec::with_capacity(recs.len());
        let mut idx_b: Vec<u32> = Vec::with_capacity(recs.len());
        for rec in &recs {
            yr_b.push(rec_codeword(rec, 4, width)?);
            idx_b.push(rec_u32(rec, 4 + width)?);
        }
        send_codewords_chunked(transport, group, &yr_b, pipe.effective_chunk(yr_b.len()))?;

        // (f_eS(y), f_e'S(y)) aligned with Y_R^b; strip our layer per
        // chunk on the pool.
        let mut reader =
            ChunkedReader::begin(transport, group, TAG_CODEWORD_PAIRS, "codeword-pairs")?;
        let mut strip_jobs: Vec<(PendingBatch, PendingBatch)> = Vec::new();
        let mut pair_count = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let pairs = match msg {
                Message::CodewordPairs(p) => p,
                other => {
                    return Err(ProtocolError::UnexpectedMessage {
                        expected: "codeword-pairs",
                        got: other.kind(),
                    })
                }
            };
            pair_count += pairs.len();
            ops.decryptions += 2 * pairs.len() as u64;
            let (fes, fesp): (Vec<UBig>, Vec<UBig>) = pairs.into_iter().unzip();
            strip_jobs.push((
                pool.submit_decrypt(group, &e_r, &fes),
                pool.submit_decrypt(group, &e_r, &fesp),
            ));
        }
        if pair_count != yr_b.len() {
            return Err(ProtocolError::LengthMismatch {
                expected: yr_b.len(),
                got: pair_count,
            });
        }

        // The bucket's payload table, strictly sorted within the bucket.
        let mut reader =
            ChunkedReader::begin(transport, group, TAG_PAYLOAD_PAIRS, "payload-pairs")?;
        let mut last: Option<UBig> = None;
        let mut table: BTreeMap<UBig, Vec<u8>> = BTreeMap::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let pairs = match msg {
                Message::PayloadPairs(p) => p,
                other => {
                    return Err(ProtocolError::UnexpectedMessage {
                        expected: "payload-pairs",
                        got: other.kind(),
                    })
                }
            };
            peer_b += pairs.len();
            for (tag, ct) in pairs {
                if let Some(prev) = last.as_ref() {
                    if prev >= &tag {
                        return Err(ProtocolError::NotSorted {
                            what: "payload table",
                        });
                    }
                }
                last = Some(tag.clone());
                table.insert(tag, ct);
            }
        }
        peer_set_size += peer_b;

        let mut stripped: Vec<(UBig, UBig)> = Vec::with_capacity(pair_count);
        for (a_job, b_job) in strip_jobs {
            stripped.extend(a_job.wait().into_iter().zip(b_job.wait()));
        }
        // Equal tags imply equal hashes, which land in the same bucket —
        // so the per-bucket duplicate check covers the whole run.
        let mut seen_tags = BTreeSet::new();
        for (i, (tag, kappa)) in idx_b.iter().zip(stripped) {
            if !seen_tags.insert(tag.clone()) {
                return Err(ProtocolError::HashCollision);
            }
            if let Some(ct) = table.get(&tag) {
                ops.payload_decryptions += 1;
                let ext = cipher.decrypt(&kappa, ct)?;
                let v = own_values
                    .get(*i as usize)
                    .cloned()
                    .ok_or_else(|| shard_err("matched index out of range"))?;
                matches.push((v, ext));
            }
        }
        emit_bucket_done(
            "receiver_bucket_done",
            "equijoin",
            b,
            yr_b.len(),
            peer_b,
            3 * yr_b.len() as u64,
        );
    }
    matches.sort();

    crate::stats::emit_ops(
        "equijoin",
        "receiver_done",
        &ops,
        own_values.len(),
        peer_set_size,
    );
    Ok(EquijoinReceiverOutput {
        matches,
        peer_set_size,
        ops,
    })
}

/// Sharded equijoin sender for a peer that announced `shards` buckets.
#[allow(clippy::too_many_arguments)]
pub fn run_equijoin_sender_sharded<T, C, R>(
    transport: &mut T,
    group: &QrGroup,
    cipher: &C,
    entries: &[(Vec<u8>, Vec<u8>)],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
    shards: u32,
) -> Result<EquijoinSenderOutput, ProtocolError>
where
    T: Transport + ?Sized,
    C: ExtCipher + ?Sized,
    R: Rng + ?Sized,
{
    let shards = shards.clamp(1, MAX_SHARDS);
    let mut ops = OpCounters::default();
    let values: Vec<Vec<u8>> = entries.iter().map(|(v, _)| v.clone()).collect();
    let payloads: BTreeMap<&Vec<u8>, &Vec<u8>> = entries.iter().map(|(v, p)| (v, p)).collect();
    let prepared = prepare_set(group, &values, &mut ops)?;
    let e_s = group.gen_key(rng);
    let e_s_prime = group.gen_key(rng);
    let plan = plan_buckets(
        group,
        &prepared
            .entries
            .iter()
            .map(|(_, h)| h.clone())
            .collect::<Vec<_>>(),
        shards,
    )?;
    let own_set_size = prepared.entries.len();

    // Spill phase: per bucket, both exponentiations of every member —
    // records are `bucket ‖ tag ‖ idx ‖ κ`, sorted by tag within the
    // bucket, which is exactly the payload-table order.
    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width + 4 + width, cfg.mem_budget, &cfg.dir())?;
    let mut in_flight: VecDeque<PairSpillJob> = VecDeque::new();
    for (b, idxs) in plan.iter().enumerate() {
        let batch: Vec<UBig> = idxs
            .iter()
            .map(|&i| {
                prepared
                    .entries
                    .get(i as usize)
                    .map(|(_, h)| h.clone())
                    .ok_or_else(|| shard_err("bucket plan index out of range"))
            })
            .collect::<Result<_, _>>()?;
        ops.encryptions += 2 * batch.len() as u64;
        in_flight.push_back(PairSpillJob {
            bucket: b as u32,
            idxs: idxs.clone(),
            tags: pool.submit_encrypt(group, &e_s, &batch),
            kappas: pool.submit_encrypt(group, &e_s_prime, &batch),
        });
        while in_flight.len() >= cfg.window() {
            if let Some(job) = in_flight.pop_front() {
                drain_pair_spill_job(group, &mut sorter, job)?;
            }
        }
    }
    while let Some(job) = in_flight.pop_front() {
        drain_pair_spill_job(group, &mut sorter, job)?;
    }
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_set_size = 0usize;
    for b in 0..shards {
        // Y_R^b in, both re-encryptions per chunk.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut pair_jobs: Vec<(PendingBatch, PendingBatch)> = Vec::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_strictly_sorted(&mut last, &chunk, "Y_R")?;
            peer_b += chunk.len();
            ops.encryptions += 2 * chunk.len() as u64;
            pair_jobs.push((
                pool.submit_encrypt(group, &e_s, &chunk),
                pool.submit_encrypt(group, &e_s_prime, &chunk),
            ));
        }
        peer_set_size += peer_b;

        // (f_eS(y), f_e'S(y)) chunk-for-chunk.
        let mut writer = ChunkedWriter::begin_with_chunks(
            transport,
            TAG_CODEWORD_PAIRS,
            peer_b,
            pair_jobs.len(),
        )?;
        for (a_job, b_job) in pair_jobs {
            let pairs: Vec<(UBig, UBig)> = a_job.wait().into_iter().zip(b_job.wait()).collect();
            writer.send(transport, group, &Message::CodewordPairs(pairs))?;
        }
        writer.finish()?;

        // The bucket's payload table: encrypt each member's ext record
        // under its κ, in the (sorted) spill order.
        let recs = buckets.take_bucket(b)?;
        let mut payload_pairs: Vec<(UBig, Vec<u8>)> = Vec::with_capacity(recs.len());
        for rec in &recs {
            let tag = rec_codeword(rec, 4, width)?;
            let idx = rec_u32(rec, 4 + width)? as usize;
            let kappa = rec_codeword(rec, 4 + width + 4, width)?;
            let (v, _) = prepared
                .entries
                .get(idx)
                .ok_or_else(|| shard_err("spill record index out of range"))?;
            ops.payload_encryptions += 1;
            let ext = payloads.get(v).copied().cloned().unwrap_or_default();
            let ct = cipher.encrypt(&kappa, &ext)?;
            payload_pairs.push((tag, ct));
        }
        send_payload_pairs_chunked(
            transport,
            group,
            &payload_pairs,
            pipe.effective_chunk(payload_pairs.len()),
        )?;
        emit_bucket_done(
            "sender_bucket_done",
            "equijoin",
            b,
            recs.len(),
            peer_b,
            2 * (recs.len() + peer_b) as u64,
        );
    }

    crate::stats::emit_ops(
        "equijoin",
        "sender_done",
        &ops,
        own_set_size,
        peer_set_size,
    );
    Ok(EquijoinSenderOutput { peer_set_size, ops })
}

/// Auto-adopting equijoin sender (pipelined fallback), the service-side
/// entry point; see [`run_intersection_sender`].
#[allow(clippy::too_many_arguments)]
pub fn run_equijoin_sender<T, C, R>(
    transport: &mut T,
    group: &QrGroup,
    cipher: &C,
    entries: &[(Vec<u8>, Vec<u8>)],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<EquijoinSenderOutput, ProtocolError>
where
    T: Transport + ?Sized,
    C: ExtCipher + ?Sized,
    R: Rng + ?Sized,
{
    match recv_hello_or_pushback(transport)? {
        Ok(shards) => run_equijoin_sender_sharded(
            transport, group, cipher, entries, rng, pool, pipe, cfg, shards,
        ),
        Err(frame) => {
            let mut t = PushbackTransport::new(frame, transport);
            pipeline::run_equijoin_sender(&mut t, group, cipher, entries, rng, pool, pipe)
        }
    }
}

// ---------------------------------------------------------------------------
// Intersection size
// ---------------------------------------------------------------------------

/// Sharded intersection-size receiver; delegates to the serial engine
/// when `cfg.shards <= 1`. The sharded variant additionally learns which
/// *bucket* each of the counted matches fell in — the per-bucket leak
/// documented in [`crate::leakage`].
pub fn run_intersection_size_receiver<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<IntersectionSizeReceiverOutput, ProtocolError> {
    let shards = cfg.effective_shards();
    if shards <= 1 {
        return crate::intersection_size::run_receiver(transport, group, values, rng);
    }
    let mut ops = OpCounters::default();
    transport.send(&encode_shard_hello(shards))?;

    let prepared = prepare_set(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let hashes: Vec<UBig> = prepared.entries.iter().map(|(_, h)| h.clone()).collect();
    let own_size = hashes.len();
    let plan = plan_buckets(group, &hashes, shards)?;

    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width, cfg.mem_budget, &cfg.dir())?;
    encrypt_buckets_to_sorter(
        group,
        pool,
        &key,
        &hashes,
        &plan,
        &mut sorter,
        false,
        cfg.window(),
        &mut ops,
    )?;
    drop(hashes);
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_set_size = 0usize;
    let mut intersection_size = 0usize;
    for b in 0..shards {
        let recs = buckets.take_bucket(b)?;
        let mut yr_b: Vec<UBig> = Vec::with_capacity(recs.len());
        for rec in &recs {
            yr_b.push(rec_codeword(rec, 4, width)?);
        }
        send_codewords_chunked(transport, group, &yr_b, pipe.effective_chunk(yr_b.len()))?;

        // Y_S^b, with Z_S^b jobs per chunk.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut zs_jobs: Vec<PendingBatch> = Vec::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_strictly_sorted(&mut last, &chunk, "Y_S")?;
            peer_b += chunk.len();
            ops.encryptions += chunk.len() as u64;
            zs_jobs.push(pool.submit_encrypt(group, &key, &chunk));
        }
        peer_set_size += peer_b;

        // Z_R^b: sorted within the bucket, pairing destroyed per bucket.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut zr_b: Vec<UBig> = Vec::with_capacity(reader.total_items().min(1 << 22));
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_strictly_sorted(&mut last, &chunk, "Z_R")?;
            zr_b.extend(chunk);
        }
        if zr_b.len() != yr_b.len() {
            return Err(ProtocolError::LengthMismatch {
                expected: yr_b.len(),
                got: zr_b.len(),
            });
        }

        let zs: BTreeSet<UBig> = zs_jobs.into_iter().flat_map(PendingBatch::wait).collect();
        intersection_size += zr_b.iter().filter(|z| zs.contains(z)).count();
        emit_bucket_done(
            "receiver_bucket_done",
            "intersection_size",
            b,
            yr_b.len(),
            peer_b,
            (yr_b.len() + peer_b) as u64,
        );
    }

    crate::stats::emit_ops(
        "intersection_size",
        "receiver_done",
        &ops,
        own_size,
        peer_set_size,
    );
    Ok(IntersectionSizeReceiverOutput {
        intersection_size,
        peer_set_size,
        ops,
    })
}

/// Sharded intersection-size sender for a peer that announced `shards`.
pub fn run_intersection_size_sender_sharded<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
    shards: u32,
) -> Result<IntersectionSizeSenderOutput, ProtocolError> {
    let shards = shards.clamp(1, MAX_SHARDS);
    let mut ops = OpCounters::default();
    let prepared = prepare_set(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let hashes: Vec<UBig> = prepared.entries.iter().map(|(_, h)| h.clone()).collect();
    let own_size = hashes.len();
    let plan = plan_buckets(group, &hashes, shards)?;

    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width, cfg.mem_budget, &cfg.dir())?;
    encrypt_buckets_to_sorter(
        group,
        pool,
        &key,
        &hashes,
        &plan,
        &mut sorter,
        false,
        cfg.window(),
        &mut ops,
    )?;
    drop(hashes);
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_set_size = 0usize;
    for b in 0..shards {
        // Y_R^b in, re-encryption jobs per chunk.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut pending: Vec<PendingBatch> = Vec::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_strictly_sorted(&mut last, &chunk, "Y_R")?;
            peer_b += chunk.len();
            ops.encryptions += chunk.len() as u64;
            pending.push(pool.submit_encrypt(group, &key, &chunk));
        }
        peer_set_size += peer_b;

        // Y_S^b out.
        let recs = buckets.take_bucket(b)?;
        let mut ys_b: Vec<UBig> = Vec::with_capacity(recs.len());
        for rec in &recs {
            ys_b.push(rec_codeword(rec, 4, width)?);
        }
        send_codewords_chunked(transport, group, &ys_b, pipe.effective_chunk(ys_b.len()))?;

        // Z_R^b: reorder lexicographically *within the bucket* — the
        // §5.1 unlinking step, applied per bucket.
        let mut zr_b: Vec<UBig> = Vec::with_capacity(peer_b);
        for job in pending {
            zr_b.extend(job.wait());
        }
        zr_b.sort();
        send_codewords_chunked(transport, group, &zr_b, pipe.effective_chunk(zr_b.len()))?;
        emit_bucket_done(
            "sender_bucket_done",
            "intersection_size",
            b,
            ys_b.len(),
            peer_b,
            (ys_b.len() + peer_b) as u64,
        );
    }

    crate::stats::emit_ops(
        "intersection_size",
        "sender_done",
        &ops,
        own_size,
        peer_set_size,
    );
    Ok(IntersectionSizeSenderOutput { peer_set_size, ops })
}

/// Auto-adopting intersection-size sender (serial fallback — there is no
/// pipelined -size engine).
pub fn run_intersection_size_sender<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<IntersectionSizeSenderOutput, ProtocolError> {
    match recv_hello_or_pushback(transport)? {
        Ok(shards) => run_intersection_size_sender_sharded(
            transport, group, values, rng, pool, pipe, cfg, shards,
        ),
        Err(frame) => {
            let mut t = PushbackTransport::new(frame, transport);
            crate::intersection_size::run_sender(&mut t, group, values, rng)
        }
    }
}

// ---------------------------------------------------------------------------
// Equijoin size (multisets)
// ---------------------------------------------------------------------------

/// Merges a per-bucket codeword count map into a duplicate distribution
/// accumulator. Distinct codewords are bucket-local (equal codewords ⇒
/// equal hashes ⇒ same bucket), so summing per-bucket class counts
/// reproduces the global distribution exactly.
fn merge_distribution(counts: &BTreeMap<UBig, u64>, dist: &mut BTreeMap<u64, u64>) {
    for d in counts.values() {
        *dist.entry(*d).or_insert(0) += 1;
    }
}

fn count_map(items: &[UBig]) -> BTreeMap<UBig, u64> {
    let mut counts: BTreeMap<UBig, u64> = BTreeMap::new();
    for item in items {
        *counts.entry(item.clone()).or_insert(0) += 1;
    }
    counts
}

/// Sharded equijoin-size receiver; delegates to the serial engine when
/// `cfg.shards <= 1`. Multiset variant: duplicates ride along, and all
/// per-bucket leak matrices sum to the global §5.2 matrix.
pub fn run_equijoin_size_receiver<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<EquijoinSizeReceiverOutput, ProtocolError> {
    let shards = cfg.effective_shards();
    if shards <= 1 {
        return crate::equijoin_size::run_receiver(transport, group, values, rng);
    }
    let mut ops = OpCounters::default();
    transport.send(&encode_shard_hello(shards))?;

    let prepared = prepare_multiset(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let hashes: Vec<UBig> = prepared.iter().map(|(_, h)| h.clone()).collect();
    let own_size = hashes.len();
    let plan = plan_buckets(group, &hashes, shards)?;

    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width, cfg.mem_budget, &cfg.dir())?;
    encrypt_buckets_to_sorter(
        group,
        pool,
        &key,
        &hashes,
        &plan,
        &mut sorter,
        false,
        cfg.window(),
        &mut ops,
    )?;
    drop(hashes);
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_multiset_size = 0usize;
    let mut peer_duplicate_distribution: BTreeMap<u64, u64> = BTreeMap::new();
    let mut join_size = 0u64;
    let mut class_intersections: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for b in 0..shards {
        let recs = buckets.take_bucket(b)?;
        let mut yr_b: Vec<UBig> = Vec::with_capacity(recs.len());
        for rec in &recs {
            yr_b.push(rec_codeword(rec, 4, width)?);
        }
        send_codewords_chunked(transport, group, &yr_b, pipe.effective_chunk(yr_b.len()))?;

        // Y_S^b (multiset): non-strict order, Z_S^b jobs per chunk.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut zs_jobs: Vec<PendingBatch> = Vec::new();
        let mut ys_counts: BTreeMap<UBig, u64> = BTreeMap::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_sorted(&mut last, &chunk, "Y_S")?;
            peer_b += chunk.len();
            for y in &chunk {
                *ys_counts.entry(y.clone()).or_insert(0) += 1;
            }
            ops.encryptions += chunk.len() as u64;
            zs_jobs.push(pool.submit_encrypt(group, &key, &chunk));
        }
        peer_multiset_size += peer_b;
        merge_distribution(&ys_counts, &mut peer_duplicate_distribution);
        drop(ys_counts);

        // Z_R^b (multiset, sorted within the bucket).
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut zr_b: Vec<UBig> = Vec::with_capacity(reader.total_items().min(1 << 22));
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_sorted(&mut last, &chunk, "Z_R")?;
            zr_b.extend(chunk);
        }
        if zr_b.len() != yr_b.len() {
            return Err(ProtocolError::LengthMismatch {
                expected: yr_b.len(),
                got: zr_b.len(),
            });
        }

        // Per-bucket join contribution and leak-matrix cells; common
        // codewords are bucket-local, so the sums are exact.
        let zs_flat: Vec<UBig> = zs_jobs.into_iter().flat_map(PendingBatch::wait).collect();
        let zs_counts = count_map(&zs_flat);
        let zr_counts = count_map(&zr_b);
        for (z, d_r) in &zr_counts {
            if let Some(d_s) = zs_counts.get(z) {
                join_size += d_r * d_s;
                *class_intersections.entry((*d_r, *d_s)).or_insert(0) += 1;
            }
        }
        emit_bucket_done(
            "receiver_bucket_done",
            "equijoin_size",
            b,
            yr_b.len(),
            peer_b,
            (yr_b.len() + peer_b) as u64,
        );
    }

    crate::stats::emit_ops(
        "equijoin_size",
        "receiver_done",
        &ops,
        own_size,
        peer_multiset_size,
    );
    Ok(EquijoinSizeReceiverOutput {
        join_size,
        peer_multiset_size,
        peer_duplicate_distribution,
        class_intersections,
        ops,
    })
}

/// Sharded equijoin-size sender for a peer that announced `shards`.
pub fn run_equijoin_size_sender_sharded<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
    shards: u32,
) -> Result<EquijoinSizeSenderOutput, ProtocolError> {
    let shards = shards.clamp(1, MAX_SHARDS);
    let mut ops = OpCounters::default();
    let prepared = prepare_multiset(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let hashes: Vec<UBig> = prepared.iter().map(|(_, h)| h.clone()).collect();
    let own_size = hashes.len();
    let plan = plan_buckets(group, &hashes, shards)?;

    let width = group.codeword_len();
    let mut sorter = ExtSorter::new(4 + width, cfg.mem_budget, &cfg.dir())?;
    encrypt_buckets_to_sorter(
        group,
        pool,
        &key,
        &hashes,
        &plan,
        &mut sorter,
        false,
        cfg.window(),
        &mut ops,
    )?;
    drop(hashes);
    let (stream, spill_stats) = sorter.finish()?;
    emit_spill_done(&spill_stats);
    let mut buckets = BucketStream::new(stream);

    let mut peer_multiset_size = 0usize;
    let mut peer_duplicate_distribution: BTreeMap<u64, u64> = BTreeMap::new();
    for b in 0..shards {
        // Y_R^b (multiset) in, re-encryption jobs per chunk.
        let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
        let mut last: Option<UBig> = None;
        let mut pending: Vec<PendingBatch> = Vec::new();
        let mut yr_counts: BTreeMap<UBig, u64> = BTreeMap::new();
        let mut peer_b = 0usize;
        while let Some(msg) = reader.next(transport, group)? {
            let chunk = into_codewords(msg)?;
            require_chunk_sorted(&mut last, &chunk, "Y_R")?;
            peer_b += chunk.len();
            for y in &chunk {
                *yr_counts.entry(y.clone()).or_insert(0) += 1;
            }
            ops.encryptions += chunk.len() as u64;
            pending.push(pool.submit_encrypt(group, &key, &chunk));
        }
        peer_multiset_size += peer_b;
        merge_distribution(&yr_counts, &mut peer_duplicate_distribution);
        drop(yr_counts);

        // Y_S^b out (multiset; duplicates preserved by the merge).
        let recs = buckets.take_bucket(b)?;
        let mut ys_b: Vec<UBig> = Vec::with_capacity(recs.len());
        for rec in &recs {
            ys_b.push(rec_codeword(rec, 4, width)?);
        }
        send_codewords_chunked(transport, group, &ys_b, pipe.effective_chunk(ys_b.len()))?;

        // Z_R^b, sorted within the bucket.
        let mut zr_b: Vec<UBig> = Vec::with_capacity(peer_b);
        for job in pending {
            zr_b.extend(job.wait());
        }
        zr_b.sort();
        send_codewords_chunked(transport, group, &zr_b, pipe.effective_chunk(zr_b.len()))?;
        emit_bucket_done(
            "sender_bucket_done",
            "equijoin_size",
            b,
            ys_b.len(),
            peer_b,
            (ys_b.len() + peer_b) as u64,
        );
    }

    crate::stats::emit_ops(
        "equijoin_size",
        "sender_done",
        &ops,
        own_size,
        peer_multiset_size,
    );
    Ok(EquijoinSizeSenderOutput {
        peer_multiset_size,
        peer_duplicate_distribution,
        ops,
    })
}

/// Auto-adopting equijoin-size sender (serial fallback).
pub fn run_equijoin_size_sender<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    pipe: PipelineConfig,
    cfg: &ShardConfig,
) -> Result<EquijoinSizeSenderOutput, ProtocolError> {
    match recv_hello_or_pushback(transport)? {
        Ok(shards) => run_equijoin_size_sender_sharded(
            transport, group, values, rng, pool, pipe, cfg, shards,
        ),
        Err(frame) => {
            let mut t = PushbackTransport::new(frame, transport);
            crate::equijoin_size::run_sender(&mut t, group, values, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_two_party;
    use crate::{equijoin, equijoin_size, intersection, intersection_size};
    use minshare_crypto::kcipher::HybridCipher;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn values(n: usize, offset: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("value-{:04}", i + offset).into_bytes())
            .collect()
    }

    fn entry_list(n: usize, offset: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("value-{:04}", i + offset).into_bytes(),
                    format!("ext-{:04}", i + offset).into_bytes(),
                )
            })
            .collect()
    }

    /// A tiny budget so even small test sets exercise the spill path.
    fn tiny_cfg(shards: u32) -> ShardConfig {
        ShardConfig {
            shards,
            mem_budget: 64,
            window: 2,
            ..ShardConfig::default()
        }
    }

    #[test]
    fn sharded_intersection_matches_serial_across_shard_counts() {
        let g = group();
        let (vs, vr) = (values(23, 0), values(17, 11));
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(600);
                intersection::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        for shards in [2u32, 3, 8] {
            let pool = EncryptPool::new(2);
            let cfg = tiny_cfg(shards);
            let run = run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(500);
                    run_intersection_sender(
                        t,
                        &g,
                        &vs,
                        &mut rng,
                        &pool,
                        PipelineConfig::chunked(4),
                        &cfg,
                    )
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(600);
                    run_intersection_receiver(
                        t,
                        &g,
                        &vr,
                        &mut rng,
                        &pool,
                        PipelineConfig::chunked(4),
                        &cfg,
                    )
                },
            )
            .unwrap();
            assert_eq!(run.receiver.intersection, serial.receiver.intersection);
            assert_eq!(run.receiver.peer_set_size, serial.receiver.peer_set_size);
            assert_eq!(run.receiver.ops, serial.receiver.ops, "B={shards}");
            assert_eq!(run.sender.peer_set_size, serial.sender.peer_set_size);
            assert_eq!(run.sender.ops, serial.sender.ops, "B={shards}");
        }
    }

    #[test]
    fn sharded_equijoin_matches_serial() {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 64);
        let (vs, vr) = (entry_list(19, 0), values(13, 9));
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                equijoin::run_sender(t, &g, &cipher, &vs, &mut rng)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 64);
                let mut rng = StdRng::seed_from_u64(600);
                equijoin::run_receiver(t, &g, &cipher, &vr, &mut rng)
            },
        )
        .unwrap();
        for shards in [2u32, 5] {
            let pool = EncryptPool::new(2);
            let cfg = tiny_cfg(shards);
            let run = run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(500);
                    run_equijoin_sender(
                        t,
                        &g,
                        &cipher,
                        &vs,
                        &mut rng,
                        &pool,
                        PipelineConfig::chunked(4),
                        &cfg,
                    )
                },
                |t| {
                    let cipher = HybridCipher::new(g.clone(), 64);
                    let mut rng = StdRng::seed_from_u64(600);
                    run_equijoin_receiver(
                        t,
                        &g,
                        &cipher,
                        &vr,
                        &mut rng,
                        &pool,
                        PipelineConfig::chunked(4),
                        &cfg,
                    )
                },
            )
            .unwrap();
            assert_eq!(run.receiver.matches, serial.receiver.matches, "B={shards}");
            assert_eq!(run.receiver.ops, serial.receiver.ops);
            assert_eq!(run.sender.ops, serial.sender.ops);
        }
    }

    #[test]
    fn sharded_intersection_size_matches_serial() {
        let g = group();
        let (vs, vr) = (values(15, 0), values(12, 8));
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(300);
                intersection_size::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(400);
                intersection_size::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        let pool = EncryptPool::new(2);
        let cfg = tiny_cfg(4);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(300);
                run_intersection_size_sender(
                    t,
                    &g,
                    &vs,
                    &mut rng,
                    &pool,
                    PipelineConfig::chunked(4),
                    &cfg,
                )
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(400);
                run_intersection_size_receiver(
                    t,
                    &g,
                    &vr,
                    &mut rng,
                    &pool,
                    PipelineConfig::chunked(4),
                    &cfg,
                )
            },
        )
        .unwrap();
        assert_eq!(
            run.receiver.intersection_size,
            serial.receiver.intersection_size
        );
        assert_eq!(run.receiver.ops, serial.receiver.ops);
        assert_eq!(run.sender.ops, serial.sender.ops);
    }

    #[test]
    fn sharded_equijoin_size_matches_serial_with_duplicates() {
        let g = group();
        let mut vs = values(11, 0);
        vs.extend(values(5, 0)); // duplicates
        let mut vr = values(9, 4);
        vr.extend(values(9, 4)); // every value twice
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(700);
                equijoin_size::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(800);
                equijoin_size::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        let pool = EncryptPool::new(0);
        let cfg = tiny_cfg(3);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(700);
                run_equijoin_size_sender(
                    t,
                    &g,
                    &vs,
                    &mut rng,
                    &pool,
                    PipelineConfig::chunked(4),
                    &cfg,
                )
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(800);
                run_equijoin_size_receiver(
                    t,
                    &g,
                    &vr,
                    &mut rng,
                    &pool,
                    PipelineConfig::chunked(4),
                    &cfg,
                )
            },
        )
        .unwrap();
        assert_eq!(run.receiver.join_size, serial.receiver.join_size);
        assert_eq!(
            run.receiver.peer_duplicate_distribution,
            serial.receiver.peer_duplicate_distribution
        );
        assert_eq!(
            run.receiver.class_intersections,
            serial.receiver.class_intersections
        );
        assert_eq!(
            run.sender.peer_duplicate_distribution,
            serial.sender.peer_duplicate_distribution
        );
        assert_eq!(run.receiver.ops, serial.receiver.ops);
        assert_eq!(run.sender.ops, serial.sender.ops);
    }

    #[test]
    fn empty_and_disjoint_sets_shard_cleanly() {
        let g = group();
        let pool = EncryptPool::new(1);
        let cfg = tiny_cfg(4);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                run_intersection_sender(
                    t,
                    &g,
                    &[],
                    &mut rng,
                    &pool,
                    PipelineConfig::default(),
                    &cfg,
                )
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                run_intersection_receiver(
                    t,
                    &g,
                    &values(5, 0),
                    &mut rng,
                    &pool,
                    PipelineConfig::default(),
                    &cfg,
                )
            },
        )
        .unwrap();
        assert!(run.receiver.intersection.is_empty());
        assert_eq!(run.receiver.peer_set_size, 0);
        assert_eq!(run.sender.peer_set_size, 5);
    }

    #[test]
    fn bucket_assignment_is_stable_and_in_range() {
        let g = group();
        for (i, v) in values(50, 0).iter().enumerate() {
            let b = value_bucket(&g, v, 7).unwrap();
            assert!(b < 7, "value {i} bucket {b}");
            assert_eq!(b, value_bucket(&g, v, 7).unwrap());
        }
        assert_eq!(bucket_of(&[], 5), 0);
        assert_eq!(bucket_of(&[0, 0, 0, 0, 0, 0, 0, 9], 1), 0);
    }

    #[test]
    fn pushback_transport_replays_the_first_frame() {
        let (mut a, mut b) = minshare_net::duplex_pair();
        a.send(b"first").unwrap();
        a.send(b"second").unwrap();
        let frame = b.recv().unwrap();
        let mut pb = PushbackTransport::new(frame, &mut b);
        assert_eq!(pb.recv().unwrap(), b"first");
        assert_eq!(pb.recv().unwrap(), b"second");
    }
}
