//! The intersection protocol of §3.3.
//!
//! Outcome (Statements 1–2): the receiver `R` learns `V_S ∩ V_R` and
//! `|V_S|`; the sender `S` learns `|V_R|`; neither learns anything else
//! (semi-honest model, random-oracle hash, DDH).
//!
//! Message flow (with the §6.1 wire optimization — `S` answers `Y_R` in
//! the received order instead of retransmitting each `y`):
//!
//! ```text
//!   R                                    S
//!   Y_R = sort(f_eR(h(V_R)))  ────────▶
//!                             ◀──────── Y_S = sort(f_eS(h(V_S)))
//!                             ◀──────── f_eS(Y_R)   (in Y_R order)
//!   Z_S = f_eR(Y_S);
//!   v ∈ answer ⟺ f_eS(f_eR(h(v))) ∈ Z_S
//! ```

use std::collections::BTreeSet;

use minshare_bignum::UBig;
use minshare_crypto::CommutativeScheme;
use minshare_net::Transport;
use rand::Rng;

use crate::error::ProtocolError;
use crate::prepare::prepare_set;
use crate::stats::OpCounters;
use crate::wire::{require_strictly_sorted, Message};

/// What the sender learns: `|V_R|` (plus its own operation counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionSenderOutput {
    /// The receiver's (deduplicated) set size.
    pub peer_set_size: usize,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// What the receiver learns: the intersection and `|V_S|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionReceiverOutput {
    /// `V_S ∩ V_R`, in ascending value order.
    pub intersection: Vec<Vec<u8>>,
    /// The sender's (deduplicated) set size.
    pub peer_set_size: usize,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// Receives one message and decodes it.
fn recv_message<T: Transport + ?Sized, S: CommutativeScheme>(
    transport: &mut T,
    scheme: &S,
) -> Result<Message, ProtocolError> {
    let frame = transport.recv()?;
    Message::decode(&frame, scheme)
}

/// Expects a `Codewords` message.
pub(crate) fn expect_codewords<T: Transport + ?Sized, S: CommutativeScheme>(
    transport: &mut T,
    scheme: &S,
) -> Result<Vec<UBig>, ProtocolError> {
    match recv_message(transport, scheme)? {
        Message::Codewords(list) => Ok(list),
        other => Err(ProtocolError::UnexpectedMessage {
            expected: "codewords",
            got: other.kind(),
        }),
    }
}

/// Runs the sender (`S`) side over `transport`.
///
/// `values` is `V_S` (duplicates are removed, matching the paper's
/// definition of `V_S` as a set).
pub fn run_sender<T: Transport + ?Sized, S: CommutativeScheme, R: Rng + ?Sized>(
    transport: &mut T,
    scheme: &S,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<IntersectionSenderOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Step 1-2: hash and encrypt V_S under a fresh key e_S.
    let prepared = prepare_set(scheme, values, &mut ops)?;
    let key = scheme.key_gen(rng);
    let mut ys: Vec<UBig> = prepared
        .entries
        .iter()
        .map(|(_, h)| {
            ops.encryptions += 1;
            scheme.apply(&key, h)
        })
        .collect();
    ys.sort();

    // Step 3: receive Y_R (sorted, duplicate-free).
    let yr = expect_codewords(transport, scheme)?;
    require_strictly_sorted(&yr, "Y_R")?;
    let peer_set_size = yr.len();

    // Step 4(a): ship Y_S.
    transport.send(&Message::Codewords(ys).encode(scheme)?)?;

    // Step 4(b): encrypt each y ∈ Y_R with e_S, preserving order.
    let reencrypted: Vec<UBig> = yr
        .iter()
        .map(|y| {
            ops.encryptions += 1;
            scheme.apply(&key, y)
        })
        .collect();
    transport.send(&Message::Codewords(reencrypted).encode(scheme)?)?;

    crate::stats::emit_ops(
        "intersection",
        "sender_done",
        &ops,
        prepared.entries.len(),
        peer_set_size,
    );
    Ok(IntersectionSenderOutput { peer_set_size, ops })
}

/// Runs the receiver (`R`) side over `transport`.
pub fn run_receiver<T: Transport + ?Sized, S: CommutativeScheme, R: Rng + ?Sized>(
    transport: &mut T,
    scheme: &S,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<IntersectionReceiverOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Step 1-2: hash and encrypt V_R under a fresh key e_R.
    let prepared = prepare_set(scheme, values, &mut ops)?;
    let key = scheme.key_gen(rng);
    let mut encrypted: Vec<(UBig, Vec<u8>)> = prepared
        .entries
        .into_iter()
        .map(|(v, h)| {
            ops.encryptions += 1;
            (scheme.apply(&key, &h), v)
        })
        .collect();
    // Step 3: sort lexicographically (footnote 3: never send in V_R order)
    // and remember which value sits where.
    encrypted.sort_by(|a, b| a.0.cmp(&b.0));
    let yr: Vec<UBig> = encrypted.iter().map(|(y, _)| y.clone()).collect();
    transport.send(&Message::Codewords(yr).encode(scheme)?)?;

    // Step 4(a): receive Y_S.
    let ys = expect_codewords(transport, scheme)?;
    require_strictly_sorted(&ys, "Y_S")?;
    let peer_set_size = ys.len();

    // Step 4(b): receive f_eS(Y_R), aligned with our sorted Y_R.
    let reencrypted = expect_codewords(transport, scheme)?;
    if reencrypted.len() != encrypted.len() {
        return Err(ProtocolError::LengthMismatch {
            expected: encrypted.len(),
            got: reencrypted.len(),
        });
    }

    // Step 5: Z_S = f_eR(Y_S).
    let zs: BTreeSet<UBig> = ys
        .iter()
        .map(|y| {
            ops.encryptions += 1;
            scheme.apply(&key, y)
        })
        .collect();

    // Step 6: v is in the intersection iff f_eS(f_eR(h(v))) ∈ Z_S.
    let own_set_size = encrypted.len();
    let mut intersection: Vec<Vec<u8>> = encrypted
        .into_iter()
        .zip(reencrypted)
        .filter(|(_, fes_y)| zs.contains(fes_y))
        .map(|((_, v), _)| v)
        .collect();
    intersection.sort();

    crate::stats::emit_ops(
        "intersection",
        "receiver_done",
        &ops,
        own_set_size,
        peer_set_size,
    );
    Ok(IntersectionReceiverOutput {
        intersection,
        peer_set_size,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_two_party;
    use minshare_crypto::QrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn run(vs: &[&str], vr: &[&str]) -> (IntersectionSenderOutput, IntersectionReceiverOutput) {
        let g = group();
        let vs = to_values(vs);
        let vr = to_values(vr);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(100);
                run_sender(t, &group(), &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(200);
                run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        (run.sender, run.receiver)
    }

    #[test]
    fn basic_intersection() {
        let (s, r) = run(&["a", "b", "c"], &["b", "c", "d"]);
        assert_eq!(r.intersection, to_values(&["b", "c"]));
        assert_eq!(r.peer_set_size, 3);
        assert_eq!(s.peer_set_size, 3);
    }

    #[test]
    fn disjoint_sets() {
        let (_, r) = run(&["a", "b"], &["c", "d"]);
        assert!(r.intersection.is_empty());
    }

    #[test]
    fn identical_sets() {
        let (_, r) = run(&["x", "y", "z"], &["x", "y", "z"]);
        assert_eq!(r.intersection, to_values(&["x", "y", "z"]));
    }

    #[test]
    fn empty_sides() {
        let (s, r) = run(&[], &["a"]);
        assert!(r.intersection.is_empty());
        assert_eq!(r.peer_set_size, 0);
        assert_eq!(s.peer_set_size, 1);
        let (s, r) = run(&["a"], &[]);
        assert!(r.intersection.is_empty());
        assert_eq!(s.peer_set_size, 0);
        assert_eq!(r.peer_set_size, 1);
    }

    #[test]
    fn duplicates_in_input_are_deduplicated() {
        let (s, r) = run(&["a", "a", "b"], &["a", "b", "b"]);
        assert_eq!(r.intersection, to_values(&["a", "b"]));
        assert_eq!(s.peer_set_size, 2);
        assert_eq!(r.peer_set_size, 2);
    }

    #[test]
    fn op_counts_match_section_6_1() {
        // Computation: (Ch + 2Ce)(|V_S| + |V_R|) — i.e. one hash per value
        // and a combined 2(|V_S|+|V_R|) exponentiations.
        let (s, r) = run(&["a", "b", "c", "d"], &["c", "d", "e"]);
        let vs = 4u64;
        let vr = 3u64;
        assert_eq!(s.ops.hashes + r.ops.hashes, vs + vr);
        assert_eq!(
            s.ops.total_ce() + r.ops.total_ce(),
            2 * (vs + vr),
            "2Ce(|VS|+|VR|)"
        );
        // Breakdown: S encrypts V_S and Y_R; R encrypts V_R and Y_S.
        assert_eq!(s.ops.encryptions, vs + vr);
        assert_eq!(r.ops.encryptions, vr + vs);
        assert_eq!(s.ops.decryptions + r.ops.decryptions, 0);
    }
}
