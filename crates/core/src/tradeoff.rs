//! The paper's first future-work question (§7): *"What is the tradeoff
//! between the additional information being disclosed and efficiency?
//! Will we be able to obtain much faster protocols if we are willing to
//! disclose additional information?"*
//!
//! This module answers it constructively with two protocols that disclose
//! a Bloom filter of `V_R` to the sender in exchange for large savings:
//!
//! * [`approximate_size`] — **zero exponentiations**: `R` sends
//!   `BF(V_R)`; `S` replies with the number of its values hitting the
//!   filter. `R` gets `|V_S ∩ V_R|` inflated by false positives
//!   (`≈ fp · |V_S − V_R|`); `S` gains the ability to probe arbitrary
//!   candidates against `BF(V_R)` at the filter's false-positive rate.
//! * [`hybrid_intersection`] — **exact answer, fewer exponentiations**:
//!   the filter prunes `S`'s set to candidates before the §3.3 protocol
//!   runs, cutting the sender's `Ce` work from `2|V_S| + |V_R|`-ish to
//!   `2|C| + |V_R|`-ish, where `|C| ≈ |∩| + fp·|V_S|`. The answer is
//!   exact (Bloom filters have no false negatives); the extra disclosure
//!   is the same filter, plus `R` now learns `|C|` instead of `|V_S|`.
//!
//! Both quantify their own disclosure so the bench harness can print the
//! full tradeoff curve (experiment E15).
//!
//! This file carries a WIRE01 exemption in the analyzer's taint
//! registry (`WIRE01_EXEMPT_FILES`): sending `BF(V_R)` — hash buckets
//! of raw values — is exactly the *deliberate* extra disclosure §7
//! trades for speed, so the "nothing but h-then-enc on the wire" proof
//! excludes this module by design. Keep all such sends in this file.

use minshare_crypto::QrGroup;
use minshare_hash::bloom::BloomFilter;
use minshare_net::Transport;
use rand::Rng;

use crate::error::ProtocolError;
use crate::intersection;

/// Disclosure report for the Bloom-filter message: what `S` can now do
/// with it.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterDisclosure {
    /// Bits shipped.
    pub filter_bits: u64,
    /// The filter's false-positive rate at its observed fill — i.e. the
    /// confidence `S` gets when probing an arbitrary candidate value.
    pub probe_confidence: f64,
}

/// Receiver output of the approximate-size protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxSizeReceiverOutput {
    /// `|{v ∈ V_S : BF(V_R) hit}| ≥ |V_S ∩ V_R|`.
    pub approximate_size: u64,
}

/// Sender output of the approximate-size protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxSizeSenderOutput {
    /// The disclosure `S` received.
    pub disclosure: FilterDisclosure,
    /// How many of `S`'s values hit the filter (what it reported).
    pub hits: u64,
}

const TAG_COUNT: u8 = 0x60;

/// Namespaced protocols answering the §7 efficiency/disclosure question.
pub mod approximate_size {
    use super::*;

    /// `R` side: sends `BF(V_R)` sized for `target_fp`, receives the hit
    /// count. Performs **no** modular exponentiation.
    pub fn run_receiver<T: Transport + ?Sized>(
        transport: &mut T,
        values: &[Vec<u8>],
        target_fp: f64,
    ) -> Result<ApproxSizeReceiverOutput, ProtocolError> {
        let mut filter = BloomFilter::with_rate(values.len().max(1), target_fp);
        for v in values {
            filter.insert(v);
        }
        transport.send(&filter.to_bytes())?;
        let reply = transport.recv()?;
        if reply.len() != 9 || reply[0] != TAG_COUNT {
            return Err(ProtocolError::MalformedMessage {
                detail: "expected count frame".to_string(),
            });
        }
        let mut c = [0u8; 8];
        c.copy_from_slice(&reply[1..]);
        Ok(ApproxSizeReceiverOutput {
            approximate_size: u64::from_be_bytes(c),
        })
    }

    /// `S` side: receives the filter, counts hits among `V_S`, replies.
    pub fn run_sender<T: Transport + ?Sized>(
        transport: &mut T,
        values: &[Vec<u8>],
    ) -> Result<ApproxSizeSenderOutput, ProtocolError> {
        let frame = transport.recv()?;
        let filter =
            BloomFilter::from_bytes(&frame).ok_or_else(|| ProtocolError::MalformedMessage {
                detail: "invalid Bloom filter".to_string(),
            })?;
        let distinct: std::collections::BTreeSet<&Vec<u8>> = values.iter().collect();
        let hits = distinct.iter().filter(|v| filter.contains(v)).count() as u64;
        let mut reply = vec![TAG_COUNT];
        reply.extend_from_slice(&hits.to_be_bytes());
        transport.send(&reply)?;
        Ok(ApproxSizeSenderOutput {
            disclosure: FilterDisclosure {
                filter_bits: filter.wire_bits(),
                probe_confidence: 1.0 - filter.false_positive_rate(),
            },
            hits,
        })
    }
}

/// Exact intersection with Bloom prefiltering.
pub mod hybrid_intersection {
    use super::*;

    /// Sender output: the exact protocol's output plus the candidate-set
    /// statistics that quantify the saving.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct HybridSenderOutput {
        /// Output of the inner exact protocol.
        pub inner: intersection::IntersectionSenderOutput,
        /// `|V_S|` before filtering.
        pub original_size: usize,
        /// `|C|`: values that survived the filter and entered the exact
        /// protocol.
        pub candidate_size: usize,
    }

    /// `R` side: ship the filter, then run the ordinary §3.3 receiver.
    /// The answer is exact; `R` learns `|C|` (not `|V_S|`).
    pub fn run_receiver<T: Transport + ?Sized, R: Rng + ?Sized>(
        transport: &mut T,
        group: &QrGroup,
        values: &[Vec<u8>],
        target_fp: f64,
        rng: &mut R,
    ) -> Result<intersection::IntersectionReceiverOutput, ProtocolError> {
        let mut filter = BloomFilter::with_rate(values.len().max(1), target_fp);
        for v in values {
            filter.insert(v);
        }
        transport.send(&filter.to_bytes())?;
        intersection::run_receiver(transport, group, values, rng)
    }

    /// `S` side: prune `V_S` by the filter, then run the ordinary sender
    /// on the candidates only.
    pub fn run_sender<T: Transport + ?Sized, R: Rng + ?Sized>(
        transport: &mut T,
        group: &QrGroup,
        values: &[Vec<u8>],
        rng: &mut R,
    ) -> Result<HybridSenderOutput, ProtocolError> {
        let frame = transport.recv()?;
        let filter =
            BloomFilter::from_bytes(&frame).ok_or_else(|| ProtocolError::MalformedMessage {
                detail: "invalid Bloom filter".to_string(),
            })?;
        let distinct: std::collections::BTreeSet<&Vec<u8>> = values.iter().collect();
        let original_size = distinct.len();
        let candidates: Vec<Vec<u8>> = distinct
            .into_iter()
            .filter(|v| filter.contains(v))
            .cloned()
            .collect();
        let candidate_size = candidates.len();
        let inner = intersection::run_sender(transport, group, &candidates, rng)?;
        Ok(HybridSenderOutput {
            inner,
            original_size,
            candidate_size,
        })
    }
}

/// The cost model of the tradeoff, for the E15 experiment: exact-protocol
/// `Ce` vs. hybrid `Ce` at a given false-positive rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffEstimate {
    /// `Ce` operations of the exact §3.3 protocol.
    pub exact_ce: u64,
    /// Expected `Ce` operations of the hybrid.
    pub hybrid_ce: f64,
    /// Expected candidate-set size entering the hybrid's inner protocol.
    pub expected_candidates: f64,
}

/// Predicts the hybrid's saving for `|V_S| = vs`, `|V_R| = vr`,
/// intersection `common`, at filter rate `fp`.
pub fn estimate(vs: u64, vr: u64, common: u64, fp: f64) -> TradeoffEstimate {
    let candidates = common as f64 + (vs - common) as f64 * fp;
    TradeoffEstimate {
        exact_ce: 2 * (vs + vr),
        hybrid_ce: 2.0 * (candidates + vr as f64),
        expected_candidates: candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_two_party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn approximate_size_upper_bounds_truth() {
        let vs = to_values(&["a", "b", "c", "d", "e", "f"]);
        let vr = to_values(&["c", "d", "x"]);
        let run = run_two_party(
            |t| approximate_size::run_sender(t, &vs),
            |t| approximate_size::run_receiver(t, &vr, 0.01),
        )
        .unwrap();
        // No false negatives: approx ≥ true (= 2); tight FP keeps it low.
        assert!(run.receiver.approximate_size >= 2);
        assert!(run.receiver.approximate_size <= vs.len() as u64);
        assert_eq!(run.sender.hits, run.receiver.approximate_size);
        assert!(run.sender.disclosure.filter_bits > 0);
        assert!(run.sender.disclosure.probe_confidence > 0.9);
    }

    #[test]
    fn approximate_size_uses_zero_exponentiations_and_tiny_traffic() {
        let vs = to_values(&["a", "b", "c"]);
        let vr = to_values(&["b"]);
        let run = run_two_party(
            |t| approximate_size::run_sender(t, &vs),
            |t| approximate_size::run_receiver(t, &vr, 0.01),
        )
        .unwrap();
        // Both frames together: filter (tens of bytes) + 9-byte count —
        // versus (|VS|+2|VR|)·k bits for the exact protocol.
        assert!(run.total_bits() < 2000, "{}", run.total_bits());
    }

    #[test]
    fn hybrid_is_exact_and_cheaper() {
        let g = group();
        // Large sender set, tiny intersection: the regime where the
        // hybrid pays off.
        let vs: Vec<Vec<u8>> = (0..60u32).map(|i| format!("s{i}").into_bytes()).collect();
        let mut vr: Vec<Vec<u8>> = (0..5u32).map(|i| format!("s{i}").into_bytes()).collect();
        vr.push(b"r-only".to_vec());

        let hybrid = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                hybrid_intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                hybrid_intersection::run_receiver(t, &g, &vr, 0.01, &mut rng)
            },
        )
        .unwrap();
        // Exact answer.
        let expect: Vec<Vec<u8>> = (0..5u32).map(|i| format!("s{i}").into_bytes()).collect();
        assert_eq!(hybrid.receiver.intersection, expect);
        // Much cheaper: candidates ≈ 5 ≪ 60.
        assert!(
            hybrid.sender.candidate_size < 15,
            "{}",
            hybrid.sender.candidate_size
        );
        assert_eq!(hybrid.sender.original_size, 60);
        let exact_ce = 2 * (60 + 6) as u64;
        let hybrid_ce = hybrid.sender.inner.ops.total_ce() + hybrid.receiver.ops.total_ce();
        assert!(
            hybrid_ce < exact_ce / 2,
            "hybrid {hybrid_ce} vs exact {exact_ce}"
        );
    }

    #[test]
    fn hybrid_with_empty_receiver() {
        let g = group();
        let vs = to_values(&["a", "b"]);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(3);
                hybrid_intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(4);
                hybrid_intersection::run_receiver(t, &g, &[], 0.01, &mut rng)
            },
        )
        .unwrap();
        assert!(run.receiver.intersection.is_empty());
    }

    #[test]
    fn estimate_shapes() {
        let e = estimate(1000, 100, 10, 0.01);
        assert_eq!(e.exact_ce, 2200);
        // candidates ≈ 10 + 990·0.01 ≈ 19.9 → hybrid ≈ 240.
        assert!((e.expected_candidates - 19.9).abs() < 0.01);
        assert!(e.hybrid_ce < 250.0);
        // At fp = 1 the hybrid degenerates to the exact cost.
        let full = estimate(1000, 100, 10, 1.0);
        assert_eq!(full.hybrid_ce, full.exact_ce as f64);
    }

    #[test]
    fn malformed_filter_rejected() {
        let vs = to_values(&["a"]);
        let err = run_two_party(
            |t| approximate_size::run_sender(t, &vs),
            |t| {
                t.send(&[1, 2, 3])?; // not a filter
                let _ = t.recv();
                Ok(())
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ProtocolError::MalformedMessage { .. }),
            "{err}"
        );
    }
}
