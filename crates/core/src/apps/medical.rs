//! Medical research (§1.1 Application 2, Figure 2, costed in §6.2.2).
//!
//! A researcher `T` validates a hypothesis linking DNA pattern `D` to a
//! reaction to drug `G`. Enterprise `R` holds `T_R(personid, pattern)`;
//! enterprise `S` holds `T_S(personid, drug, reaction)`. `T` needs the
//! contingency table
//!
//! ```sql
//! select pattern, reaction, count(*)
//! from TR, TS
//! where TR.personid = TS.personid and TS.drug = 'true'
//! group by TR.pattern, TS.reaction
//! ```
//!
//! without anyone learning anything about individuals. Figure 2's plan:
//! four **intersection-size** runs — one per (pattern, reaction) cell —
//! using the modified protocol in which `Z_R` and `Z_S` are sent to `T`
//! instead of back to `S` and `R`; set differences like `V_R − V_R'` are
//! computed locally before entering the protocol.

use std::collections::BTreeSet;

use minshare_bignum::UBig;
use minshare_crypto::QrGroup;
use minshare_net::{duplex_pair, CountingTransport, Transport};
use minshare_privdb::{query, ColumnType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ProtocolError;
use crate::prepare::prepare_set;
use crate::stats::OpCounters;
use crate::wire::{require_strictly_sorted, Message};

/// The 2×2 contingency table the researcher obtains:
/// `counts[pattern][reaction]` over people who took the drug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MedicalCounts {
    /// `counts[p][r]` = number of drug-takers with `pattern == (p == 1)`
    /// and `reaction == (r == 1)`.
    pub counts: [[u64; 2]; 2],
}

/// Aggregate cost of the four protocol runs.
#[derive(Debug, Clone, Default)]
pub struct MedicalCost {
    /// Operation counts across all parties and runs.
    pub ops: OpCounters,
    /// Total bits on the wire across all runs and links.
    pub total_bits: u64,
}

/// Builds `T_R(personid, pattern)`.
pub fn make_tr(rows: &[(i64, bool)]) -> Result<Table, ProtocolError> {
    let schema = Schema::new(vec![
        ("personid", ColumnType::Int),
        ("pattern", ColumnType::Bool),
    ])?;
    let mut t = Table::new("TR", schema);
    for (id, pattern) in rows {
        t.insert(vec![Value::Int(*id), Value::Bool(*pattern)])?;
    }
    Ok(t)
}

/// Builds `T_S(personid, drug, reaction)`.
pub fn make_ts(rows: &[(i64, bool, bool)]) -> Result<Table, ProtocolError> {
    let schema = Schema::new(vec![
        ("personid", ColumnType::Int),
        ("drug", ColumnType::Bool),
        ("reaction", ColumnType::Bool),
    ])?;
    let mut t = Table::new("TS", schema);
    for (id, drug, reaction) in rows {
        t.insert(vec![
            Value::Int(*id),
            Value::Bool(*drug),
            Value::Bool(*reaction),
        ])?;
    }
    Ok(t)
}

/// Reads one cell of a row by column index, as a typed error rather
/// than an indexing panic if the row is narrower than its schema.
fn cell<'a>(row: &'a [Value], idx: usize) -> Result<&'a Value, ProtocolError> {
    row.get(idx).ok_or_else(|| ProtocolError::MalformedMessage {
        detail: format!("table row has no column {idx}"),
    })
}

/// Writes one contingency-table cell; `p`/`x` come from bool casts and
/// are always in range, so an out-of-range pair is simply ignored.
fn set_count(counts: &mut [[u64; 2]; 2], p: usize, x: usize, n: u64) {
    if let Some(c) = counts.get_mut(p).and_then(|r| r.get_mut(x)) {
        *c = n;
    }
}

/// Extracts person-id value sets: Figure 2's local preprocessing.
/// Returns `(V_R', V_R − V_R', V_S', V_S − V_S')` where `V_R'` = ids whose
/// DNA matches, `V_S'` = drug-takers with an adverse reaction, and `V_S`
/// = all drug-takers.
pub fn partition_ids(tr: &Table, ts: &Table) -> Result<[Vec<Vec<u8>>; 4], ProtocolError> {
    let pattern_idx = tr.schema().index_of("pattern")?;
    let id_idx_r = tr.schema().index_of("personid")?;
    let drug_idx = ts.schema().index_of("drug")?;
    let reaction_idx = ts.schema().index_of("reaction")?;
    let id_idx_s = ts.schema().index_of("personid")?;

    let encode = |v: &Value| minshare_privdb::rowcodec::encode_value(v);

    let mut r_match = BTreeSet::new();
    let mut r_nomatch = BTreeSet::new();
    for row in tr.rows() {
        let set = if cell(row, pattern_idx)? == &Value::Bool(true) {
            &mut r_match
        } else {
            &mut r_nomatch
        };
        set.insert(encode(cell(row, id_idx_r)?));
    }
    let mut s_reaction = BTreeSet::new();
    let mut s_noreaction = BTreeSet::new();
    for row in ts.rows() {
        if cell(row, drug_idx)? != &Value::Bool(true) {
            continue; // TS.drug = "true" filter
        }
        let set = if cell(row, reaction_idx)? == &Value::Bool(true) {
            &mut s_reaction
        } else {
            &mut s_noreaction
        };
        set.insert(encode(cell(row, id_idx_s)?));
    }
    Ok([
        r_match.into_iter().collect(),
        r_nomatch.into_iter().collect(),
        s_reaction.into_iter().collect(),
        s_noreaction.into_iter().collect(),
    ])
}

/// Output of one three-party intersection-size run, as seen by `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreePartyRun {
    /// `|V_S ∩ V_R|`, learned by the researcher.
    pub intersection_size: usize,
    /// `|V_R|` (revealed to `T` by `|Z_R|`).
    pub vr_size: usize,
    /// `|V_S|` (revealed to `T` by `|Z_S|`).
    pub vs_size: usize,
    /// Combined op counts of `R` and `S`.
    pub ops: OpCounters,
    /// Total bits over all three links.
    pub total_bits: u64,
}

/// The modified intersection-size protocol of §6.2.2: `R` and `S`
/// exchange encrypted sets as usual, but the double-encrypted sets `Z_S`
/// and `Z_R` go to the researcher `T`, who alone learns the size.
pub fn three_party_intersection_size(
    group: &QrGroup,
    vs: &[Vec<u8>],
    vr: &[Vec<u8>],
    seed: u64,
) -> Result<ThreePartyRun, ProtocolError> {
    // Links: R↔S, R→T, S→T.
    let (rs_r, rs_s) = duplex_pair();
    let (rt_r, rt_t) = duplex_pair();
    let (st_s, st_t) = duplex_pair();
    let (mut rs_r, rs_r_stats) = CountingTransport::new(rs_r);
    let (mut rs_s, _) = CountingTransport::new(rs_s);
    let (mut rt_r, rt_stats) = CountingTransport::new(rt_r);
    let (mut st_s, st_stats) = CountingTransport::new(st_s);
    let mut rt_t = rt_t;
    let mut st_t = st_t;

    let run = std::thread::scope(|scope| -> Result<ThreePartyRun, ProtocolError> {
        // Party R.
        let r_handle = scope.spawn({
            let group = group.clone();
            move || -> Result<OpCounters, ProtocolError> {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x1111);
                let mut ops = OpCounters::default();
                let prepared = prepare_set(&group, vr, &mut ops)?;
                let key = group.gen_key(&mut rng);
                let mut yr: Vec<UBig> = prepared
                    .entries
                    .iter()
                    .map(|(_, h)| {
                        ops.encryptions += 1;
                        group.encrypt(&key, h)
                    })
                    .collect();
                yr.sort();
                rs_r.send(&Message::Codewords(yr).encode(&group)?)?;
                // Receive Y_S from S.
                let ys = match Message::decode(&rs_r.recv()?, &group)? {
                    Message::Codewords(l) => l,
                    other => {
                        return Err(ProtocolError::UnexpectedMessage {
                            expected: "codewords",
                            got: other.kind(),
                        })
                    }
                };
                require_strictly_sorted(&ys, "Y_S")?;
                // Z_S = f_eR(Y_S) → researcher.
                let mut zs: Vec<UBig> = ys
                    .iter()
                    .map(|y| {
                        ops.encryptions += 1;
                        group.encrypt(&key, y)
                    })
                    .collect();
                zs.sort();
                rt_r.send(&Message::Codewords(zs).encode(&group)?)?;
                Ok(ops)
            }
        });

        // Party S.
        let s_handle = scope.spawn({
            let group = group.clone();
            move || -> Result<OpCounters, ProtocolError> {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x2222);
                let mut ops = OpCounters::default();
                let prepared = prepare_set(&group, vs, &mut ops)?;
                let key = group.gen_key(&mut rng);
                let mut ys: Vec<UBig> = prepared
                    .entries
                    .iter()
                    .map(|(_, h)| {
                        ops.encryptions += 1;
                        group.encrypt(&key, h)
                    })
                    .collect();
                ys.sort();
                // Receive Y_R, send Y_S.
                let yr = match Message::decode(&rs_s.recv()?, &group)? {
                    Message::Codewords(l) => l,
                    other => {
                        return Err(ProtocolError::UnexpectedMessage {
                            expected: "codewords",
                            got: other.kind(),
                        })
                    }
                };
                require_strictly_sorted(&yr, "Y_R")?;
                rs_s.send(&Message::Codewords(ys).encode(&group)?)?;
                // Z_R = f_eS(Y_R) → researcher.
                let mut zr: Vec<UBig> = yr
                    .iter()
                    .map(|y| {
                        ops.encryptions += 1;
                        group.encrypt(&key, y)
                    })
                    .collect();
                zr.sort();
                st_s.send(&Message::Codewords(zr).encode(&group)?)?;
                Ok(ops)
            }
        });

        // Party T (researcher): receives Z_S and Z_R only.
        let t_handle = scope.spawn({
            let group = group.clone();
            move || -> Result<(usize, usize, usize), ProtocolError> {
                let zs = match Message::decode(&rt_t.recv()?, &group)? {
                    Message::Codewords(l) => l,
                    other => {
                        return Err(ProtocolError::UnexpectedMessage {
                            expected: "codewords",
                            got: other.kind(),
                        })
                    }
                };
                let zr = match Message::decode(&st_t.recv()?, &group)? {
                    Message::Codewords(l) => l,
                    other => {
                        return Err(ProtocolError::UnexpectedMessage {
                            expected: "codewords",
                            got: other.kind(),
                        })
                    }
                };
                let zs_set: BTreeSet<&UBig> = zs.iter().collect();
                let size = zr.iter().filter(|z| zs_set.contains(z)).count();
                Ok((size, zr.len(), zs.len()))
            }
        });

        let r_ops = t_join(r_handle, "receiver")??;
        let s_ops = t_join(s_handle, "sender")??;
        let (intersection_size, vr_size, vs_size) = t_join(t_handle, "researcher")??;
        Ok(ThreePartyRun {
            intersection_size,
            vr_size,
            vs_size,
            ops: r_ops + s_ops,
            total_bits: 0, // filled below
        })
    })?;

    let total_bits = (rs_r_stats.bytes_sent()
        + rs_r_stats.bytes_received()
        + rt_stats.bytes_sent()
        + st_stats.bytes_sent())
        * 8;
    Ok(ThreePartyRun { total_bits, ..run })
}

/// Joins a scoped thread, mapping panics to protocol errors.
fn t_join<'scope, O>(
    handle: std::thread::ScopedJoinHandle<'scope, O>,
    party: &'static str,
) -> Result<O, ProtocolError> {
    handle
        .join()
        .map_err(|_| ProtocolError::PartyPanicked { party })
}

/// Runs the full Figure 2 study: four three-party intersection sizes.
pub fn run_medical_study(
    group: &QrGroup,
    tr: &Table,
    ts: &Table,
    seed: u64,
) -> Result<(MedicalCounts, MedicalCost), ProtocolError> {
    let [r_match, r_nomatch, s_reaction, s_noreaction] = partition_ids(tr, ts)?;
    let mut counts = [[0u64; 2]; 2];
    let mut cost = MedicalCost::default();
    let cells = [
        (1usize, 1usize, &r_match, &s_reaction),
        (1, 0, &r_match, &s_noreaction),
        (0, 1, &r_nomatch, &s_reaction),
        (0, 0, &r_nomatch, &s_noreaction),
    ];
    for (i, (p, x, vr, vs)) in cells.into_iter().enumerate() {
        let run = three_party_intersection_size(group, vs, vr, seed.wrapping_add(i as u64))?;
        set_count(&mut counts, p, x, run.intersection_size as u64);
        cost.ops += run.ops;
        cost.total_bits += run.total_bits;
    }
    Ok((MedicalCounts { counts }, cost))
}

/// Ground truth: the same contingency table computed in the clear with
/// the relational substrate (what a trusted third party would return).
pub fn medical_counts_in_clear(tr: &Table, ts: &Table) -> Result<MedicalCounts, ProtocolError> {
    let joined = query::equijoin(tr, "personid", ts, "personid")?;
    let drug_idx = joined.schema().index_of("drug")?;
    let took = joined.filter("took_drug", |row| {
        row.get(drug_idx) == Some(&Value::Bool(true))
    });
    let grouped = query::group_by_count(&took, &["pattern", "reaction"])?;
    let mut counts = [[0u64; 2]; 2];
    for row in grouped.rows() {
        let p = (cell(row, 0)? == &Value::Bool(true)) as usize;
        let x = (cell(row, 1)? == &Value::Bool(true)) as usize;
        set_count(&mut counts, p, x, cell(row, 2)?.as_int().unwrap_or(0) as u64);
    }
    Ok(MedicalCounts { counts })
}

/// The same ground truth through the SQL front end — literally the query
/// the paper prints in §1.1:
///
/// ```sql
/// select pattern, reaction, count(*)
/// from TR join TS on TR.personid = TS.personid
/// where TS.drug = true
/// group by pattern, reaction
/// ```
pub fn medical_counts_via_sql(tr: &Table, ts: &Table) -> Result<MedicalCounts, ProtocolError> {
    let mut catalog = minshare_privdb::sql::Catalog::new();
    catalog.register(tr.clone());
    catalog.register(ts.clone());
    let result = minshare_privdb::sql::execute(
        &catalog,
        "select pattern, reaction, count(*) \
         from TR join TS on TR.personid = TS.personid \
         where TS.drug = true \
         group by pattern, reaction",
    )?;
    let mut counts = [[0u64; 2]; 2];
    for row in result.rows() {
        let p = (cell(row, 0)? == &Value::Bool(true)) as usize;
        let x = (cell(row, 1)? == &Value::Bool(true)) as usize;
        set_count(&mut counts, p, x, cell(row, 2)?.as_int().unwrap_or(0) as u64);
    }
    Ok(MedicalCounts { counts })
}

/// Generates synthetic study data: `n` people; DNA pattern with
/// probability `p_pattern`; drug taken with probability `p_drug`;
/// reaction correlated with the pattern (`p_reaction_given_pattern` vs
/// `p_reaction_base`).
pub fn synthetic_study<R: Rng>(
    rng: &mut R,
    n: usize,
    p_pattern: f64,
    p_drug: f64,
    p_reaction_given_pattern: f64,
    p_reaction_base: f64,
) -> Result<(Table, Table), ProtocolError> {
    let mut tr_rows = Vec::with_capacity(n);
    let mut ts_rows = Vec::with_capacity(n);
    for id in 0..n as i64 {
        let pattern = rng.random_bool(p_pattern);
        let drug = rng.random_bool(p_drug);
        let p_reaction = if pattern {
            p_reaction_given_pattern
        } else {
            p_reaction_base
        };
        let reaction = drug && rng.random_bool(p_reaction);
        tr_rows.push((id, pattern));
        ts_rows.push((id, drug, reaction));
    }
    Ok((make_tr(&tr_rows)?, make_ts(&ts_rows)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn three_party_size_is_correct_and_blind() {
        let g = group();
        let vs: Vec<Vec<u8>> = [1u8, 2, 3, 4].iter().map(|b| vec![*b]).collect();
        let vr: Vec<Vec<u8>> = [3u8, 4, 5].iter().map(|b| vec![*b]).collect();
        let run = three_party_intersection_size(&g, &vs, &vr, 9).unwrap();
        assert_eq!(run.intersection_size, 2);
        assert_eq!(run.vs_size, 4);
        assert_eq!(run.vr_size, 3);
        // Four encrypting passes: V_S, V_R, Y_S, Y_R → 2(|VS|+|VR|) Ce.
        assert_eq!(run.ops.total_ce(), 2 * (4 + 3));
        assert!(run.total_bits > 0);
    }

    #[test]
    fn study_matches_clear_counts() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(33);
        let (tr, ts) = synthetic_study(&mut rng, 40, 0.4, 0.6, 0.7, 0.2).unwrap();
        let (private, _) = run_medical_study(&g, &tr, &ts, 123).unwrap();
        let clear = medical_counts_in_clear(&tr, &ts).unwrap();
        assert_eq!(private, clear);
        // Third oracle: the paper's SQL, run through the SQL front end.
        let via_sql = medical_counts_via_sql(&tr, &ts).unwrap();
        assert_eq!(private, via_sql);
    }

    #[test]
    fn partition_respects_drug_filter() {
        let tr = make_tr(&[(1, true), (2, false), (3, true)]).unwrap();
        let ts = make_ts(&[
            (1, true, true),
            (2, false, true), // did not take the drug → excluded
            (3, true, false),
        ])
        .unwrap();
        let [rm, rn, sr, sn] = partition_ids(&tr, &ts).unwrap();
        assert_eq!(rm.len(), 2); // persons 1, 3 have the pattern
        assert_eq!(rn.len(), 1); // person 2
        assert_eq!(sr.len(), 1); // person 1 (drug + reaction)
        assert_eq!(sn.len(), 1); // person 3 (drug, no reaction)
    }

    #[test]
    fn empty_cells_are_zero() {
        let g = group();
        let tr = make_tr(&[(1, true)]).unwrap();
        let ts = make_ts(&[(1, true, true)]).unwrap();
        let (counts, _) = run_medical_study(&g, &tr, &ts, 5).unwrap();
        assert_eq!(counts.counts[1][1], 1);
        assert_eq!(counts.counts[0][0], 0);
        assert_eq!(counts.counts[0][1], 0);
        assert_eq!(counts.counts[1][0], 0);
    }

    #[test]
    fn clear_oracle_handles_missing_people() {
        // Person in TS but not TR and vice versa — the join drops them.
        let tr = make_tr(&[(1, true), (99, false)]).unwrap();
        let ts = make_ts(&[(1, true, false), (50, true, true)]).unwrap();
        let clear = medical_counts_in_clear(&tr, &ts).unwrap();
        assert_eq!(clear.counts[1][0], 1);
        assert_eq!(
            clear.counts[0][0] + clear.counts[0][1] + clear.counts[1][1],
            0
        );
    }
}
