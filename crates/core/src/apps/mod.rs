//! The paper's two motivating applications (§1.1), built on the
//! protocols: selective document sharing (§6.2.1) and medical research
//! (§6.2.2 / Figure 2).

pub mod docshare;
pub mod medical;
