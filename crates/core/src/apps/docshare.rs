//! Selective document sharing (§1.1 Application 1, costed in §6.2.1).
//!
//! Two enterprises hold document sets `D_R`, `D_S`. Documents are
//! preprocessed to their most significant words by TF-IDF (the paper cites
//! Salton & McGill \[41\]); the parties then find all pairs with
//! `f(|d_R ∩ d_S|, |d_R|, |d_S|) > τ` — here the paper's example
//! similarity `f = |d_R ∩ d_S| / (|d_R| + |d_S|)` — by running one
//! **intersection-size** protocol per document pair. Per §6.2.1, beyond
//! the sizes this reveals to `R` which documents matched and each
//! pairwise overlap; nothing about non-matching words crosses the wire.

use std::collections::{BTreeMap, BTreeSet};

use minshare_crypto::QrGroup;
use rand::Rng;

use crate::error::ProtocolError;
use crate::intersection_size;
use crate::runner::run_two_party;
use crate::stats::OpCounters;

/// A raw document: an id and its word sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Stable identifier.
    pub id: String,
    /// Words in document order (repetitions allowed).
    pub words: Vec<String>,
}

/// A preprocessed document: the significant-word *set* the protocol runs
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignificantDoc {
    /// Stable identifier.
    pub id: String,
    /// The selected significant words.
    pub words: BTreeSet<String>,
}

impl SignificantDoc {
    /// The word set as protocol input values.
    pub fn values(&self) -> Vec<Vec<u8>> {
        self.words.iter().map(|w| w.as_bytes().to_vec()).collect()
    }
}

/// TF-IDF preprocessing: keeps each document's `top_n` highest-scoring
/// words, `score(w, d) = tf(w, d) · ln(N / df(w))`.
pub fn significant_words(corpus: &[Document], top_n: usize) -> Vec<SignificantDoc> {
    let n_docs = corpus.len() as f64;
    // Document frequency per word.
    let mut df: BTreeMap<&String, f64> = BTreeMap::new();
    for doc in corpus {
        let distinct: BTreeSet<&String> = doc.words.iter().collect();
        for w in distinct {
            *df.entry(w).or_insert(0.0) += 1.0;
        }
    }
    corpus
        .iter()
        .map(|doc| {
            let mut tf: BTreeMap<&String, f64> = BTreeMap::new();
            for w in &doc.words {
                *tf.entry(w).or_insert(0.0) += 1.0;
            }
            let len = doc.words.len().max(1) as f64;
            let mut scored: Vec<(&String, f64)> = tf
                .into_iter()
                .map(|(w, count)| {
                    let idf = (n_docs / df[w]).ln().max(0.0);
                    (w, (count / len) * idf)
                })
                .collect();
            // Highest score first; ties broken lexicographically for
            // determinism.
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(b.0))
            });
            SignificantDoc {
                id: doc.id.clone(),
                words: scored
                    .into_iter()
                    .take(top_n)
                    .map(|(w, _)| w.clone())
                    .collect(),
            }
        })
        .collect()
}

/// One matched document pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedPair {
    /// Receiver-side document id.
    pub r_id: String,
    /// Sender-side document id.
    pub s_id: String,
    /// `|d_R ∩ d_S|` as learned by the protocol.
    pub overlap: usize,
    /// `f = overlap / (|d_R| + |d_S|)`.
    pub score: f64,
}

/// Result of a full similarity join, with aggregate cost accounting.
#[derive(Debug, Clone)]
pub struct SimilarityJoinReport {
    /// Pairs whose similarity exceeded the threshold.
    pub matches: Vec<MatchedPair>,
    /// Number of protocol instances executed (`|D_R| · |D_S|`).
    pub protocol_runs: usize,
    /// Combined operation counts across all runs and both parties.
    pub total_ops: OpCounters,
    /// Total wire traffic across all runs, in bits.
    pub total_bits: u64,
}

/// Runs the §6.2.1 similarity join: one intersection-size protocol per
/// document pair, then the similarity filter.
pub fn similarity_join<R: Rng>(
    group: &QrGroup,
    receiver_docs: &[SignificantDoc],
    sender_docs: &[SignificantDoc],
    threshold: f64,
    rng: &mut R,
) -> Result<SimilarityJoinReport, ProtocolError> {
    let mut matches = Vec::new();
    let mut total_ops = OpCounters::default();
    let mut total_bits = 0u64;
    let mut protocol_runs = 0usize;

    for d_r in receiver_docs {
        for d_s in sender_docs {
            let s_seed: u64 = rng.random();
            let r_seed: u64 = rng.random();
            let s_values = d_s.values();
            let r_values = d_r.values();
            let run = run_two_party(
                |t| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(s_seed);
                    intersection_size::run_sender(t, group, &s_values, &mut rng)
                },
                |t| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(r_seed);
                    intersection_size::run_receiver(t, group, &r_values, &mut rng)
                },
            )?;
            protocol_runs += 1;
            total_ops += run.sender.ops + run.receiver.ops;
            total_bits += run.total_bits();

            let overlap = run.receiver.intersection_size;
            let denom = (d_r.words.len() + d_s.words.len()) as f64;
            let score = if denom == 0.0 {
                0.0
            } else {
                overlap as f64 / denom
            };
            if score > threshold {
                matches.push(MatchedPair {
                    r_id: d_r.id.clone(),
                    s_id: d_s.id.clone(),
                    overlap,
                    score,
                });
            }
        }
    }
    Ok(SimilarityJoinReport {
        matches,
        protocol_runs,
        total_ops,
        total_bits,
    })
}

/// Clear-text oracle for tests: the same join computed locally.
pub fn similarity_join_in_clear(
    receiver_docs: &[SignificantDoc],
    sender_docs: &[SignificantDoc],
    threshold: f64,
) -> Vec<MatchedPair> {
    let mut matches = Vec::new();
    for d_r in receiver_docs {
        for d_s in sender_docs {
            let overlap = d_r.words.intersection(&d_s.words).count();
            let denom = (d_r.words.len() + d_s.words.len()) as f64;
            let score = if denom == 0.0 {
                0.0
            } else {
                overlap as f64 / denom
            };
            if score > threshold {
                matches.push(MatchedPair {
                    r_id: d_r.id.clone(),
                    s_id: d_s.id.clone(),
                    overlap,
                    score,
                });
            }
        }
    }
    matches
}

/// Phase two of Application 1: *"they would like to first find the
/// specific technologies for which there is a match, **and then reveal
/// information only about those technologies**"*.
///
/// After the similarity join, `R` fetches the full text of exactly the
/// matched documents with one §4 equijoin keyed by document id: `S`
/// offers `(doc id, contents)` for its whole corpus, `R` queries with
/// only the matched ids — so `S` learns just how many documents were
/// requested, and `R` receives contents for matched documents only.
pub fn exchange_matched_documents<R: Rng>(
    group: &QrGroup,
    matches: &[MatchedPair],
    sender_contents: &[(String, Vec<u8>)],
    rng: &mut R,
) -> Result<Vec<(String, Vec<u8>)>, ProtocolError> {
    use minshare_crypto::kcipher::HybridCipher;

    let max_len = sender_contents
        .iter()
        .map(|(_, c)| c.len())
        .max()
        .unwrap_or(0)
        .max(1);
    let cipher = HybridCipher::new(group.clone(), max_len);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = sender_contents
        .iter()
        .map(|(id, contents)| (id.as_bytes().to_vec(), contents.clone()))
        .collect();
    let wanted: Vec<Vec<u8>> = matches
        .iter()
        .map(|m| m.s_id.as_bytes().to_vec())
        .collect();

    let s_seed: u64 = rng.random();
    let r_seed: u64 = rng.random();
    let run = run_two_party(
        |t| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(s_seed);
            crate::equijoin::run_sender(t, group, &cipher, &entries, &mut rng)
        },
        |t| {
            let cipher = HybridCipher::new(group.clone(), max_len);
            let mut rng = rand::rngs::StdRng::seed_from_u64(r_seed);
            crate::equijoin::run_receiver(t, group, &cipher, &wanted, &mut rng)
        },
    )?;
    Ok(run
        .receiver
        .matches
        .into_iter()
        .map(|(id, contents)| (String::from_utf8_lossy(&id).into_owned(), contents))
        .collect())
}

/// Generates a synthetic corpus: `n_docs` documents of `words_per_doc`
/// words drawn from a vocabulary of `vocab_size` words, with a fraction
/// of "topic" words shared between consecutive documents so that some
/// pairs genuinely match.
pub fn synthetic_corpus<R: Rng>(
    rng: &mut R,
    prefix: &str,
    n_docs: usize,
    vocab_size: usize,
    words_per_doc: usize,
) -> Vec<Document> {
    (0..n_docs)
        .map(|i| {
            let words = (0..words_per_doc)
                .map(|_| format!("w{}", rng.random_range(0..vocab_size)))
                .collect();
            Document {
                id: format!("{prefix}{i}"),
                words,
            }
        })
        .collect()
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn doc(id: &str, words: &[&str]) -> Document {
        Document {
            id: id.to_string(),
            words: words.iter().map(|w| w.to_string()).collect(),
        }
    }

    fn sig(id: &str, words: &[&str]) -> SignificantDoc {
        SignificantDoc {
            id: id.to_string(),
            words: words.iter().map(|w| w.to_string()).collect(),
        }
    }

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn tfidf_drops_ubiquitous_words() {
        // "the" appears in every document → idf = 0 → never significant.
        let corpus = vec![
            doc("a", &["the", "cat", "sat"]),
            doc("b", &["the", "dog", "ran"]),
            doc("c", &["the", "fox", "hid"]),
        ];
        let sigs = significant_words(&corpus, 2);
        for s in &sigs {
            assert!(!s.words.contains("the"), "doc {}", s.id);
            assert_eq!(s.words.len(), 2);
        }
    }

    #[test]
    fn tfidf_keeps_top_n() {
        let corpus = vec![doc("a", &["x", "x", "x", "y", "z"]), doc("b", &["p", "q"])];
        let sigs = significant_words(&corpus, 1);
        // In doc a, "x" has the highest tf → kept.
        assert!(sigs[0].words.contains("x"));
        assert_eq!(sigs[0].words.len(), 1);
    }

    #[test]
    fn private_join_matches_clear_join() {
        let g = group();
        let r_docs = vec![
            sig("r0", &["alpha", "beta", "gamma", "delta"]),
            sig("r1", &["epsilon", "zeta"]),
        ];
        let s_docs = vec![
            sig("s0", &["alpha", "beta", "gamma", "eta"]),
            sig("s1", &["theta", "iota"]),
        ];
        let mut rng = StdRng::seed_from_u64(77);
        let report = similarity_join(&g, &r_docs, &s_docs, 0.2, &mut rng).unwrap();
        let clear = similarity_join_in_clear(&r_docs, &s_docs, 0.2);
        assert_eq!(report.matches, clear);
        assert_eq!(report.protocol_runs, 4);
        // (r0, s0): overlap 3 of 4+4 → 0.375 > 0.2 — the only match.
        assert_eq!(report.matches.len(), 1);
        assert_eq!(report.matches[0].overlap, 3);
    }

    #[test]
    fn cost_accounting_matches_formula() {
        // §6.2.1: computation per pair is (|d_R| + |d_S|)·2Ce.
        let g = group();
        let r_docs = vec![sig("r0", &["a", "b", "c"])];
        let s_docs = vec![sig("s0", &["b", "c", "d", "e"])];
        let mut rng = StdRng::seed_from_u64(7);
        let report = similarity_join(&g, &r_docs, &s_docs, 0.9, &mut rng).unwrap();
        assert_eq!(report.total_ops.total_ce(), 2 * (3 + 4));
        assert!(report.total_bits > 0);
    }

    #[test]
    fn matched_documents_exchange_reveals_only_matches() {
        let g = group();
        let matches = vec![MatchedPair {
            r_id: "r0".into(),
            s_id: "s1".into(),
            overlap: 3,
            score: 0.4,
        }];
        let contents = vec![
            ("s0".to_string(), b"secret unpublished patent 0".to_vec()),
            ("s1".to_string(), b"matched technology brief".to_vec()),
            ("s2".to_string(), b"secret unpublished patent 2".to_vec()),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        let got = exchange_matched_documents(&g, &matches, &contents, &mut rng).unwrap();
        assert_eq!(
            got,
            vec![("s1".to_string(), b"matched technology brief".to_vec())]
        );
    }

    #[test]
    fn exchange_with_no_matches_is_empty() {
        let g = group();
        let contents = vec![("s0".to_string(), b"private".to_vec())];
        let mut rng = StdRng::seed_from_u64(5);
        let got = exchange_matched_documents(&g, &[], &contents, &mut rng).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn synthetic_corpus_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let corpus = synthetic_corpus(&mut rng, "d", 4, 100, 20);
        assert_eq!(corpus.len(), 4);
        assert!(corpus.iter().all(|d| d.words.len() == 20));
        assert_eq!(corpus[2].id, "d2");
    }
}
