//! Chunk-pipelined protocol engines.
//!
//! §6.2 of the paper: *"We assume that we have P processors that we can
//! utilize in parallel."* The serial engines in [`crate::intersection`]
//! and [`crate::equijoin`] encrypt a whole round before sending a single
//! byte; the engines here overlap the two. Each list crosses the wire
//! under the chunked envelope of [`crate::wire`], and every chunk's
//! exponentiations run as a job on a persistent
//! [`minshare_crypto::EncryptPool`]:
//!
//! * `S` streams `Y_S` chunk by chunk while the pool is still encrypting
//!   later chunks, and answers `Y_R` chunk-for-chunk as re-encryption
//!   jobs drain;
//! * `R` submits `f_eR(Y_S)` work as each `Y_S` chunk lands, overlapping
//!   its own re-encryption with the remaining receives.
//!
//! The message *order* and op counts are identical to the serial engines,
//! and a stream that fits in one chunk is byte-identical to the serial
//! protocol — so the §6.1 cost-model assertions carry over unchanged, and
//! the round-trip tests below check byte-identical *outputs* against the
//! serial path.

use std::collections::{BTreeMap, BTreeSet};

use minshare_bignum::UBig;
use minshare_crypto::kcipher::ExtCipher;
use minshare_crypto::{EncryptPool, PendingBatch, QrGroup};
use minshare_net::Transport;
use rand::{Rng, SeedableRng};

use crate::equijoin::{EquijoinReceiverOutput, EquijoinSenderOutput};
use crate::error::ProtocolError;
use crate::intersection::{IntersectionReceiverOutput, IntersectionSenderOutput};
use crate::prepare::prepare_set;
use crate::stats::OpCounters;
use crate::wire::{
    send_codewords_chunked, send_payload_pairs_chunked, ChunkedReader, ChunkedWriter, Message,
    DEFAULT_CHUNK_SIZE, TAG_CODEWORDS, TAG_CODEWORD_PAIRS, TAG_PAYLOAD_PAIRS,
};

/// Tuning knobs for the pipelined engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Codewords per wire chunk. Lists that fit in one chunk go out as a
    /// plain (serial-compatible) frame.
    pub chunk_size: usize,
    /// Lists shorter than this go out as a single chunk — the serial
    /// fallback. Chunking exists to overlap encryption with the wire;
    /// below the break-even point the envelope and per-chunk job
    /// overhead are pure loss (measurably so on a 1-core host, where
    /// the pool has no workers to overlap with). `0` always pipelines;
    /// `usize::MAX` always falls back. A single-chunk stream is
    /// byte-identical to the serial protocol.
    pub serial_below: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunk_size: DEFAULT_CHUNK_SIZE,
            serial_below: 0,
        }
    }
}

impl PipelineConfig {
    /// A config with an explicit chunk size and no serial fallback.
    pub fn chunked(chunk_size: usize) -> Self {
        PipelineConfig {
            chunk_size,
            serial_below: 0,
        }
    }

    /// Calibrates the knobs against a live pool, preferring the pool's
    /// own live measurements: its dispatch estimate (construction-probe
    /// median refined by observed submit→first-claim latencies) and its
    /// per-item cost EWMA (fed by inline runs and pooled claims alike).
    /// Only when the pool has not yet processed a batch does a quick
    /// inline probe seed the per-item figure. A chunk is sized to
    /// amortize one hand-off to ~10% overhead, and lists that cannot
    /// fill at least two chunks (nothing to overlap) fall back to the
    /// serial single-chunk path. On a pool with no workers (1-core host)
    /// every list falls back — that configuration can only lose to
    /// serial.
    pub fn calibrated(group: &QrGroup, pool: &EncryptPool) -> Self {
        if pool.threads() == 0 {
            return PipelineConfig {
                chunk_size: DEFAULT_CHUNK_SIZE,
                serial_below: usize::MAX,
            };
        }
        let mut item_ns = pool.item_cost_ns();
        if item_ns == 0 {
            // Cold pool: measure a short inline batch to seed the figure
            // (the same kernel path the pool's EWMA tracks).
            const PROBE_ITEMS: usize = 8;
            let probe: Vec<UBig> = (0..PROBE_ITEMS)
                .map(|i| group.hash_to_group(&[b'c', b'a', b'l', i as u8]))
                .collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x9e37_79b9);
            let key = group.gen_key(&mut rng);
            let started = std::time::Instant::now();
            let _ = group.encrypt_many(&key, &probe);
            item_ns = (started.elapsed().as_nanos() / PROBE_ITEMS as u128).max(1) as u64;
        }
        let dispatch_ns = pool.dispatch_overhead_ns().max(1);
        // 10 dispatches' worth of work per chunk ≈ 10% hand-off overhead.
        let chunk_size = usize::try_from(10 * dispatch_ns / item_ns.max(1))
            .unwrap_or(usize::MAX)
            .clamp(DEFAULT_CHUNK_SIZE, 4096);
        PipelineConfig {
            chunk_size,
            serial_below: chunk_size.saturating_mul(2),
        }
    }

    fn chunk(&self) -> usize {
        self.chunk_size.max(1)
    }

    /// Chunk size to use for a list of `n` items: the configured size,
    /// or effectively-unbounded (single serial-compatible frame) for
    /// lists under the fallback threshold.
    pub(crate) fn effective_chunk(&self, n: usize) -> usize {
        if n < self.serial_below {
            usize::MAX
        } else {
            self.chunk()
        }
    }
}

/// Extends an incremental strict-sortedness check across a chunk
/// boundary: each element must exceed the last element of the previous
/// chunk, then ascend within the chunk.
pub(crate) fn require_chunk_strictly_sorted(
    last: &mut Option<UBig>,
    chunk: &[UBig],
    what: &'static str,
) -> Result<(), ProtocolError> {
    for x in chunk {
        if let Some(prev) = last.as_ref() {
            if prev >= x {
                return Err(ProtocolError::NotSorted { what });
            }
        }
        *last = Some(x.clone());
    }
    Ok(())
}

/// Unwraps a `Codewords` chunk (the reader already validated the tag;
/// this keeps the engines panic-free all the same).
pub(crate) fn into_codewords(msg: Message) -> Result<Vec<UBig>, ProtocolError> {
    match msg {
        Message::Codewords(list) => Ok(list),
        other => Err(ProtocolError::UnexpectedMessage {
            expected: "codewords",
            got: other.kind(),
        }),
    }
}

/// Ciphertext half of the sorted `(codeword, value)` pairing a receiver
/// keeps for local matching, in pairing order. The raw values stay in
/// the pairing and never travel; only the pool-encrypted codewords come
/// out of here. Registered as encrypt-class in the analyzer's taint
/// registry, which is what lets WIRE01 prove the subsequent send clean.
fn sorted_codewords(encrypted: &[(UBig, Vec<u8>)]) -> Vec<UBig> {
    encrypted.iter().map(|(y, _)| y.clone()).collect()
}

/// Pipelined intersection sender (`S` side of §3.2). Protocol-equivalent
/// to [`crate::intersection::run_sender`]; encryption runs on `pool` and
/// every list is streamed chunk by chunk.
pub fn run_intersection_sender<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
) -> Result<IntersectionSenderOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Steps 1-2: hash V_S and start encrypting it in the background.
    let prepared = prepare_set(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let hashes: Vec<UBig> = prepared.entries.iter().map(|(_, h)| h.clone()).collect();
    ops.encryptions += hashes.len() as u64;
    let ys_job = pool.submit_encrypt(group, &key, &hashes);

    // Step 3: stream Y_R in, kicking off re-encryption per chunk. The
    // pool crunches Y_S and early Y_R chunks while later chunks are
    // still in flight.
    let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
    let mut last: Option<UBig> = None;
    let mut pending: Vec<PendingBatch> = Vec::new();
    let mut peer_set_size = 0usize;
    while let Some(msg) = reader.next(transport, group)? {
        let chunk = into_codewords(msg)?;
        require_chunk_strictly_sorted(&mut last, &chunk, "Y_R")?;
        peer_set_size += chunk.len();
        ops.encryptions += chunk.len() as u64;
        pending.push(pool.submit_encrypt(group, &key, &chunk));
    }

    // Step 4(a): ship Y_S sorted, chunked (single serial-identical frame
    // below the fallback threshold).
    let mut ys = ys_job.wait();
    ys.sort();
    send_codewords_chunked(transport, group, &ys, config.effective_chunk(ys.len()))?;

    // Step 4(b): answer Y_R chunk-for-chunk as re-encryption jobs drain;
    // chunk k goes on the wire while k+1.. are still encrypting.
    let mut writer =
        ChunkedWriter::begin_with_chunks(transport, TAG_CODEWORDS, peer_set_size, pending.len())?;
    for job in pending {
        writer.send(transport, group, &Message::Codewords(job.wait()))?;
    }
    writer.finish()?;

    crate::stats::emit_ops(
        "intersection",
        "sender_done",
        &ops,
        hashes.len(),
        peer_set_size,
    );
    Ok(IntersectionSenderOutput { peer_set_size, ops })
}

/// Pipelined intersection receiver (`R` side of §3.2).
/// Protocol-equivalent to [`crate::intersection::run_receiver`].
pub fn run_intersection_receiver<T: Transport + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
) -> Result<IntersectionReceiverOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Steps 1-3: hash, pool-encrypt, sort, stream Y_R out.
    let prepared = prepare_set(group, values, &mut ops)?;
    let key = group.gen_key(rng);
    let (own_values, hashes): (Vec<Vec<u8>>, Vec<UBig>) = prepared.entries.into_iter().unzip();
    ops.encryptions += hashes.len() as u64;
    let enc = pool.submit_encrypt(group, &key, &hashes).wait();
    let mut encrypted: Vec<(UBig, Vec<u8>)> = enc.into_iter().zip(own_values).collect();
    encrypted.sort_by(|a, b| a.0.cmp(&b.0));
    let yr: Vec<UBig> = sorted_codewords(&encrypted);
    send_codewords_chunked(transport, group, &yr, config.effective_chunk(yr.len()))?;

    // Step 4(a): stream Y_S in, overlapping Z_S = f_eR(Y_S) with receive.
    let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
    let mut last: Option<UBig> = None;
    let mut zs_jobs: Vec<PendingBatch> = Vec::new();
    let mut peer_set_size = 0usize;
    while let Some(msg) = reader.next(transport, group)? {
        let chunk = into_codewords(msg)?;
        require_chunk_strictly_sorted(&mut last, &chunk, "Y_S")?;
        peer_set_size += chunk.len();
        ops.encryptions += chunk.len() as u64;
        zs_jobs.push(pool.submit_encrypt(group, &key, &chunk));
    }

    // Step 4(b): receive f_eS(Y_R), order-preserving across chunks.
    let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
    let mut reencrypted: Vec<UBig> = Vec::with_capacity(reader.total_items().min(1 << 22));
    while let Some(msg) = reader.next(transport, group)? {
        reencrypted.extend(into_codewords(msg)?);
    }
    if reencrypted.len() != encrypted.len() {
        return Err(ProtocolError::LengthMismatch {
            expected: encrypted.len(),
            got: reencrypted.len(),
        });
    }

    // Step 5: collect Z_S.
    let zs: BTreeSet<UBig> = zs_jobs.into_iter().flat_map(PendingBatch::wait).collect();

    // Step 6: v ∈ V_S ∩ V_R iff f_eS(f_eR(h(v))) ∈ Z_S.
    let mut intersection: Vec<Vec<u8>> = encrypted
        .into_iter()
        .zip(reencrypted)
        .filter(|(_, fes_y)| zs.contains(fes_y))
        .map(|((_, v), _)| v)
        .collect();
    intersection.sort();

    crate::stats::emit_ops(
        "intersection",
        "receiver_done",
        &ops,
        yr.len(),
        peer_set_size,
    );
    Ok(IntersectionReceiverOutput {
        intersection,
        peer_set_size,
        ops,
    })
}

/// Pipelined equijoin sender (`S` side of §4.3). Protocol-equivalent to
/// [`crate::equijoin::run_sender`].
pub fn run_equijoin_sender<T: Transport + ?Sized, C: ExtCipher + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    cipher: &C,
    entries: &[(Vec<u8>, Vec<u8>)],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
) -> Result<EquijoinSenderOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Step 1: hash V_S; pick both keys; start the payload-table
    // exponentiations (independent of Y_R) on the pool right away.
    let values: Vec<Vec<u8>> = entries.iter().map(|(v, _)| v.clone()).collect();
    let payloads: BTreeMap<&Vec<u8>, &Vec<u8>> = entries.iter().map(|(v, p)| (v, p)).collect();
    let prepared = prepare_set(group, &values, &mut ops)?;
    let e_s = group.gen_key(rng);
    let e_s_prime = group.gen_key(rng);
    let hashes: Vec<UBig> = prepared.entries.iter().map(|(_, h)| h.clone()).collect();
    ops.encryptions += 2 * hashes.len() as u64;
    let tags_job = pool.submit_encrypt(group, &e_s, &hashes);
    let kappas_job = pool.submit_encrypt(group, &e_s_prime, &hashes);

    // Step 3: stream Y_R in, launching both re-encryptions per chunk.
    let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORDS, "codewords")?;
    let mut last: Option<UBig> = None;
    let mut pair_jobs: Vec<(PendingBatch, PendingBatch)> = Vec::new();
    let mut peer_set_size = 0usize;
    while let Some(msg) = reader.next(transport, group)? {
        let chunk = into_codewords(msg)?;
        require_chunk_strictly_sorted(&mut last, &chunk, "Y_R")?;
        peer_set_size += chunk.len();
        ops.encryptions += 2 * chunk.len() as u64;
        pair_jobs.push((
            pool.submit_encrypt(group, &e_s, &chunk),
            pool.submit_encrypt(group, &e_s_prime, &chunk),
        ));
    }

    // Step 4: answer each y with (f_eS(y), f_e'S(y)), chunk-for-chunk.
    let mut writer = ChunkedWriter::begin_with_chunks(
        transport,
        TAG_CODEWORD_PAIRS,
        peer_set_size,
        pair_jobs.len(),
    )?;
    for (a_job, b_job) in pair_jobs {
        let pairs: Vec<(UBig, UBig)> = a_job.wait().into_iter().zip(b_job.wait()).collect();
        writer.send(transport, group, &Message::CodewordPairs(pairs))?;
    }
    writer.finish()?;

    // Step 5: the payload table — tags and κ's were cooking since step 1.
    let tags = tags_job.wait();
    let kappas = kappas_job.wait();
    let mut payload_pairs: Vec<(UBig, Vec<u8>)> = prepared
        .entries
        .iter()
        .zip(tags.into_iter().zip(kappas))
        .map(|((v, _), (tag, kappa))| {
            ops.payload_encryptions += 1;
            let ext = payloads.get(v).copied().cloned().unwrap_or_default();
            let ct = cipher.encrypt(&kappa, &ext)?;
            Ok((tag, ct))
        })
        .collect::<Result<_, ProtocolError>>()?;
    payload_pairs.sort_by(|a, b| a.0.cmp(&b.0));
    send_payload_pairs_chunked(
        transport,
        group,
        &payload_pairs,
        config.effective_chunk(payload_pairs.len()),
    )?;

    crate::stats::emit_ops(
        "equijoin",
        "sender_done",
        &ops,
        hashes.len(),
        peer_set_size,
    );
    Ok(EquijoinSenderOutput { peer_set_size, ops })
}

/// Pipelined equijoin receiver (`R` side of §4.3). Protocol-equivalent to
/// [`crate::equijoin::run_receiver`].
pub fn run_equijoin_receiver<T: Transport + ?Sized, C: ExtCipher + ?Sized, R: Rng + ?Sized>(
    transport: &mut T,
    group: &QrGroup,
    cipher: &C,
    values: &[Vec<u8>],
    rng: &mut R,
    pool: &EncryptPool,
    config: PipelineConfig,
) -> Result<EquijoinReceiverOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    // Steps 1-3: hash, pool-encrypt, sort, stream Y_R out.
    let prepared = prepare_set(group, values, &mut ops)?;
    let e_r = group.gen_key(rng);
    let (own_values, hashes): (Vec<Vec<u8>>, Vec<UBig>) = prepared.entries.into_iter().unzip();
    ops.encryptions += hashes.len() as u64;
    let enc = pool.submit_encrypt(group, &e_r, &hashes).wait();
    let mut encrypted: Vec<(UBig, Vec<u8>)> = enc.into_iter().zip(own_values).collect();
    encrypted.sort_by(|a, b| a.0.cmp(&b.0));
    let yr: Vec<UBig> = sorted_codewords(&encrypted);
    send_codewords_chunked(transport, group, &yr, config.effective_chunk(yr.len()))?;

    // Step 4 response: (f_eS(y), f_e'S(y)) aligned with Y_R; strip our
    // layer per chunk on the pool, overlapping with receive.
    let mut reader = ChunkedReader::begin(transport, group, TAG_CODEWORD_PAIRS, "codeword-pairs")?;
    let mut strip_jobs: Vec<(PendingBatch, PendingBatch)> = Vec::new();
    let mut pair_count = 0usize;
    while let Some(msg) = reader.next(transport, group)? {
        let pairs = match msg {
            Message::CodewordPairs(p) => p,
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    expected: "codeword-pairs",
                    got: other.kind(),
                })
            }
        };
        pair_count += pairs.len();
        ops.decryptions += 2 * pairs.len() as u64;
        let (fes, fesp): (Vec<UBig>, Vec<UBig>) = pairs.into_iter().unzip();
        strip_jobs.push((
            pool.submit_decrypt(group, &e_r, &fes),
            pool.submit_decrypt(group, &e_r, &fesp),
        ));
    }
    if pair_count != encrypted.len() {
        return Err(ProtocolError::LengthMismatch {
            expected: encrypted.len(),
            got: pair_count,
        });
    }

    // Step 5 response: the payload table, strictly sorted across chunks.
    let mut reader = ChunkedReader::begin(transport, group, TAG_PAYLOAD_PAIRS, "payload-pairs")?;
    let mut last: Option<UBig> = None;
    let mut table: BTreeMap<UBig, Vec<u8>> = BTreeMap::new();
    let mut peer_set_size = 0usize;
    while let Some(msg) = reader.next(transport, group)? {
        let pairs = match msg {
            Message::PayloadPairs(p) => p,
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    expected: "payload-pairs",
                    got: other.kind(),
                })
            }
        };
        peer_set_size += pairs.len();
        for (tag, ct) in pairs {
            if let Some(prev) = last.as_ref() {
                if prev >= &tag {
                    return Err(ProtocolError::NotSorted {
                        what: "payload table",
                    });
                }
            }
            last = Some(tag.clone());
            table.insert(tag, ct);
        }
    }

    // Steps 6-7: collect the stripped layers; match; decrypt.
    let mut stripped: Vec<(UBig, UBig)> = Vec::with_capacity(pair_count);
    for (a_job, b_job) in strip_jobs {
        stripped.extend(a_job.wait().into_iter().zip(b_job.wait()));
    }
    let mut matches = Vec::new();
    let mut seen_tags = BTreeSet::new();
    for ((_, v), (tag, kappa)) in encrypted.into_iter().zip(stripped) {
        if !seen_tags.insert(tag.clone()) {
            return Err(ProtocolError::HashCollision);
        }
        if let Some(ct) = table.get(&tag) {
            ops.payload_decryptions += 1;
            let ext = cipher.decrypt(&kappa, ct)?;
            matches.push((v, ext));
        }
    }
    matches.sort();

    crate::stats::emit_ops(
        "equijoin",
        "receiver_done",
        &ops,
        yr.len(),
        peer_set_size,
    );
    Ok(EquijoinReceiverOutput {
        matches,
        peer_set_size,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_two_party;
    use crate::{equijoin, intersection};
    use minshare_crypto::kcipher::HybridCipher;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn values(n: usize, offset: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("value-{:04}", i + offset).into_bytes())
            .collect()
    }

    fn entry_list(n: usize, offset: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("value-{:04}", i + offset).into_bytes(),
                    format!("ext-{:04}", i + offset).into_bytes(),
                )
            })
            .collect()
    }

    fn cfg(chunk: usize) -> PipelineConfig {
        PipelineConfig::chunked(chunk)
    }

    /// Pipelined sender+receiver must produce the exact outputs of the
    /// serial path, across chunk-boundary shapes and pool widths.
    #[test]
    fn intersection_pipelined_matches_serial() {
        let g = group();
        let (vs, vr) = (values(13, 0), values(9, 7));
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(600);
                intersection::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        for (threads, chunk) in [(0usize, 4usize), (2, 1), (2, 4), (4, 13), (2, 64)] {
            let pool = EncryptPool::new(threads);
            let run = run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(500);
                    run_intersection_sender(t, &g, &vs, &mut rng, &pool, cfg(chunk))
                },
                |t| {
                    let mut rng = StdRng::seed_from_u64(600);
                    run_intersection_receiver(t, &g, &vr, &mut rng, &pool, cfg(chunk))
                },
            )
            .unwrap();
            assert_eq!(run.receiver, serial.receiver, "t={threads} c={chunk}");
            assert_eq!(run.sender, serial.sender, "t={threads} c={chunk}");
        }
    }

    #[test]
    fn equijoin_pipelined_matches_serial() {
        let g = group();
        let cipher = HybridCipher::new(g.clone(), 64);
        let (vs, vr) = (entry_list(11, 0), values(8, 6));
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                equijoin::run_sender(t, &g, &cipher, &vs, &mut rng)
            },
            |t| {
                let cipher = HybridCipher::new(g.clone(), 64);
                let mut rng = StdRng::seed_from_u64(600);
                equijoin::run_receiver(t, &g, &cipher, &vr, &mut rng)
            },
        )
        .unwrap();
        for (threads, chunk) in [(0usize, 3usize), (2, 1), (2, 4), (4, 64)] {
            let pool = EncryptPool::new(threads);
            let run = run_two_party(
                |t| {
                    let mut rng = StdRng::seed_from_u64(500);
                    run_equijoin_sender(t, &g, &cipher, &vs, &mut rng, &pool, cfg(chunk))
                },
                |t| {
                    let cipher = HybridCipher::new(g.clone(), 64);
                    let mut rng = StdRng::seed_from_u64(600);
                    run_equijoin_receiver(t, &g, &cipher, &vr, &mut rng, &pool, cfg(chunk))
                },
            )
            .unwrap();
            assert_eq!(run.receiver, serial.receiver, "t={threads} c={chunk}");
            assert_eq!(run.sender, serial.sender, "t={threads} c={chunk}");
        }
    }

    /// A pipelined party with chunks larger than every list interoperates
    /// with the *serial* engine on the other side, byte for byte.
    #[test]
    fn single_chunk_pipelined_interops_with_serial_peer() {
        let g = group();
        let (vs, vr) = (values(6, 0), values(5, 3));
        let pool = EncryptPool::new(2);
        let big = cfg(1024);
        let a = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                run_intersection_sender(t, &g, &vs, &mut rng, &pool, big)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(600);
                intersection::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        let b = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(600);
                run_intersection_receiver(t, &g, &vr, &mut rng, &pool, big)
            },
        )
        .unwrap();
        assert_eq!(a.receiver.intersection, b.receiver.intersection);
        assert_eq!(a.sender_traffic.bytes_sent(), b.sender_traffic.bytes_sent());
        assert_eq!(
            a.receiver_traffic.bytes_sent(),
            b.receiver_traffic.bytes_sent()
        );
    }

    /// With single-chunk streams the pipelined path costs exactly the
    /// serial §6.1 wire bytes; with c chunks per list it adds only the
    /// 10-byte envelope header plus 5 bytes per extra chunk frame.
    #[test]
    fn traffic_overhead_is_exactly_enveloping() {
        let g = group();
        let (vs, vr) = (values(12, 0), values(12, 6));
        let serial = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                intersection::run_sender(t, &g, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(600);
                intersection::run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        let pool = EncryptPool::new(2);
        let chunk = 5usize; // 12 items -> 3 chunks per list
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(500);
                run_intersection_sender(t, &g, &vs, &mut rng, &pool, cfg(chunk))
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(600);
                run_intersection_receiver(t, &g, &vr, &mut rng, &pool, cfg(chunk))
            },
        )
        .unwrap();
        let chunks_per_list = 12usize.div_ceil(chunk) as u64; // 3
        let envelope = 10 + (chunks_per_list - 1) * 5;
        // Sender ships two lists (Y_S and f_eS(Y_R)), receiver one (Y_R).
        assert_eq!(
            run.sender_traffic.bytes_sent(),
            serial.sender_traffic.bytes_sent() + 2 * envelope
        );
        assert_eq!(
            run.receiver_traffic.bytes_sent(),
            serial.receiver_traffic.bytes_sent() + envelope
        );
    }

    #[test]
    fn empty_sets_pipeline_cleanly() {
        let g = group();
        let pool = EncryptPool::new(1);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                run_intersection_sender(t, &g, &[], &mut rng, &pool, cfg(4))
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(2);
                run_intersection_receiver(t, &g, &values(3, 0), &mut rng, &pool, cfg(4))
            },
        )
        .unwrap();
        assert!(run.receiver.intersection.is_empty());
        assert_eq!(run.receiver.peer_set_size, 0);
    }

    #[test]
    fn unsorted_chunk_stream_is_rejected() {
        let g = group();
        let pool = EncryptPool::new(1);
        // A malicious receiver sends Y_R unsorted across a chunk boundary.
        let err = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(1);
                run_intersection_sender(t, &g, &values(2, 0), &mut rng, &pool, cfg(2))
            },
            |t| -> Result<(), ProtocolError> {
                let mut rng = StdRng::seed_from_u64(2);
                let mut els: Vec<UBig> =
                    (0..4).map(|_| g.sample_element(&mut rng)).collect();
                els.sort();
                els.reverse(); // descending: first boundary check must trip
                send_codewords_chunked(t, &g, &els, 2)?;
                // Drain whatever the sender manages to say, then stop.
                let _ = t.recv();
                Ok(())
            },
        )
        .unwrap_err();
        assert_eq!(err, ProtocolError::NotSorted { what: "Y_R" });
    }
}
