//! Two-party orchestration over the deterministic fault-injecting
//! simulated network.
//!
//! This is the faulty-channel sibling of [`crate::runner::run_two_party`]:
//! both parties run on real threads, but every frame travels through
//! `minshare_net::simnet` (seeded drop/delay/duplicate/reorder/corrupt
//! schedules on a virtual clock) wrapped in the bounded-retry
//! [`RobustTransport`]. Byte accounting sits *above* the retry layer, so
//! [`TrafficStats`] measures protocol-layer bytes — directly comparable
//! with a perfect-link run, which is how the conformance harness checks
//! that faults never change what the protocols reveal.
//!
//! Unlike the perfect-link runner, results are reported **per party**: on
//! a faulty channel one side can finish cleanly while the other loses the
//! acknowledgement of its final message and exits with a typed error (the
//! classic two-generals tail). The harness exposes both results plus the
//! full fault trace, and [`SimTwoPartyRun::outcome`] classifies the run.
//!
//! Each party closure's transport stack is dropped the moment the closure
//! returns. That upholds the simnet liveness invariant — an endpoint is
//! either actively driven or closed — so a peer still retransmitting into
//! a finished party's link observes `NetError::Closed` instead of
//! stalling its virtual timeouts.

use minshare_net::{
    sim_pair, CountingTransport, FaultPlan, RobustConfig, RobustTransport, SimConfig, SimTrace,
    TrafficStats, Transport,
};

use crate::error::ProtocolError;

/// Knobs for a simulated two-party run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimRunConfig {
    /// Virtual-clock / deadline parameters of the simulated link.
    pub sim: SimConfig,
    /// Retry/backoff parameters of the reliability layer.
    pub robust: RobustConfig,
}

/// Classification of a completed simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOutcome {
    /// Both parties produced their output.
    Complete,
    /// At least one party failed with a typed [`ProtocolError`] — the
    /// acceptable way to lose against a hostile fault schedule.
    TypedFailure,
    /// At least one party thread panicked. Never acceptable.
    Panicked,
}

/// Results of one simulated two-party run.
#[derive(Debug)]
pub struct SimTwoPartyRun<SO, RO> {
    /// Sender party's result.
    pub sender: Result<SO, ProtocolError>,
    /// Receiver party's result.
    pub receiver: Result<RO, ProtocolError>,
    /// Protocol-layer traffic as seen from the sender's endpoint
    /// (counted above the retry layer — retransmits excluded).
    pub sender_traffic: TrafficStats,
    /// Protocol-layer traffic as seen from the receiver's endpoint.
    pub receiver_traffic: TrafficStats,
    /// Everything the link did to every frame, in virtual time.
    pub trace: SimTrace,
}

impl<SO, RO> SimTwoPartyRun<SO, RO> {
    /// Classifies the run (see [`SimOutcome`]).
    pub fn outcome(&self) -> SimOutcome {
        let panicked = |e: &ProtocolError| matches!(e, ProtocolError::PartyPanicked { .. });
        match (&self.sender, &self.receiver) {
            (Ok(_), Ok(_)) => SimOutcome::Complete,
            (Err(e), _) if panicked(e) => SimOutcome::Panicked,
            (_, Err(e)) if panicked(e) => SimOutcome::Panicked,
            _ => SimOutcome::TypedFailure,
        }
    }

    /// Total protocol-layer traffic in bits (the paper's §6.1 unit).
    pub fn total_bits(&self) -> u64 {
        (self.sender_traffic.bytes_sent() + self.receiver_traffic.bytes_sent()) * 8
    }
}

/// Runs `sender` and `receiver` concurrently over a freshly seeded
/// simulated link.
///
/// Each closure receives its endpoint wrapped as
/// `CountingTransport<RobustTransport<SimEndpoint>>` — reliable-channel
/// semantics over the faulty link, with protocol-layer byte accounting on
/// top. A panic in either party becomes
/// [`ProtocolError::PartyPanicked`] for that party; nothing is propagated
/// as a harness-level error, so the caller always gets traffic and trace
/// back even from a failed run.
pub fn run_two_party_sim<SO, RO>(
    config: SimRunConfig,
    plan: &FaultPlan,
    sender: impl FnOnce(&mut dyn Transport) -> Result<SO, ProtocolError> + Send,
    receiver: impl FnOnce(&mut dyn Transport) -> Result<RO, ProtocolError> + Send,
) -> SimTwoPartyRun<SO, RO>
where
    SO: Send,
    RO: Send,
{
    let (s_end, r_end, trace_handle) = sim_pair(config.sim, plan);
    let (mut s_transport, sender_traffic) =
        CountingTransport::new(RobustTransport::with_config(s_end, config.robust));
    let (mut r_transport, receiver_traffic) =
        CountingTransport::new(RobustTransport::with_config(r_end, config.robust));

    let (sender_result, receiver_result) = std::thread::scope(|scope| {
        let s_handle = scope.spawn(move || {
            let result = sender(&mut s_transport);
            // Close the endpoint the instant the party is done (whether
            // it succeeded or not): the peer's retransmits then resolve
            // as `Closed` instead of starving its virtual timeouts.
            drop(s_transport);
            result
        });
        let r_handle = scope.spawn(move || {
            let result = receiver(&mut r_transport);
            drop(r_transport);
            result
        });
        (
            s_handle
                .join()
                .unwrap_or_else(|_| Err(ProtocolError::PartyPanicked { party: "sender" })),
            r_handle
                .join()
                .unwrap_or_else(|_| Err(ProtocolError::PartyPanicked { party: "receiver" })),
        )
    });

    SimTwoPartyRun {
        sender: sender_result,
        receiver: receiver_result,
        sender_traffic,
        receiver_traffic,
        trace: trace_handle.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minshare_net::NetError;

    #[test]
    fn perfect_link_run_collects_everything() {
        let run = run_two_party_sim(
            SimRunConfig::default(),
            &FaultPlan::perfect(),
            |t| {
                t.send(b"hello")?;
                Ok(t.recv()?.len())
            },
            |t| {
                let got = t.recv()?;
                t.send(&[0u8; 3])?;
                Ok(got)
            },
        );
        assert_eq!(run.outcome(), SimOutcome::Complete);
        assert_eq!(run.sender.unwrap(), 3);
        assert_eq!(run.receiver.unwrap(), b"hello");
        // Counted above the retry layer: payload bytes only, no ARQ
        // framing, no retransmits.
        assert_eq!(run.sender_traffic.bytes_sent(), 5);
        assert_eq!(run.receiver_traffic.bytes_sent(), 3);
        assert!(!run.trace.is_empty());
    }

    #[test]
    fn panic_is_confined_to_the_panicking_party() {
        let run = run_two_party_sim(
            SimRunConfig::default(),
            &FaultPlan::perfect(),
            |_t| -> Result<(), ProtocolError> { panic!("boom") },
            |t| -> Result<Vec<u8>, ProtocolError> { Ok(t.recv()?) },
        );
        assert_eq!(run.outcome(), SimOutcome::Panicked);
        assert_eq!(
            run.sender.unwrap_err(),
            ProtocolError::PartyPanicked { party: "sender" }
        );
        // The receiver observes the closed link as a typed error.
        assert!(matches!(run.receiver, Err(ProtocolError::Net(_))));
    }

    #[test]
    fn total_loss_is_a_typed_failure() {
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::perfect()
        };
        let run = run_two_party_sim(
            SimRunConfig::default(),
            &plan,
            |t| {
                t.send(b"into the void")?;
                Ok(())
            },
            |t| -> Result<Vec<u8>, ProtocolError> { Ok(t.recv()?) },
        );
        assert_eq!(run.outcome(), SimOutcome::TypedFailure);
        // Strict single-outcome assertion: the retry layer folds a peer
        // departure observed mid-retransmit into the same typed
        // exhaustion as a genuine budget run-out, so the sender's error
        // no longer depends on whether the receiver's deadline fired
        // before the sender's last attempt (the race PR 7 papered over
        // by widening this very assertion).
        assert!(matches!(
            run.sender,
            Err(ProtocolError::Net(NetError::RetriesExhausted { .. }))
        ));
    }

    #[test]
    fn same_seed_reproduces_the_trace() {
        let plan = FaultPlan::from_seed(7);
        let go = || {
            run_two_party_sim(
                SimRunConfig::default(),
                &plan,
                |t| {
                    for i in 0..8u8 {
                        t.send(&[i; 32])?;
                    }
                    Ok(())
                },
                |t| {
                    let mut total = 0usize;
                    for _ in 0..8 {
                        total += t.recv()?.len();
                    }
                    Ok(total)
                },
            )
        };
        let (r1, r2) = (go(), go());
        assert_eq!(r1.trace.digest(), r2.trace.digest());
        assert_eq!(format!("{:?}", r1.sender), format!("{:?}", r2.sender));
        assert_eq!(format!("{:?}", r1.receiver), format!("{:?}", r2.receiver));
    }
}
