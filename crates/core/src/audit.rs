//! Multi-query defenses (§2.3 "Limitations — Multiple Queries").
//!
//! The paper's guarantees are per-query; it explicitly defers what a peer
//! can learn by *combining* queries, pointing to the statistical-database
//! literature: "These techniques include restricting the size of query
//! results \[17, 23\], controlling the overlap among successive queries
//! \[19\], and keeping audit trails of all answered queries to detect
//! possible compromises \[13\]."
//!
//! [`QueryAuditor`] implements exactly those three defenses for a party
//! answering repeated minimal-sharing queries:
//!
//! * **query budget** — a hard cap on answered queries,
//! * **result-size restriction** (Fellegi / Denning) — refuse to reveal
//!   very small (or very large) intersections, which pinpoint
//!   individuals,
//! * **overlap control** (Dobkin–Jones–Lipton) — refuse a query whose
//!   input set overlaps a previously answered query too much; this
//!   blocks the classic *tracker* attack (ask for `Q` and `Q ∪ {x}` and
//!   subtract),
//! * **audit trail** — every decision is recorded for offline review.

use std::collections::BTreeSet;
use std::fmt;

/// Why a query was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditRefusal {
    /// The query budget is spent.
    BudgetExhausted {
        /// The configured maximum.
        max_queries: u64,
    },
    /// The input set overlaps an earlier query too much.
    OverlapTooHigh {
        /// Index of the conflicting earlier query.
        prior_query: usize,
        /// Observed overlap fraction (|new ∩ old| / |new|).
        overlap: f64,
        /// The configured ceiling.
        limit: f64,
    },
    /// The result is small enough to identify individuals.
    ResultTooSmall {
        /// Observed result size.
        size: usize,
        /// The configured floor.
        minimum: usize,
    },
    /// The result covers almost the whole input (the complement becomes
    /// identifying) — the dual of [`AuditRefusal::ResultTooSmall`].
    ResultTooLarge {
        /// Observed result size.
        size: usize,
        /// The configured ceiling.
        maximum: usize,
    },
}

impl fmt::Display for AuditRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditRefusal::BudgetExhausted { max_queries } => {
                write!(f, "query budget of {max_queries} exhausted")
            }
            AuditRefusal::OverlapTooHigh {
                prior_query,
                overlap,
                limit,
            } => write!(
                f,
                "overlap {overlap:.2} with query #{prior_query} exceeds limit {limit:.2}"
            ),
            AuditRefusal::ResultTooSmall { size, minimum } => {
                write!(f, "result of {size} below the disclosure floor {minimum}")
            }
            AuditRefusal::ResultTooLarge { size, maximum } => {
                write!(f, "result of {size} above the disclosure ceiling {maximum}")
            }
        }
    }
}

impl std::error::Error for AuditRefusal {}

/// The policy knobs (all optional; `default()` allows everything).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditPolicy {
    /// Maximum number of answered queries.
    pub max_queries: Option<u64>,
    /// Maximum allowed overlap fraction with any earlier query's input.
    pub max_overlap: Option<f64>,
    /// Smallest result size that may be released.
    pub min_result_size: Option<usize>,
    /// Largest result size that may be released (complement protection).
    pub max_result_size: Option<usize>,
}

/// One audit-trail entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Sequence number.
    pub index: usize,
    /// Size of the query's input set.
    pub input_size: usize,
    /// Result size, for answered queries.
    pub result_size: Option<usize>,
    /// `None` = answered; `Some` = refused (and why).
    pub refusal: Option<AuditRefusal>,
}

/// Tracks queries answered by one party and enforces an [`AuditPolicy`].
#[derive(Debug, Clone)]
pub struct QueryAuditor {
    policy: AuditPolicy,
    answered_inputs: Vec<BTreeSet<Vec<u8>>>,
    trail: Vec<AuditRecord>,
    answered: u64,
}

impl QueryAuditor {
    /// Creates an auditor with the given policy.
    pub fn new(policy: AuditPolicy) -> Self {
        QueryAuditor {
            policy,
            answered_inputs: Vec::new(),
            trail: Vec::new(),
            answered: 0,
        }
    }

    /// Pre-query gate: budget and overlap checks. Call before running
    /// the protocol; on refusal, nothing is revealed and the refusal is
    /// logged.
    pub fn admit(&mut self, input: &[Vec<u8>]) -> Result<(), AuditRefusal> {
        let distinct: BTreeSet<Vec<u8>> = input.iter().cloned().collect();
        let refusal = self.admission_refusal(&distinct);
        if let Some(r) = refusal {
            self.trail.push(AuditRecord {
                index: self.trail.len(),
                input_size: distinct.len(),
                result_size: None,
                refusal: Some(r.clone()),
            });
            return Err(r);
        }
        Ok(())
    }

    fn admission_refusal(&self, distinct: &BTreeSet<Vec<u8>>) -> Option<AuditRefusal> {
        if let Some(max) = self.policy.max_queries {
            if self.answered >= max {
                return Some(AuditRefusal::BudgetExhausted { max_queries: max });
            }
        }
        if let Some(limit) = self.policy.max_overlap {
            for (i, prior) in self.answered_inputs.iter().enumerate() {
                if distinct.is_empty() {
                    break;
                }
                let common = distinct.iter().filter(|v| prior.contains(*v)).count();
                let overlap = common as f64 / distinct.len() as f64;
                if overlap > limit {
                    return Some(AuditRefusal::OverlapTooHigh {
                        prior_query: i,
                        overlap,
                        limit,
                    });
                }
            }
        }
        None
    }

    /// Post-query gate: result-size restriction. Call with the computed
    /// result size *before releasing it to the peer*; on refusal the
    /// caller must suppress the answer.
    pub fn release(&mut self, input: &[Vec<u8>], result_size: usize) -> Result<(), AuditRefusal> {
        let distinct: BTreeSet<Vec<u8>> = input.iter().cloned().collect();
        let refusal = if let Some(min) = self.policy.min_result_size {
            // A zero-size result reveals only a negative and is always
            // releasable; the floor protects small *positive* results.
            if result_size > 0 && result_size < min {
                Some(AuditRefusal::ResultTooSmall {
                    size: result_size,
                    minimum: min,
                })
            } else {
                None
            }
        } else {
            None
        };
        let refusal = refusal.or_else(|| {
            self.policy.max_result_size.and_then(|max| {
                (result_size > max).then_some(AuditRefusal::ResultTooLarge {
                    size: result_size,
                    maximum: max,
                })
            })
        });

        self.trail.push(AuditRecord {
            index: self.trail.len(),
            input_size: distinct.len(),
            result_size: Some(result_size),
            refusal: refusal.clone(),
        });
        match refusal {
            Some(r) => Err(r),
            None => {
                self.answered += 1;
                self.answered_inputs.push(distinct);
                Ok(())
            }
        }
    }

    /// Queries answered so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// The full decision log.
    pub fn trail(&self) -> &[AuditRecord] {
        &self.trail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn budget_enforced() {
        let mut a = QueryAuditor::new(AuditPolicy {
            max_queries: Some(2),
            ..Default::default()
        });
        for i in 0..2 {
            let q = to_values(&[&format!("q{i}")]);
            a.admit(&q).unwrap();
            a.release(&q, 1).unwrap();
        }
        let q = to_values(&["q9"]);
        assert!(matches!(
            a.admit(&q),
            Err(AuditRefusal::BudgetExhausted { max_queries: 2 })
        ));
        assert_eq!(a.answered(), 2);
    }

    #[test]
    fn tracker_attack_blocked_by_overlap_control() {
        // Classic tracker: ask {a,b,c}, then {a,b,c,x}; the size delta
        // reveals x's membership. Overlap control refuses query 2.
        let mut a = QueryAuditor::new(AuditPolicy {
            max_overlap: Some(0.5),
            ..Default::default()
        });
        let q1 = to_values(&["a", "b", "c"]);
        a.admit(&q1).unwrap();
        a.release(&q1, 2).unwrap();

        let q2 = to_values(&["a", "b", "c", "x"]);
        let err = a.admit(&q2).unwrap_err();
        assert!(matches!(
            err,
            AuditRefusal::OverlapTooHigh { prior_query: 0, .. }
        ));
        // A genuinely fresh query still passes.
        let q3 = to_values(&["p", "q", "r"]);
        assert!(a.admit(&q3).is_ok());
    }

    #[test]
    fn small_result_suppressed_zero_allowed() {
        let mut a = QueryAuditor::new(AuditPolicy {
            min_result_size: Some(5),
            ..Default::default()
        });
        let q = to_values(&["a", "b", "c", "d", "e", "f"]);
        a.admit(&q).unwrap();
        assert!(matches!(
            a.release(&q, 2),
            Err(AuditRefusal::ResultTooSmall {
                size: 2,
                minimum: 5
            })
        ));
        // Empty results carry only a negative — released.
        a.admit(&q).unwrap();
        assert!(a.release(&q, 0).is_ok());
        // Comfortable results released.
        let q2 = to_values(&["g", "h", "i", "j", "k", "l"]);
        a.admit(&q2).unwrap();
        assert!(a.release(&q2, 6).is_ok());
    }

    #[test]
    fn large_result_ceiling() {
        let mut a = QueryAuditor::new(AuditPolicy {
            max_result_size: Some(3),
            ..Default::default()
        });
        let q = to_values(&["a", "b", "c", "d"]);
        a.admit(&q).unwrap();
        assert!(matches!(
            a.release(&q, 4),
            Err(AuditRefusal::ResultTooLarge {
                size: 4,
                maximum: 3
            })
        ));
    }

    #[test]
    fn refused_queries_do_not_consume_budget_or_history() {
        let mut a = QueryAuditor::new(AuditPolicy {
            max_queries: Some(5),
            min_result_size: Some(3),
            max_overlap: Some(0.9),
            ..Default::default()
        });
        let q = to_values(&["a", "b"]);
        a.admit(&q).unwrap();
        assert!(a.release(&q, 1).is_err()); // suppressed
        assert_eq!(a.answered(), 0);
        // The suppressed query's input is NOT in the overlap history, so
        // re-asking (e.g. after policy review) is admissible.
        assert!(a.admit(&q).is_ok());
    }

    #[test]
    fn audit_trail_records_everything() {
        let mut a = QueryAuditor::new(AuditPolicy {
            max_queries: Some(1),
            ..Default::default()
        });
        let q1 = to_values(&["a"]);
        a.admit(&q1).unwrap();
        a.release(&q1, 1).unwrap();
        let q2 = to_values(&["b"]);
        let _ = a.admit(&q2);
        let trail = a.trail();
        assert_eq!(trail.len(), 2);
        assert!(trail[0].refusal.is_none());
        assert_eq!(trail[0].result_size, Some(1));
        assert!(matches!(
            trail[1].refusal,
            Some(AuditRefusal::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn permissive_default_policy() {
        let mut a = QueryAuditor::new(AuditPolicy::default());
        for i in 0..20 {
            let q = to_values(&[&format!("v{}", i % 2)]); // heavy overlap
            a.admit(&q).unwrap();
            a.release(&q, i).unwrap();
        }
        assert_eq!(a.answered(), 20);
    }
}
