//! The equijoin-size protocol of §5.2.
//!
//! The intersection-size protocol run on **multisets**: `V_R` and `V_S`
//! keep their duplicates, and in the final step `R` computes
//! `|T_S ⋈ T_R| = Σ_v dup_R(v) · dup_S(v)` by multiplying the duplicate
//! counts of matching double-encrypted codewords.
//!
//! The paper is explicit that this protocol leaks more than the join size:
//! each side learns the other's duplicate distribution, and `R` learns
//! `|V_R(d) ∩ V_S(d')|` for every pair of duplicate classes — computed
//! here and returned as [`EquijoinSizeReceiverOutput::class_intersections`]
//! so callers (and the E13 experiment) can audit the leak precisely.

use std::collections::BTreeMap;

use minshare_bignum::UBig;
use minshare_crypto::CommutativeScheme;
use minshare_net::Transport;
use rand::Rng;

use crate::error::ProtocolError;
use crate::intersection::expect_codewords;
use crate::prepare::prepare_multiset;
use crate::stats::OpCounters;
use crate::wire::{require_sorted, Message};

/// Multiset duplicate distribution: duplicate count `d` → number of
/// distinct values occurring exactly `d` times.
pub type DuplicateDistribution = BTreeMap<u64, u64>;

/// Computes the duplicate distribution of a list of codewords (or any
/// ordered values).
fn distribution_of<T: Ord>(items: &[T]) -> DuplicateDistribution {
    let mut per_value: BTreeMap<&T, u64> = BTreeMap::new();
    for item in items {
        *per_value.entry(item).or_insert(0) += 1;
    }
    let mut dist = DuplicateDistribution::new();
    for (_, d) in per_value {
        *dist.entry(d).or_insert(0) += 1;
    }
    dist
}

/// What the sender learns: `|V_R|` (with duplicates) and the duplicate
/// distribution of `T_R.A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquijoinSizeSenderOutput {
    /// Total occurrences in the receiver's multiset.
    pub peer_multiset_size: usize,
    /// The receiver's duplicate distribution (leaked by the multiset
    /// `Y_R`).
    pub peer_duplicate_distribution: DuplicateDistribution,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// What the receiver learns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquijoinSizeReceiverOutput {
    /// `|T_S ⋈ T_R|` on the join attribute.
    pub join_size: u64,
    /// Total occurrences in the sender's multiset.
    pub peer_multiset_size: usize,
    /// The sender's duplicate distribution (leaked by `Y_S`).
    pub peer_duplicate_distribution: DuplicateDistribution,
    /// The §5.2 leak: `(d, d') → |V_R(d) ∩ V_S(d')|` — how many values
    /// with `d` duplicates on `R`'s side matched values with `d'`
    /// duplicates on `S`'s side.
    pub class_intersections: BTreeMap<(u64, u64), u64>,
    /// Cost-unit counts for this party.
    pub ops: OpCounters,
}

/// Runs the sender (`S`) side on the multiset `values` (duplicates kept).
pub fn run_sender<T: Transport + ?Sized, S: CommutativeScheme, R: Rng + ?Sized>(
    transport: &mut T,
    scheme: &S,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<EquijoinSizeSenderOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    let prepared = prepare_multiset(scheme, values, &mut ops)?;
    let key = scheme.key_gen(rng);
    // Encrypt each occurrence. Distinct values get distinct ciphertexts;
    // duplicates stay duplicates (f is deterministic).
    let mut ys: Vec<UBig> = prepared
        .iter()
        .map(|(_, h)| {
            ops.encryptions += 1;
            scheme.apply(&key, h)
        })
        .collect();
    ys.sort();

    // Receive the multiset Y_R.
    let yr = expect_codewords(transport, scheme)?;
    require_sorted(&yr, "Y_R")?;
    let peer_multiset_size = yr.len();
    let peer_duplicate_distribution = distribution_of(&yr);

    // Ship Y_S.
    transport.send(&Message::Codewords(ys).encode(scheme)?)?;

    // Re-encrypt Y_R, reorder, ship Z_R.
    let mut zr: Vec<UBig> = yr
        .iter()
        .map(|y| {
            ops.encryptions += 1;
            scheme.apply(&key, y)
        })
        .collect();
    zr.sort();
    transport.send(&Message::Codewords(zr).encode(scheme)?)?;

    crate::stats::emit_ops(
        "equijoin_size",
        "sender_done",
        &ops,
        prepared.len(),
        peer_multiset_size,
    );
    Ok(EquijoinSizeSenderOutput {
        peer_multiset_size,
        peer_duplicate_distribution,
        ops,
    })
}

/// Runs the receiver (`R`) side on the multiset `values`.
pub fn run_receiver<T: Transport + ?Sized, S: CommutativeScheme, R: Rng + ?Sized>(
    transport: &mut T,
    scheme: &S,
    values: &[Vec<u8>],
    rng: &mut R,
) -> Result<EquijoinSizeReceiverOutput, ProtocolError> {
    let mut ops = OpCounters::default();

    let prepared = prepare_multiset(scheme, values, &mut ops)?;
    let key = scheme.key_gen(rng);
    let mut yr: Vec<UBig> = prepared
        .iter()
        .map(|(_, h)| {
            ops.encryptions += 1;
            scheme.apply(&key, h)
        })
        .collect();
    yr.sort();
    let yr_len = yr.len();
    transport.send(&Message::Codewords(yr).encode(scheme)?)?;

    // Y_S (multiset).
    let ys = expect_codewords(transport, scheme)?;
    require_sorted(&ys, "Y_S")?;
    let peer_multiset_size = ys.len();
    let peer_duplicate_distribution = distribution_of(&ys);

    // Z_R (multiset, sorted).
    let zr = expect_codewords(transport, scheme)?;
    require_sorted(&zr, "Z_R")?;
    if zr.len() != yr_len {
        return Err(ProtocolError::LengthMismatch {
            expected: yr_len,
            got: zr.len(),
        });
    }

    // Z_S = f_eR(Y_S), as a count map.
    let mut zs_counts: BTreeMap<UBig, u64> = BTreeMap::new();
    for y in &ys {
        ops.encryptions += 1;
        *zs_counts.entry(scheme.apply(&key, y)).or_insert(0) += 1;
    }
    let mut zr_counts: BTreeMap<UBig, u64> = BTreeMap::new();
    for z in &zr {
        *zr_counts.entry(z.clone()).or_insert(0) += 1;
    }

    // Join size = Σ over common codewords of dup_R · dup_S, and the
    // per-class leak matrix.
    let mut join_size = 0u64;
    let mut class_intersections: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (z, d_r) in &zr_counts {
        if let Some(d_s) = zs_counts.get(z) {
            join_size += d_r * d_s;
            *class_intersections.entry((*d_r, *d_s)).or_insert(0) += 1;
        }
    }

    crate::stats::emit_ops(
        "equijoin_size",
        "receiver_done",
        &ops,
        yr_len,
        peer_multiset_size,
    );
    Ok(EquijoinSizeReceiverOutput {
        join_size,
        peer_multiset_size,
        peer_duplicate_distribution,
        class_intersections,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_two_party;
    use minshare_crypto::QrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(21);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn run(vs: &[&str], vr: &[&str]) -> (EquijoinSizeSenderOutput, EquijoinSizeReceiverOutput) {
        let g = group();
        let vs = to_values(vs);
        let vr = to_values(vr);
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(700);
                run_sender(t, &group(), &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(800);
                run_receiver(t, &g, &vr, &mut rng)
            },
        )
        .unwrap();
        (run.sender, run.receiver)
    }

    /// Clear-text oracle: Σ_v dup_S(v) · dup_R(v).
    fn oracle(vs: &[&str], vr: &[&str]) -> u64 {
        let mut s_counts: BTreeMap<&str, u64> = BTreeMap::new();
        for v in vs {
            *s_counts.entry(v).or_insert(0) += 1;
        }
        let mut total = 0;
        let mut r_counts: BTreeMap<&str, u64> = BTreeMap::new();
        for v in vr {
            *r_counts.entry(v).or_insert(0) += 1;
        }
        for (v, d_r) in r_counts {
            total += d_r * s_counts.get(v).copied().unwrap_or(0);
        }
        total
    }

    #[test]
    fn join_size_with_duplicates() {
        let vs = ["a", "a", "b", "c", "c", "c"];
        let vr = ["a", "b", "b", "c"];
        let (_, r) = run(&vs, &vr);
        // a: 2·1, b: 1·2, c: 3·1 → 2 + 2 + 3 = 7.
        assert_eq!(r.join_size, 7);
        assert_eq!(r.join_size, oracle(&vs, &vr));
        assert_eq!(r.peer_multiset_size, 6);
    }

    #[test]
    fn no_duplicates_degenerates_to_intersection_size() {
        let (_, r) = run(&["a", "b", "c"], &["b", "c", "d"]);
        assert_eq!(r.join_size, 2);
        // With all duplicate counts equal to 1, the class matrix has a
        // single cell (1,1) — the protocol leaks only the intersection
        // size, exactly as §5.2 observes.
        assert_eq!(r.class_intersections.len(), 1);
        assert_eq!(r.class_intersections[&(1, 1)], 2);
    }

    #[test]
    fn duplicate_distributions_are_learned() {
        let (s, r) = run(&["x", "x", "x", "y"], &["p", "p", "q"]);
        // S sees R's distribution: one value ×2, one value ×1.
        assert_eq!(s.peer_duplicate_distribution[&2], 1);
        assert_eq!(s.peer_duplicate_distribution[&1], 1);
        // R sees S's distribution: one value ×3, one value ×1.
        assert_eq!(r.peer_duplicate_distribution[&3], 1);
        assert_eq!(r.peer_duplicate_distribution[&1], 1);
        assert_eq!(r.join_size, 0);
    }

    #[test]
    fn class_matrix_identifies_unique_duplicate_counts() {
        // §5.2's warning case: distinct duplicate counts per value let R
        // pinpoint which values matched.
        let vs = ["a", "a", "b", "b", "b"]; // a×2, b×3
        let vr = ["a", "b", "b"]; // a×1, b×2
        let (_, r) = run(&vs, &vr);
        assert_eq!(r.join_size, 2 + 3 * 2);
        assert_eq!(r.class_intersections[&(1, 2)], 1); // a
        assert_eq!(r.class_intersections[&(2, 3)], 1); // b
    }

    #[test]
    fn randomized_against_oracle() {
        let vocab = ["u", "v", "w", "x", "y", "z"];
        let mut rng = StdRng::seed_from_u64(9);
        use rand::RngExt as _;
        for _ in 0..5 {
            let vs: Vec<&str> = (0..rng.random_range(0..10usize))
                .map(|_| vocab[rng.random_range(0..vocab.len())])
                .collect();
            let vr: Vec<&str> = (0..rng.random_range(0..10usize))
                .map(|_| vocab[rng.random_range(0..vocab.len())])
                .collect();
            let (_, r) = run(&vs, &vr);
            assert_eq!(r.join_size, oracle(&vs, &vr), "vs={vs:?} vr={vr:?}");
        }
    }
}
