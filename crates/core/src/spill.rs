//! Bounded-memory external merge sort over encrypted codeword records.
//!
//! The sharded engines in [`crate::shard`] replace every in-memory
//! "collect, then sort" of encrypted codewords with an [`ExtSorter`]: a
//! classic external merge sort over *fixed-width* byte records. Records
//! accumulate in a buffer of at most `mem_budget` bytes; when the buffer
//! fills, it is sorted and written out as one run file, and at the end
//! the in-memory tail plus every spilled run are k-way merged back in
//! globally sorted order. Memory therefore stays O(`mem_budget`)
//! regardless of how many records pass through.
//!
//! Secrecy invariant: spill files hold **only post-`h`-post-`enc` bytes**
//! (encrypted codewords, optionally prefixed by a bucket id and suffixed
//! by a local index). Raw values and bare hashes never reach
//! [`ExtSorter::push_record`] — the analyzer's WIRE01 taint pass treats
//! `push_record` as a sink exactly like a transport send, so the build
//! *proves* nothing rawer than an encryption output is ever spilled.
//!
//! Run files are created inside `spill_dir` and unlinked immediately
//! after creation (the open handle keeps them readable on Linux), so
//! they cannot outlive the process even on a crash.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::ProtocolError;

/// Counters describing what one [`ExtSorter`] actually did — the
/// bounded-memory smoke test asserts `runs_spilled > 0` to prove the
/// external path really engaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Sorted runs written to disk (0 = everything fit in the budget).
    pub runs_spilled: u64,
    /// Total bytes written to spill files.
    pub bytes_spilled: u64,
    /// Records pushed through the sorter.
    pub records: u64,
}

fn spill_err(detail: impl std::fmt::Display) -> ProtocolError {
    ProtocolError::Spill {
        detail: detail.to_string(),
    }
}

/// An external merge sorter over fixed-width byte records.
///
/// `push_record` each record, then [`ExtSorter::finish`] to get a
/// [`SortedStream`] yielding every record in ascending lexicographic
/// order (equal records are all yielded; the sort is not deduplicating).
/// Fixed-width big-endian codewords make lexicographic order coincide
/// with numeric order, the same trick the wire format relies on.
pub struct ExtSorter {
    record_len: usize,
    budget_bytes: usize,
    buf: Vec<u8>,
    runs: Vec<File>,
    dir: PathBuf,
    stats: SpillStats,
    next_run: u64,
}

impl ExtSorter {
    /// A sorter for `record_len`-byte records holding at most
    /// `budget_bytes` of record data in memory; runs spill into `dir`
    /// (the caller picks it — typically `--spill-dir` or the OS temp
    /// dir). The budget is clamped so at least one record always fits.
    pub fn new(record_len: usize, budget_bytes: usize, dir: &Path) -> Result<Self, ProtocolError> {
        if record_len == 0 {
            return Err(spill_err("record length must be non-zero"));
        }
        Ok(ExtSorter {
            record_len,
            budget_bytes: budget_bytes.max(record_len),
            buf: Vec::new(),
            runs: Vec::new(),
            dir: dir.to_path_buf(),
            stats: SpillStats::default(),
            next_run: 0,
        })
    }

    /// The fixed record width.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// What the sorter has done so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Appends one record. **Taint sink**: callers must only pass
    /// post-`h`-post-`enc` bytes (plus neutral framing like bucket ids
    /// and indices) — these bytes may hit disk.
    pub fn push_record(&mut self, record: &[u8]) -> Result<(), ProtocolError> {
        if record.len() != self.record_len {
            return Err(spill_err(format!(
                "record of {} bytes pushed into a {}-byte sorter",
                record.len(),
                self.record_len
            )));
        }
        if self.buf.len() + self.record_len > self.budget_bytes && !self.buf.is_empty() {
            self.spill_run()?;
        }
        self.buf.extend_from_slice(record);
        self.stats.records += 1;
        Ok(())
    }

    /// Sorts the current buffer and writes it out as one run file.
    fn spill_run(&mut self) -> Result<(), ProtocolError> {
        let sorted = sort_buffer(&self.buf, self.record_len);
        let path = self.dir.join(format!(
            "minshare-spill-{}-{}.run",
            std::process::id(),
            self.next_run
        ));
        self.next_run += 1;
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| spill_err(format!("create {}: {e}", path.display())))?;
        // Unlink immediately: the open handle keeps the run readable,
        // and the file cannot leak past the process's lifetime.
        std::fs::remove_file(&path)
            .map_err(|e| spill_err(format!("unlink {}: {e}", path.display())))?;
        let mut writer = BufWriter::new(file);
        for rec in &sorted {
            writer.write_all(rec).map_err(spill_err)?;
        }
        let mut file = writer.into_inner().map_err(spill_err)?;
        file.seek(SeekFrom::Start(0)).map_err(spill_err)?;
        self.stats.runs_spilled += 1;
        self.stats.bytes_spilled += self.buf.len() as u64;
        let (records, bytes) = (self.buf.len() as u64 / self.record_len as u64, self.buf.len() as u64);
        minshare_trace::emit("spill", "run_spilled", true, move || {
            vec![
                minshare_trace::count("records", records),
                minshare_trace::size("bytes", bytes),
            ]
        });
        self.runs.push(file);
        self.buf.clear();
        Ok(())
    }

    /// Sorts the in-memory tail and opens the k-way merge across it and
    /// every spilled run. Returns the merged stream and final stats.
    pub fn finish(mut self) -> Result<(SortedStream, SpillStats), ProtocolError> {
        let tail = sort_buffer(&self.buf, self.record_len)
            .into_iter()
            .map(|r| r.to_vec())
            .collect();
        let mut sources: Vec<RunSource> = self
            .runs
            .drain(..)
            .map(|f| RunSource::File(BufReader::new(f)))
            .collect();
        sources.push(RunSource::Mem {
            records: tail,
            pos: 0,
        });
        let mut stream = SortedStream {
            record_len: self.record_len,
            heap: BinaryHeap::with_capacity(sources.len()),
            sources,
        };
        for i in 0..stream.sources.len() {
            stream.refill(i)?;
        }
        Ok((stream, self.stats))
    }
}

/// Returns the records of `buf` as sorted slices (the buffer itself is
/// not rearranged; the slice vector costs 16 bytes per record, a small
/// constant factor on top of the byte budget).
fn sort_buffer(buf: &[u8], record_len: usize) -> Vec<&[u8]> {
    let mut records: Vec<&[u8]> = buf.chunks_exact(record_len).collect();
    records.sort_unstable();
    records
}

enum RunSource {
    File(BufReader<File>),
    Mem { records: Vec<Vec<u8>>, pos: usize },
}

/// The globally sorted record stream out of an [`ExtSorter`]: a k-way
/// merge holding one record per source in memory.
pub struct SortedStream {
    record_len: usize,
    heap: BinaryHeap<Reverse<(Vec<u8>, usize)>>,
    sources: Vec<RunSource>,
}

impl SortedStream {
    /// Pulls the next record from source `i` into the heap, if any.
    fn refill(&mut self, i: usize) -> Result<(), ProtocolError> {
        let Some(source) = self.sources.get_mut(i) else {
            return Err(spill_err("merge source index out of range"));
        };
        match source {
            RunSource::Mem { records, pos } => {
                if let Some(rec) = records.get_mut(*pos) {
                    *pos += 1;
                    self.heap.push(Reverse((std::mem::take(rec), i)));
                }
            }
            RunSource::File(reader) => {
                let mut rec = vec![0u8; self.record_len];
                match reader.read_exact(&mut rec) {
                    Ok(()) => self.heap.push(Reverse((rec, i))),
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {}
                    Err(e) => return Err(spill_err(format!("read spill run: {e}"))),
                }
            }
        }
        Ok(())
    }

    /// The next record in ascending order, or `None` when drained.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        let Some(Reverse((rec, source))) = self.heap.pop() else {
            return Ok(None);
        };
        self.refill(source)?;
        Ok(Some(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn drain(mut stream: SortedStream) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(rec) = stream.next_record().unwrap() {
            out.push(rec);
        }
        out
    }

    fn sort_via(records: &[Vec<u8>], budget: usize) -> (Vec<Vec<u8>>, SpillStats) {
        let dir = std::env::temp_dir();
        let mut sorter = ExtSorter::new(records[0].len(), budget, &dir).unwrap();
        for r in records {
            sorter.push_record(r).unwrap();
        }
        let (stream, stats) = sorter.finish().unwrap();
        (drain(stream), stats)
    }

    fn random_records(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn in_memory_path_sorts_without_spilling() {
        let records = random_records(100, 12, 1);
        let (got, stats) = sort_via(&records, 1 << 20);
        let mut expect = records.clone();
        expect.sort();
        assert_eq!(got, expect);
        assert_eq!(stats.runs_spilled, 0);
        assert_eq!(stats.records, 100);
    }

    #[test]
    fn spilled_path_merges_to_the_same_order() {
        let records = random_records(500, 12, 2);
        let (in_mem, _) = sort_via(&records, 1 << 20);
        // 12-byte records, 100-byte budget → 8 records per run, ~62 runs.
        let (spilled, stats) = sort_via(&records, 100);
        assert_eq!(spilled, in_mem);
        assert!(stats.runs_spilled > 10, "runs={}", stats.runs_spilled);
        assert_eq!(stats.records, 500);
        assert!(stats.bytes_spilled > 0 && stats.bytes_spilled <= 500 * 12);
    }

    #[test]
    fn duplicates_survive_the_merge() {
        let mut records = random_records(40, 8, 3);
        let dup = records[0].clone();
        for _ in 0..20 {
            records.push(dup.clone());
        }
        let (got, _) = sort_via(&records, 64);
        assert_eq!(got.len(), 60);
        assert_eq!(got.iter().filter(|r| **r == dup).count(), 21);
    }

    #[test]
    fn empty_sorter_yields_nothing() {
        let dir = std::env::temp_dir();
        let sorter = ExtSorter::new(8, 1024, &dir).unwrap();
        let (stream, stats) = sorter.finish().unwrap();
        assert!(drain(stream).is_empty());
        assert_eq!(stats, SpillStats::default());
    }

    #[test]
    fn wrong_width_and_zero_width_are_typed_errors() {
        let dir = std::env::temp_dir();
        assert!(matches!(
            ExtSorter::new(0, 1024, &dir),
            Err(ProtocolError::Spill { .. })
        ));
        let mut sorter = ExtSorter::new(8, 1024, &dir).unwrap();
        assert!(matches!(
            sorter.push_record(&[0u8; 7]),
            Err(ProtocolError::Spill { .. })
        ));
    }

    #[test]
    fn spill_files_do_not_linger() {
        // Runs are unlinked at creation; nothing with our prefix should
        // remain visible in the spill dir even mid-sort.
        let dir = std::env::temp_dir();
        let mut sorter = ExtSorter::new(8, 16, &dir).unwrap();
        for r in random_records(64, 8, 4) {
            sorter.push_record(&r).unwrap();
        }
        assert!(sorter.stats().runs_spilled > 0);
        let prefix = format!("minshare-spill-{}-", std::process::id());
        let lingering = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
            .count();
        assert_eq!(lingering, 0);
    }
}
