//! The simple-but-incorrect hash protocol of §3.1, together with the
//! dictionary attack that breaks it.
//!
//! The paper opens with this straw-man: both parties hash their sets with
//! a public one-way hash and `S` ships `X_S = h(V_S)` to `R`. Matching
//! works — but because the hash is unkeyed, an honest-but-curious `R`
//! can probe *any* candidate value `v` by computing `h(v)` and testing
//! membership in `X_S`. Over a small domain, `R` recovers `V_S` entirely.
//!
//! This module exists so the failure is demonstrable, testable, and
//! benchmarkable next to the fixed protocol (experiment E3).

use std::collections::BTreeSet;

use minshare_hash::RandomOracle;

/// The transcript `R` observes in the naive protocol: the sender's hashed
/// set, exactly as sent.
#[derive(Debug, Clone)]
pub struct NaiveTranscript {
    /// `X_S = h(V_S)` (sorted, deduplicated).
    pub hashed_set: BTreeSet<[u8; 32]>,
}

/// The public unkeyed hash both parties use (the flaw: *anyone* can
/// evaluate it).
pub fn public_hash(value: &[u8]) -> [u8; 32] {
    RandomOracle::new(b"minshare/naive-protocol/h").digest(value)
}

/// Runs the naive protocol: `S` sends `h(V_S)`; `R` intersects locally.
/// Returns both the intersection (the protocol "works") and the
/// transcript (the protocol leaks).
pub fn naive_intersection(
    sender_values: &[Vec<u8>],
    receiver_values: &[Vec<u8>],
) -> (Vec<Vec<u8>>, NaiveTranscript) {
    let hashed_set: BTreeSet<[u8; 32]> = sender_values.iter().map(|v| public_hash(v)).collect();
    let mut intersection: Vec<Vec<u8>> = receiver_values
        .iter()
        .filter(|v| hashed_set.contains(&public_hash(v)))
        .cloned()
        .collect();
    intersection.sort();
    intersection.dedup();
    (intersection, NaiveTranscript { hashed_set })
}

/// The honest-but-curious attack of §3.1: enumerate a candidate domain,
/// hash each candidate, and test membership in the observed `X_S`.
/// Recovers every sender value that lies in the candidate domain —
/// **including values not in `V_R`**, which the real protocol provably
/// hides.
pub fn dictionary_attack<'a, I>(transcript: &NaiveTranscript, domain: I) -> Vec<Vec<u8>>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut recovered: Vec<Vec<u8>> = domain
        .into_iter()
        .filter(|candidate| transcript.hashed_set.contains(&public_hash(candidate)))
        .map(|c| c.to_vec())
        .collect();
    recovered.sort();
    recovered.dedup();
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn protocol_computes_intersection() {
        let (i, _) = naive_intersection(&to_values(&["a", "b", "c"]), &to_values(&["b", "d"]));
        assert_eq!(i, to_values(&["b"]));
    }

    #[test]
    fn attack_recovers_entire_sender_set_over_small_domain() {
        // V_S drawn from a small domain (e.g. ages 0..150); R holds almost
        // nothing, yet recovers everything.
        let vs: Vec<Vec<u8>> = [17u8, 42, 99].iter().map(|a| vec![*a]).collect();
        let vr: Vec<Vec<u8>> = vec![vec![42u8]];
        let (intersection, transcript) = naive_intersection(&vs, &vr);
        assert_eq!(intersection, vec![vec![42u8]]);

        // The attack: sweep the whole 1-byte domain.
        let domain: Vec<Vec<u8>> = (0..=255u8).map(|a| vec![a]).collect();
        let recovered = dictionary_attack(&transcript, domain.iter().map(|d| d.as_slice()));
        let mut expected = vs.clone();
        expected.sort();
        assert_eq!(recovered, expected, "R learned V_S, not just the answer");
    }

    #[test]
    fn attack_finds_nothing_outside_domain() {
        let vs = to_values(&["long-random-value-1", "long-random-value-2"]);
        let (_, transcript) = naive_intersection(&vs, &[]);
        let domain = to_values(&["guess-a", "guess-b"]);
        let recovered = dictionary_attack(&transcript, domain.iter().map(|d| d.as_slice()));
        assert!(recovered.is_empty());
    }
}
