//! # minshare — Information Sharing Across Private Databases
//!
//! A from-scratch Rust reproduction of Agrawal, Evfimievski & Srikant,
//! *"Information Sharing Across Private Databases"* (SIGMOD 2003): the
//! *minimal necessary information sharing* paradigm and its four
//! protocols, built on commutative encryption over quadratic residues
//! modulo a safe prime.
//!
//! ## Protocols
//!
//! | Module | Paper | `R` learns | `S` learns |
//! |---|---|---|---|
//! | [`intersection`] | §3 | `V_S ∩ V_R`, `\|V_S\|` | `\|V_R\|` |
//! | [`equijoin`] | §4 | above + `ext(v)` for matches | `\|V_R\|` |
//! | [`intersection_size`] | §5.1 | `\|V_S ∩ V_R\|`, `\|V_S\|` | `\|V_R\|` |
//! | [`equijoin_size`] | §5.2 | `\|T_S ⋈ T_R\|` + duplicate-class leak | dup. distribution of `V_R` |
//!
//! Every engine counts its operations in the paper's §6.1 cost units
//! ([`stats::OpCounters`]) and all traffic is byte-accounted, so the cost
//! analysis is verified *exactly*, not approximately.
//!
//! ## Quick start
//!
//! ```
//! use minshare::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A shared public group (tests use a small one; real deployments use
//! // QrGroup::well_known(1024)).
//! let mut rng = StdRng::seed_from_u64(42);
//! let group = QrGroup::generate(&mut rng, 64).unwrap();
//!
//! let vs: Vec<Vec<u8>> = [b"apple", b"grape"].map(|v| v.to_vec()).into();
//! let vr: Vec<Vec<u8>> = [b"grape", b"melon"].map(|v| v.to_vec()).into();
//!
//! let run = run_two_party(
//!     |t| {
//!         let mut rng = StdRng::seed_from_u64(1);
//!         intersection::run_sender(t, &group, &vs, &mut rng)
//!     },
//!     |t| {
//!         let mut rng = StdRng::seed_from_u64(2);
//!         intersection::run_receiver(t, &group, &vr, &mut rng)
//!     },
//! )
//! .unwrap();
//! assert_eq!(run.receiver.intersection, vec![b"grape".to_vec()]);
//! ```
//!
//! ## Applications
//!
//! The paper's two motivating applications are implemented end to end in
//! [`apps`]: selective document sharing (TF-IDF preprocessing + pairwise
//! intersection-size similarity join) and the three-party medical study
//! of Figure 2.
//!
//! The deliberately broken §3.1 hash protocol and its dictionary attack
//! live in [`naive`]; the §5.2 leak calculator lives in [`leakage`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod audit;
pub mod equijoin;
pub mod equijoin_size;
pub mod error;
pub mod intersection;
pub mod intersection_size;
pub mod leakage;
pub mod multiparty;
pub mod naive;
pub mod pipeline;
pub mod prepare;
pub mod runner;
pub mod service;
pub mod shard;
pub mod simrun;
pub mod spill;
pub mod stats;
pub mod tradeoff;
pub mod wire;

pub use error::ProtocolError;
pub use runner::{run_two_party, TwoPartyRun};
pub use simrun::{run_two_party_sim, SimOutcome, SimRunConfig, SimTwoPartyRun};
pub use stats::OpCounters;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::equijoin;
    pub use crate::equijoin_size;
    pub use crate::intersection;
    pub use crate::intersection_size;
    pub use crate::pipeline::{self, PipelineConfig};
    pub use crate::runner::{run_two_party, TwoPartyRun};
    pub use crate::service::{
        run_client_equijoin, run_client_equijoin_sharded, run_client_equijoin_size,
        run_client_equijoin_size_sharded, run_client_intersection,
        run_client_intersection_sharded, run_client_intersection_size,
        run_client_intersection_size_sharded, ProtocolKind, Service, SessionReport,
        SessionRequest,
    };
    pub use crate::shard::{self, ShardConfig};
    pub use crate::simrun::{run_two_party_sim, SimOutcome, SimRunConfig, SimTwoPartyRun};
    pub use crate::spill::{ExtSorter, SpillStats};
    pub use crate::stats::OpCounters;
    pub use crate::ProtocolError;
    pub use minshare_crypto::kcipher::{ExtCipher, HybridCipher, MulBlockCipher};
    pub use minshare_crypto::{EncryptPool, QrGroup};
    pub use minshare_privdb::{rowcodec, ColumnType, Schema, Table, Value};
}
