//! Clear-text characterization of the §5.2 equijoin-size leak.
//!
//! §5.2 states exactly what the equijoin-size protocol reveals beyond the
//! join size: partition each side's multiset by duplicate count
//! (`V(d)` = values occurring `d` times); then `R` learns
//! `|V_R(d) ∩ V_S(d')|` for every `(d, d')`. This module computes that
//! quantity directly from the inputs, so tests and the E13 experiment can
//! verify the protocol leaks **exactly** this much — no more, no less.
//!
//! The sharded engines ([`crate::shard`]) add one further disclosure,
//! characterized here the same way: each party learns the *per-bucket*
//! sizes of the other's set (`B` numbers summing to the total the
//! unsharded protocol already reveals), and for the -size variants each
//! counted match is additionally localized to its bucket — the global
//! leak matrix splits into `B` per-bucket matrices that sum back to the
//! §5.2 matrix cell for cell ([`bucketed_class_intersections`]). Both
//! functions take the bucket assignment as a closure (in practice
//! [`crate::shard::value_bucket`] under the session's scheme) so they
//! stay crypto-free and exact.

use std::collections::BTreeMap;

/// Partition of a multiset by duplicate count: `d → set of values with
/// exactly d occurrences`.
pub fn duplicate_partition(values: &[Vec<u8>]) -> BTreeMap<u64, Vec<Vec<u8>>> {
    let mut counts: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut partition: BTreeMap<u64, Vec<Vec<u8>>> = BTreeMap::new();
    for (v, d) in counts {
        partition.entry(d).or_default().push(v.clone());
    }
    partition
}

/// The §5.2 leak matrix computed in the clear:
/// `(d, d') → |V_R(d) ∩ V_S(d')|`. Cells with value 0 are omitted.
pub fn expected_class_intersections(
    receiver_values: &[Vec<u8>],
    sender_values: &[Vec<u8>],
) -> BTreeMap<(u64, u64), u64> {
    let r_part = duplicate_partition(receiver_values);
    let s_part = duplicate_partition(sender_values);
    let mut matrix = BTreeMap::new();
    for (d_r, r_vals) in &r_part {
        let r_set: std::collections::BTreeSet<&Vec<u8>> = r_vals.iter().collect();
        for (d_s, s_vals) in &s_part {
            let common = s_vals.iter().filter(|v| r_set.contains(v)).count() as u64;
            if common > 0 {
                matrix.insert((*d_r, *d_s), common);
            }
        }
    }
    matrix
}

/// How identifying the leak is: the fraction of matched values `R` can
/// *uniquely* identify from the class matrix. A value is pinned down when
/// its receiver-side class `V_R(d)` contains exactly one value that
/// matched (i.e. the matrix row sums for `d` equal 1 and `|V_R(d)| = 1`,
/// or every member of the class matched).
///
/// Two boundary cases from the paper: all duplicate counts equal — `R`
/// learns only the intersection size (identifiability only when *all or
/// none* of a class matched); all counts distinct — `R` learns the exact
/// intersection.
pub fn identifiable_match_fraction(receiver_values: &[Vec<u8>], sender_values: &[Vec<u8>]) -> f64 {
    let r_part = duplicate_partition(receiver_values);
    let s_counts = duplicate_partition(sender_values);
    // Flatten sender counts: value → duplicate count.
    let mut s_dup: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
    for (d, vals) in &s_counts {
        for v in vals {
            s_dup.insert(v, *d);
        }
    }
    let mut matched_total = 0u64;
    let mut identifiable = 0u64;
    for r_vals in r_part.values() {
        // Within one receiver class, group matches by sender class.
        let mut per_sender_class: BTreeMap<u64, u64> = BTreeMap::new();
        for v in r_vals {
            if let Some(d_s) = s_dup.get(v) {
                *per_sender_class.entry(*d_s).or_insert(0) += 1;
            }
        }
        let class_size = r_vals.len() as u64;
        for m in per_sender_class.into_values() {
            matched_total += m;
            // R knows m of the class_size values in this receiver class
            // matched this sender class; each is identified iff the
            // candidate pool has exactly m members (all matched) — then
            // there is no ambiguity.
            if m == class_size {
                identifiable += m;
            }
        }
    }
    if matched_total == 0 {
        0.0
    } else {
        identifiable as f64 / matched_total as f64
    }
}

/// What a sharded run discloses about one party's *set*: the number of
/// distinct values per bucket. `out[b]` is `|{v : assign(v) = b}|` after
/// deduplication; the entries sum to the distinct-set size the unsharded
/// protocols already reveal, so the sharding delta is exactly this
/// partition of a known total into `B` parts.
pub fn bucket_size_disclosure(
    values: &[Vec<u8>],
    shards: u32,
    assign: &dyn Fn(&[u8]) -> u32,
) -> Vec<u64> {
    let shards = shards.max(1) as usize;
    let mut sizes = vec![0u64; shards];
    let distinct: std::collections::BTreeSet<&Vec<u8>> = values.iter().collect();
    for v in distinct {
        let b = (assign(v) as usize).min(shards - 1);
        if let Some(slot) = sizes.get_mut(b) {
            *slot += 1;
        }
    }
    sizes
}

/// The multiset analogue of [`bucket_size_disclosure`]: per-bucket
/// occurrence counts, summing to `|values|`. This is what each party of
/// a sharded equijoin-size run learns about the other's multiset shape.
pub fn bucket_multiset_disclosure(
    values: &[Vec<u8>],
    shards: u32,
    assign: &dyn Fn(&[u8]) -> u32,
) -> Vec<u64> {
    let shards = shards.max(1) as usize;
    let mut sizes = vec![0u64; shards];
    for v in values {
        let b = (assign(v) as usize).min(shards - 1);
        if let Some(slot) = sizes.get_mut(b) {
            *slot += 1;
        }
    }
    sizes
}

/// The §5.2 leak matrix of a *sharded* equijoin-size run: one matrix per
/// bucket, restricted to values assigned there. Duplicate counts stay
/// global (all occurrences of a value share its bucket), so summing the
/// per-bucket matrices cell for cell reproduces
/// [`expected_class_intersections`] exactly — sharding refines the §5.2
/// leak by bucket without inventing new classes.
pub fn bucketed_class_intersections(
    receiver_values: &[Vec<u8>],
    sender_values: &[Vec<u8>],
    shards: u32,
    assign: &dyn Fn(&[u8]) -> u32,
) -> Vec<BTreeMap<(u64, u64), u64>> {
    let shards = shards.max(1);
    let split = |values: &[Vec<u8>]| -> Vec<Vec<Vec<u8>>> {
        let mut per: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards as usize];
        for v in values {
            let b = (assign(v) as usize).min(shards as usize - 1);
            if let Some(bucket) = per.get_mut(b) {
                bucket.push(v.clone());
            }
        }
        per
    };
    split(receiver_values)
        .into_iter()
        .zip(split(sender_values))
        .map(|(vr_b, vs_b)| expected_class_intersections(&vr_b, &vs_b))
        .collect()
}

/// Sums per-bucket leak matrices cell for cell — the inverse direction
/// of [`bucketed_class_intersections`]'s refinement.
pub fn merge_class_intersections(
    buckets: &[BTreeMap<(u64, u64), u64>],
) -> BTreeMap<(u64, u64), u64> {
    let mut total: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for m in buckets {
        for (cell, n) in m {
            *total.entry(*cell).or_insert(0) += n;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn partition_by_duplicates() {
        let p = duplicate_partition(&to_values(&["a", "a", "b", "c", "c", "c"]));
        assert_eq!(p[&1], to_values(&["b"]));
        assert_eq!(p[&2], to_values(&["a"]));
        assert_eq!(p[&3], to_values(&["c"]));
    }

    #[test]
    fn matrix_counts_cross_class_matches() {
        let vr = to_values(&["a", "b", "b"]); // a×1, b×2
        let vs = to_values(&["a", "a", "b", "b", "b"]); // a×2, b×3
        let m = expected_class_intersections(&vr, &vs);
        assert_eq!(m[&(1, 2)], 1);
        assert_eq!(m[&(2, 3)], 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn uniform_duplicates_leak_only_size() {
        // All counts 1 → single cell (1,1) with the intersection size.
        let vr = to_values(&["a", "b", "c"]);
        let vs = to_values(&["b", "c", "d"]);
        let m = expected_class_intersections(&vr, &vs);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&(1, 1)], 2);
        // Identifiability: 2 of 3 receiver values matched — ambiguous.
        assert!(identifiable_match_fraction(&vr, &vs) < 1.0);
    }

    #[test]
    fn distinct_duplicate_counts_fully_identify() {
        // Every value has a unique duplicate count → R pinpoints matches.
        let vr = to_values(&["a", "b", "b", "c", "c", "c"]);
        let vs = to_values(&["a", "b", "b", "x"]);
        assert_eq!(identifiable_match_fraction(&vr, &vs), 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(expected_class_intersections(&[], &[]).is_empty());
        assert_eq!(identifiable_match_fraction(&[], &[]), 0.0);
    }

    /// A deterministic stand-in for `shard::value_bucket`: any pure
    /// function of the value works identically for the composition laws.
    fn assign(v: &[u8]) -> u32 {
        v.iter().map(|&b| u32::from(b)).sum::<u32>() % 3
    }

    #[test]
    fn bucket_sizes_partition_the_known_totals() {
        let vals = to_values(&["a", "a", "b", "c", "d", "e", "e", "e"]);
        let set_sizes = bucket_size_disclosure(&vals, 3, &assign);
        assert_eq!(set_sizes.len(), 3);
        assert_eq!(set_sizes.iter().sum::<u64>(), 5); // distinct values
        let multi_sizes = bucket_multiset_disclosure(&vals, 3, &assign);
        assert_eq!(multi_sizes.iter().sum::<u64>(), vals.len() as u64);
    }

    #[test]
    fn bucketed_matrices_sum_to_the_global_matrix() {
        let vr = to_values(&["a", "b", "b", "c", "d", "d", "d", "e"]);
        let vs = to_values(&["a", "a", "b", "c", "c", "e", "x", "x"]);
        let per_bucket = bucketed_class_intersections(&vr, &vs, 3, &assign);
        assert_eq!(per_bucket.len(), 3);
        assert_eq!(
            merge_class_intersections(&per_bucket),
            expected_class_intersections(&vr, &vs)
        );
    }

    #[test]
    fn single_bucket_matches_unsharded_leak() {
        let vr = to_values(&["a", "b", "b"]);
        let vs = to_values(&["a", "b", "b", "c"]);
        let per_bucket = bucketed_class_intersections(&vr, &vs, 1, &|_| 0);
        assert_eq!(per_bucket.len(), 1);
        assert_eq!(per_bucket[0], expected_class_intersections(&vr, &vs));
        assert_eq!(
            bucket_size_disclosure(&vr, 1, &|_| 0),
            vec![2] // distinct values
        );
    }
}
