//! Clear-text characterization of the §5.2 equijoin-size leak.
//!
//! §5.2 states exactly what the equijoin-size protocol reveals beyond the
//! join size: partition each side's multiset by duplicate count
//! (`V(d)` = values occurring `d` times); then `R` learns
//! `|V_R(d) ∩ V_S(d')|` for every `(d, d')`. This module computes that
//! quantity directly from the inputs, so tests and the E13 experiment can
//! verify the protocol leaks **exactly** this much — no more, no less.

use std::collections::BTreeMap;

/// Partition of a multiset by duplicate count: `d → set of values with
/// exactly d occurrences`.
pub fn duplicate_partition(values: &[Vec<u8>]) -> BTreeMap<u64, Vec<Vec<u8>>> {
    let mut counts: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut partition: BTreeMap<u64, Vec<Vec<u8>>> = BTreeMap::new();
    for (v, d) in counts {
        partition.entry(d).or_default().push(v.clone());
    }
    partition
}

/// The §5.2 leak matrix computed in the clear:
/// `(d, d') → |V_R(d) ∩ V_S(d')|`. Cells with value 0 are omitted.
pub fn expected_class_intersections(
    receiver_values: &[Vec<u8>],
    sender_values: &[Vec<u8>],
) -> BTreeMap<(u64, u64), u64> {
    let r_part = duplicate_partition(receiver_values);
    let s_part = duplicate_partition(sender_values);
    let mut matrix = BTreeMap::new();
    for (d_r, r_vals) in &r_part {
        let r_set: std::collections::BTreeSet<&Vec<u8>> = r_vals.iter().collect();
        for (d_s, s_vals) in &s_part {
            let common = s_vals.iter().filter(|v| r_set.contains(v)).count() as u64;
            if common > 0 {
                matrix.insert((*d_r, *d_s), common);
            }
        }
    }
    matrix
}

/// How identifying the leak is: the fraction of matched values `R` can
/// *uniquely* identify from the class matrix. A value is pinned down when
/// its receiver-side class `V_R(d)` contains exactly one value that
/// matched (i.e. the matrix row sums for `d` equal 1 and `|V_R(d)| = 1`,
/// or every member of the class matched).
///
/// Two boundary cases from the paper: all duplicate counts equal — `R`
/// learns only the intersection size (identifiability only when *all or
/// none* of a class matched); all counts distinct — `R` learns the exact
/// intersection.
pub fn identifiable_match_fraction(receiver_values: &[Vec<u8>], sender_values: &[Vec<u8>]) -> f64 {
    let r_part = duplicate_partition(receiver_values);
    let s_counts = duplicate_partition(sender_values);
    // Flatten sender counts: value → duplicate count.
    let mut s_dup: BTreeMap<&Vec<u8>, u64> = BTreeMap::new();
    for (d, vals) in &s_counts {
        for v in vals {
            s_dup.insert(v, *d);
        }
    }
    let mut matched_total = 0u64;
    let mut identifiable = 0u64;
    for r_vals in r_part.values() {
        // Within one receiver class, group matches by sender class.
        let mut per_sender_class: BTreeMap<u64, u64> = BTreeMap::new();
        for v in r_vals {
            if let Some(d_s) = s_dup.get(v) {
                *per_sender_class.entry(*d_s).or_insert(0) += 1;
            }
        }
        let class_size = r_vals.len() as u64;
        for m in per_sender_class.into_values() {
            matched_total += m;
            // R knows m of the class_size values in this receiver class
            // matched this sender class; each is identified iff the
            // candidate pool has exactly m members (all matched) — then
            // there is no ambiguity.
            if m == class_size {
                identifiable += m;
            }
        }
    }
    if matched_total == 0 {
        0.0
    } else {
        identifiable as f64 / matched_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn partition_by_duplicates() {
        let p = duplicate_partition(&to_values(&["a", "a", "b", "c", "c", "c"]));
        assert_eq!(p[&1], to_values(&["b"]));
        assert_eq!(p[&2], to_values(&["a"]));
        assert_eq!(p[&3], to_values(&["c"]));
    }

    #[test]
    fn matrix_counts_cross_class_matches() {
        let vr = to_values(&["a", "b", "b"]); // a×1, b×2
        let vs = to_values(&["a", "a", "b", "b", "b"]); // a×2, b×3
        let m = expected_class_intersections(&vr, &vs);
        assert_eq!(m[&(1, 2)], 1);
        assert_eq!(m[&(2, 3)], 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn uniform_duplicates_leak_only_size() {
        // All counts 1 → single cell (1,1) with the intersection size.
        let vr = to_values(&["a", "b", "c"]);
        let vs = to_values(&["b", "c", "d"]);
        let m = expected_class_intersections(&vr, &vs);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&(1, 1)], 2);
        // Identifiability: 2 of 3 receiver values matched — ambiguous.
        assert!(identifiable_match_fraction(&vr, &vs) < 1.0);
    }

    #[test]
    fn distinct_duplicate_counts_fully_identify() {
        // Every value has a unique duplicate count → R pinpoints matches.
        let vr = to_values(&["a", "b", "b", "c", "c", "c"]);
        let vs = to_values(&["a", "b", "b", "x"]);
        assert_eq!(identifiable_match_fraction(&vr, &vs), 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(expected_class_intersections(&[], &[]).is_empty());
        assert_eq!(identifiable_match_fraction(&[], &[]), 0.0);
    }
}
