//! N-party intersection size — the natural generalization of §5.1 that
//! the paper's two-party machinery makes possible.
//!
//! Commutative encryption composes: a value encrypted by *every* party's
//! key is the same element no matter the order the layers were applied.
//! So `N` parties arranged in a ring can compute `|V_0 ∩ … ∩ V_{N-1}|`:
//!
//! 1. Each party `P_i` hashes and encrypts its own set once and sends the
//!    sorted list to its right neighbor.
//! 2. For `N−1` hops, each party adds its own encryption layer to every
//!    list passing through, re-sorts (unlinking positions, exactly like
//!    the §5.1 reorder), and forwards.
//! 3. After `N−1` hops every list carries all `N` layers; the lists are
//!    forwarded to the designated *collector*, who counts the elements
//!    common to all `N` fully-encrypted lists.
//!
//! Disclosure (semi-honest, non-colluding): the collector learns the
//! intersection size and every `|V_i|`; each party learns the sizes of
//! the lists that transit through it. Collusion between parties adjacent
//! in the ring reveals more — the standard caveat for ring protocols,
//! inherited from the two-party multi-query caveat of §2.3.

use std::collections::BTreeMap;

use minshare_bignum::UBig;
use minshare_crypto::CommutativeScheme;
use minshare_net::{duplex_pair, CountingTransport, TrafficStats, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::ProtocolError;
use crate::prepare::prepare_set;
use crate::stats::OpCounters;
use crate::wire::{require_strictly_sorted, Message};

/// A byte-counted in-memory link endpoint (orchestrator wiring).
type CountedLink = CountingTransport<minshare_net::duplex::DuplexEndpoint>;

/// Result of an N-party run, as seen by the collector (party 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipartyRun {
    /// `|V_0 ∩ V_1 ∩ … ∩ V_{N-1}|`.
    pub intersection_size: usize,
    /// Every party's (deduplicated) set size, in party order.
    pub set_sizes: Vec<usize>,
    /// Combined op counts across all parties.
    pub ops: OpCounters,
    /// Total bits moved across all ring links.
    pub total_bits: u64,
}

/// One party's worker: encrypt own set, then add a layer to each list
/// passing through for `hops` rounds, then forward the last list to the
/// collector (unless this party *is* the collector).
#[allow(clippy::too_many_arguments)]
fn party_worker<S: CommutativeScheme>(
    scheme: &S,
    index: usize,
    n_parties: usize,
    values: &[Vec<u8>],
    mut left: impl Transport,  // receive from left neighbor
    mut right: impl Transport, // send to right neighbor
    mut to_collector: impl Transport,
    seed: u64,
) -> Result<OpCounters, ProtocolError> {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37));
    let mut ops = OpCounters::default();
    let key = scheme.key_gen(&mut rng);

    // Round 0: own set, one layer, sorted, to the right.
    let prepared = prepare_set(scheme, values, &mut ops)?;
    let mut own: Vec<UBig> = prepared
        .entries
        .iter()
        .map(|(_, h)| {
            ops.encryptions += 1;
            scheme.apply(&key, h)
        })
        .collect();
    own.sort();
    right.send(&Message::Codewords(own).encode(scheme)?)?;

    // Rounds 1..N-1: add a layer to each transiting list and forward.
    // The list arriving at round N-1 is complete; it goes to the
    // collector instead of around the ring again.
    for hop in 1..n_parties {
        let incoming = match Message::decode(&left.recv()?, scheme)? {
            Message::Codewords(list) => list,
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    expected: "codewords",
                    got: other.kind(),
                })
            }
        };
        require_strictly_sorted(&incoming, "transit list")?;
        let mut layered: Vec<UBig> = incoming
            .iter()
            .map(|y| {
                ops.encryptions += 1;
                scheme.apply(&key, y)
            })
            .collect();
        layered.sort();
        let frame = Message::Codewords(layered).encode(scheme)?;
        if hop == n_parties - 1 {
            // Fully encrypted: deliver to the collector. Every party
            // (including the collector itself) holds a collector link.
            to_collector.send(&frame)?;
        } else {
            right.send(&frame)?;
        }
    }
    Ok(ops)
}

/// Orchestrates an `N`-party intersection-size computation over in-memory
/// links, with party 0 as the collector. `sets[i]` is party `i`'s input.
///
/// Requires `N ≥ 2`.
pub fn multiparty_intersection_size<S: CommutativeScheme + Sync>(
    scheme: &S,
    sets: &[Vec<Vec<u8>>],
    seed: u64,
) -> Result<MultipartyRun, ProtocolError> {
    let n = sets.len();
    assert!(n >= 2, "need at least two parties");

    // Ring links i → i+1, plus a collector link for every party. Links
    // are handed to the workers by value (zip + rotate), so no slot can
    // be "unwired" — the invariant is structural, not asserted.
    let mut ring_tx: Vec<CountedLink> = Vec::new();
    let mut ring_rx: Vec<minshare_net::duplex::DuplexEndpoint> = Vec::new();
    let mut ring_stats: Vec<TrafficStats> = Vec::new();
    for _ in 0..n {
        let (tx, rx) = duplex_pair();
        let (tx, stats) = CountingTransport::new(tx);
        ring_tx.push(tx);
        ring_rx.push(rx);
        ring_stats.push(stats);
    }
    // The rx end of link i belongs to party i+1.
    ring_rx.rotate_right(1);
    let mut collector_tx: Vec<CountedLink> = Vec::new();
    let mut collector_rx = Vec::new();
    let mut collector_stats: Vec<TrafficStats> = Vec::new();
    for _ in 0..n {
        let (tx, rx) = duplex_pair();
        let (tx, stats) = CountingTransport::new(tx);
        collector_tx.push(tx);
        collector_rx.push(rx);
        collector_stats.push(stats);
    }

    let results = std::thread::scope(|scope| -> Result<Vec<OpCounters>, ProtocolError> {
        let mut handles = Vec::new();
        let links = ring_rx
            .into_iter()
            .zip(ring_tx)
            .zip(collector_tx)
            .enumerate();
        for ((i, ((left, right), to_collector)), values) in links.zip(sets.iter()) {
            handles.push(scope.spawn(move || {
                party_worker(scheme, i, n, values, left, right, to_collector, seed)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                h.join().map_err(|_| ProtocolError::PartyPanicked {
                    party: if i == 0 { "collector" } else { "party" },
                })?
            })
            .collect()
    })?;

    // Gather the N fully-encrypted lists: one per collector link (the
    // list that started at party i+1 completes at party i and arrives on
    // party i's collector link — N lists in total).
    let mut final_lists: Vec<Vec<UBig>> = Vec::new();
    for mut rx in collector_rx {
        match Message::decode(&rx.recv()?, scheme)? {
            Message::Codewords(list) => final_lists.push(list),
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    expected: "codewords",
                    got: other.kind(),
                })
            }
        }
    }
    debug_assert_eq!(final_lists.len(), n);
    // All lists share the same composite key, so equal values collide.
    let mut counts: BTreeMap<UBig, usize> = BTreeMap::new();
    for list in &final_lists {
        for x in list {
            *counts.entry(x.clone()).or_insert(0) += 1;
        }
    }
    let intersection_size = counts.values().filter(|&&c| c == n).count();

    let total_bits = ring_stats
        .iter()
        .chain(collector_stats.iter())
        .map(|s| s.bytes_sent() * 8)
        .sum();

    let mut ops = OpCounters::default();
    let mut set_sizes = Vec::with_capacity(n);
    for (i, partial) in results.into_iter().enumerate() {
        ops += partial;
        let distinct: std::collections::BTreeSet<&Vec<u8>> = sets[i].iter().collect();
        set_sizes.push(distinct.len());
    }

    Ok(MultipartyRun {
        intersection_size,
        set_sizes,
        ops,
        total_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minshare_crypto::QrGroup;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(0x3417);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn two_parties_match_pairwise_protocol_semantics() {
        let g = group();
        let sets = vec![to_values(&["a", "b", "c"]), to_values(&["b", "c", "d"])];
        let run = multiparty_intersection_size(&g, &sets, 1).unwrap();
        assert_eq!(run.intersection_size, 2);
        assert_eq!(run.set_sizes, vec![3, 3]);
    }

    #[test]
    fn three_parties() {
        let g = group();
        let sets = vec![
            to_values(&["a", "b", "c", "d"]),
            to_values(&["b", "c", "d", "e"]),
            to_values(&["c", "d", "e", "f"]),
        ];
        let run = multiparty_intersection_size(&g, &sets, 2).unwrap();
        assert_eq!(run.intersection_size, 2); // c, d
                                              // Each of the 3 lists gets 3 layers: own (1) + 2 transits per
                                              // party → per party: |own| + |transit lists| encryptions. Total
                                              // Ce = Σ_i |V_i| · N = 12 · ... each list of 4 encrypted 3 times
                                              // → 36 encryptions.
        assert_eq!(run.ops.encryptions, 36);
        assert!(run.total_bits > 0);
    }

    #[test]
    fn five_parties_sparse_intersection() {
        let g = group();
        let mut sets = Vec::new();
        for i in 0..5u32 {
            // All parties share "common-0" and "common-1"; each has two
            // private values.
            sets.push(to_values(&[
                "common-0",
                "common-1",
                &format!("private-{i}-a"),
                &format!("private-{i}-b"),
            ]));
        }
        let run = multiparty_intersection_size(&g, &sets, 3).unwrap();
        assert_eq!(run.intersection_size, 2);
        assert_eq!(run.set_sizes, vec![4; 5]);
    }

    #[test]
    fn empty_party_empties_intersection() {
        let g = group();
        let sets = vec![
            to_values(&["a", "b"]),
            to_values(&[]),
            to_values(&["a", "b"]),
        ];
        let run = multiparty_intersection_size(&g, &sets, 4).unwrap();
        assert_eq!(run.intersection_size, 0);
        assert_eq!(run.set_sizes, vec![2, 0, 2]);
    }

    #[test]
    fn duplicates_deduplicated_per_party() {
        let g = group();
        let sets = vec![to_values(&["x", "x", "y"]), to_values(&["x", "y", "y"])];
        let run = multiparty_intersection_size(&g, &sets, 5).unwrap();
        assert_eq!(run.intersection_size, 2);
        assert_eq!(run.set_sizes, vec![2, 2]);
    }

    #[test]
    fn works_over_sra_scheme_too() {
        let mut rng = StdRng::seed_from_u64(0x6317);
        let sra = minshare_crypto::sra::SraContext::generate(&mut rng, 64).unwrap();
        let sets = vec![
            to_values(&["a", "b", "c"]),
            to_values(&["b", "c"]),
            to_values(&["c", "b", "z"]),
        ];
        let run = multiparty_intersection_size(&sra, &sets, 6).unwrap();
        assert_eq!(run.intersection_size, 2);
    }
}
