//! Input preparation shared by all four protocols: deduplication, hashing
//! into the group, and the collision check of §3.2.2.

use std::collections::BTreeSet;

use minshare_bignum::UBig;
use minshare_crypto::CommutativeScheme;

use crate::error::ProtocolError;
use crate::stats::OpCounters;

/// A party's prepared input: each **distinct** value paired with its hash
/// `h(v) ∈ QR_p`.
#[derive(Debug, Clone)]
pub struct PreparedSet {
    /// `(value, h(value))`, one entry per distinct value, in value order.
    pub entries: Vec<(Vec<u8>, UBig)>,
}

impl PreparedSet {
    /// Number of distinct values — the paper's `|V|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the input was empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Deduplicates `values` (the paper's `V_S`/`V_R` are sets, §2.2.1),
/// hashes each into the group, and performs the paper's collision check:
/// sort the hashes and look for duplicates. Counts one `Ch` per distinct
/// value in `ops`.
///
/// Registered as a hash-class sanitizer in the analyzer's taint
/// registry (`HASH_SANITIZER_FNS`): its output is `HASHED`, which is
/// still wire-forbidden — WIRE01 requires a subsequent encrypt-class
/// call before a send. Rename it and the registry entry must move too.
pub fn prepare_set<S: CommutativeScheme>(
    scheme: &S,
    values: &[Vec<u8>],
    ops: &mut OpCounters,
) -> Result<PreparedSet, ProtocolError> {
    let distinct: BTreeSet<&Vec<u8>> = values.iter().collect();
    let mut entries = Vec::with_capacity(distinct.len());
    for v in distinct {
        let h = scheme.hash_value(v);
        ops.hashes += 1;
        entries.push((v.clone(), h));
    }
    // Collision check (paper §3.2.2): sort hashes, adjacent equal = crash.
    let mut hashes: Vec<&UBig> = entries.iter().map(|(_, h)| h).collect();
    hashes.sort();
    if hashes.windows(2).any(|w| w[0] == w[1]) {
        return Err(ProtocolError::HashCollision);
    }
    Ok(PreparedSet { entries })
}

/// Hashes a **multiset** (duplicates preserved) for the equijoin-size
/// protocol of §5.2. The collision check still applies to *distinct*
/// values only.
pub fn prepare_multiset<S: CommutativeScheme>(
    scheme: &S,
    values: &[Vec<u8>],
    ops: &mut OpCounters,
) -> Result<Vec<(Vec<u8>, UBig)>, ProtocolError> {
    // Hash distinct values once (both for cost parity with the paper —
    // hashing is per value — and to detect collisions), then fan out.
    let prepared = prepare_set(scheme, values, ops)?;
    let lookup: std::collections::BTreeMap<&Vec<u8>, &UBig> =
        prepared.entries.iter().map(|(v, h)| (v, h)).collect();
    Ok(values
        .iter()
        .map(|v| {
            let h = match lookup.get(v) {
                Some(h) => (*h).clone(),
                // Unreachable: prepare_set hashed every distinct value of
                // `values`. Recompute defensively rather than panic.
                None => scheme.hash_value(v),
            };
            (v.clone(), h)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minshare_crypto::QrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> QrGroup {
        let mut rng = StdRng::seed_from_u64(3);
        QrGroup::generate(&mut rng, 64).unwrap()
    }

    #[test]
    fn dedupes_and_counts_hashes() {
        let g = group();
        let mut ops = OpCounters::default();
        let values = vec![b"a".to_vec(), b"b".to_vec(), b"a".to_vec()];
        let prepared = prepare_set(&g, &values, &mut ops).unwrap();
        assert_eq!(prepared.len(), 2);
        assert_eq!(ops.hashes, 2);
    }

    #[test]
    fn entries_are_value_sorted_and_hashed() {
        let g = group();
        let mut ops = OpCounters::default();
        let values = vec![b"z".to_vec(), b"a".to_vec()];
        let prepared = prepare_set(&g, &values, &mut ops).unwrap();
        assert_eq!(prepared.entries[0].0, b"a");
        assert_eq!(prepared.entries[1].0, b"z");
        assert_eq!(prepared.entries[0].1, g.hash_to_group(b"a"));
    }

    #[test]
    fn multiset_preserves_duplicates() {
        let g = group();
        let mut ops = OpCounters::default();
        let values = vec![b"a".to_vec(), b"b".to_vec(), b"a".to_vec()];
        let prepared = prepare_multiset(&g, &values, &mut ops).unwrap();
        assert_eq!(prepared.len(), 3);
        // Hash computed once per distinct value.
        assert_eq!(ops.hashes, 2);
        assert_eq!(prepared[0].1, prepared[2].1);
    }

    #[test]
    fn empty_input() {
        let g = group();
        let mut ops = OpCounters::default();
        assert!(prepare_set(&g, &[], &mut ops).unwrap().is_empty());
        assert!(prepare_multiset(&g, &[], &mut ops).unwrap().is_empty());
    }
}
