//! Error type for the protocol layer.

use std::fmt;

use minshare_crypto::CryptoError;
use minshare_net::NetError;
use minshare_privdb::DbError;

/// Errors produced while running the minimal-sharing protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// The transport failed.
    Net(NetError),
    /// The relational substrate failed.
    Db(DbError),
    /// A message arrived that does not fit the current protocol phase.
    UnexpectedMessage {
        /// What the engine was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// A frame failed to parse as a protocol message.
    MalformedMessage {
        /// What went wrong.
        detail: String,
    },
    /// A list that the protocol requires to be lexicographically sorted
    /// was not (a semi-honest peer never sends this; treat as corruption).
    NotSorted {
        /// Which list.
        what: &'static str,
    },
    /// Two distinct input values hashed to the same group element. The
    /// paper prescribes detecting this by sorting the hashes (§3.2.2).
    HashCollision,
    /// A list had the wrong number of entries for the protocol phase.
    LengthMismatch {
        /// What the engine expected.
        expected: usize,
        /// What arrived.
        got: usize,
    },
    /// The engine was driven out of order (a bug in the caller).
    WrongPhase {
        /// Description of the violated ordering.
        detail: &'static str,
    },
    /// A worker thread panicked while running a party.
    PartyPanicked {
        /// Which party.
        party: &'static str,
    },
    /// The spill-to-disk sorter failed (I/O on a spill run file, or a
    /// record of the wrong width was pushed).
    Spill {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Crypto(e) => write!(f, "crypto: {e}"),
            ProtocolError::Net(e) => write!(f, "net: {e}"),
            ProtocolError::Db(e) => write!(f, "db: {e}"),
            ProtocolError::UnexpectedMessage { expected, got } => {
                write!(f, "expected {expected} message, got {got}")
            }
            ProtocolError::MalformedMessage { detail } => {
                write!(f, "malformed message: {detail}")
            }
            ProtocolError::NotSorted { what } => {
                write!(f, "{what} is required to be lexicographically sorted")
            }
            ProtocolError::HashCollision => {
                write!(f, "hash collision detected among input values")
            }
            ProtocolError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} entries, got {got}")
            }
            ProtocolError::WrongPhase { detail } => write!(f, "wrong phase: {detail}"),
            ProtocolError::PartyPanicked { party } => {
                write!(f, "{party} thread panicked")
            }
            ProtocolError::Spill { detail } => write!(f, "spill sorter: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Crypto(e) => Some(e),
            ProtocolError::Net(e) => Some(e),
            ProtocolError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for ProtocolError {
    fn from(e: CryptoError) -> Self {
        ProtocolError::Crypto(e)
    }
}

impl From<NetError> for ProtocolError {
    fn from(e: NetError) -> Self {
        ProtocolError::Net(e)
    }
}

impl From<DbError> for ProtocolError {
    fn from(e: DbError) -> Self {
        ProtocolError::Db(e)
    }
}

impl From<minshare_bignum::BigNumError> for ProtocolError {
    fn from(e: minshare_bignum::BigNumError) -> Self {
        ProtocolError::Crypto(CryptoError::Arithmetic(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ProtocolError = CryptoError::NotSafePrime.into();
        assert!(e.to_string().contains("crypto"));
        let e: ProtocolError = NetError::Closed.into();
        assert!(e.to_string().contains("net"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ProtocolError::NotSorted { what: "Y_R" };
        assert!(e.to_string().contains("Y_R"));
        let e = ProtocolError::Spill {
            detail: "disk full".to_string(),
        };
        assert!(e.to_string().contains("disk full"));
    }
}
