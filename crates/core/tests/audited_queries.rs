//! The §2.3 multi-query defenses wired to live protocol runs: a sender
//! that answers repeated intersection-size queries behind a
//! [`minshare::audit::QueryAuditor`], and a receiver mounting the classic
//! tracker attack that the overlap control must stop.

use minshare::audit::{AuditPolicy, AuditRefusal, QueryAuditor};
use minshare::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(0xa0d1);
    QrGroup::generate(&mut rng, 64).unwrap()
}

fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
    strs.iter().map(|s| s.as_bytes().to_vec()).collect()
}

/// Runs one audited intersection-size query. The *receiver* is the
/// querying party; the auditor guards the receiver's own input stream
/// (mirroring the paper's "scrutiny of the queries by the parties").
fn audited_query(
    g: &QrGroup,
    auditor: &mut QueryAuditor,
    sender_set: &[Vec<u8>],
    query: &[Vec<u8>],
    seed: u64,
) -> Result<usize, AuditRefusal> {
    auditor.admit(query)?;
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(seed);
            intersection_size::run_sender(t, g, sender_set, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
            intersection_size::run_receiver(t, g, query, &mut rng)
        },
    )
    .expect("protocol run");
    auditor.release(query, run.receiver.intersection_size)?;
    Ok(run.receiver.intersection_size)
}

#[test]
fn legitimate_query_stream_flows() {
    let g = group();
    let sender_set = to_values(&["a", "b", "c", "d", "e"]);
    let mut auditor = QueryAuditor::new(AuditPolicy {
        max_queries: Some(10),
        max_overlap: Some(0.5),
        min_result_size: Some(2),
        ..Default::default()
    });
    let q1 = to_values(&["a", "b", "c"]);
    assert_eq!(
        audited_query(&g, &mut auditor, &sender_set, &q1, 1).unwrap(),
        3
    );
    let q2 = to_values(&["d", "e", "x", "y"]); // disjoint from q1
    assert_eq!(
        audited_query(&g, &mut auditor, &sender_set, &q2, 2).unwrap(),
        2
    );
    assert_eq!(auditor.answered(), 2);
}

#[test]
fn tracker_attack_is_stopped_before_any_bits_flow() {
    // The attack: learn whether "victim" ∈ V_S by querying Q and then
    // Q ∪ {victim} and differencing the sizes. The second query must be
    // refused at admission — before the protocol runs at all.
    let g = group();
    let sender_set = to_values(&["a", "b", "c", "victim"]);
    let mut auditor = QueryAuditor::new(AuditPolicy {
        max_overlap: Some(0.6),
        ..Default::default()
    });
    let probe = to_values(&["a", "b", "c"]);
    let base = audited_query(&g, &mut auditor, &sender_set, &probe, 3).unwrap();
    assert_eq!(base, 3);

    let tracker = to_values(&["a", "b", "c", "victim"]);
    let err = audited_query(&g, &mut auditor, &sender_set, &tracker, 4).unwrap_err();
    assert!(matches!(err, AuditRefusal::OverlapTooHigh { .. }), "{err}");
    // Only the first query ever reached the wire.
    assert_eq!(auditor.answered(), 1);
    assert_eq!(auditor.trail().len(), 2);
}

#[test]
fn pinpointing_result_is_suppressed_after_computation() {
    // A query that isolates one individual computes fine but is withheld
    // by the result-size floor.
    let g = group();
    let sender_set = to_values(&["target", "x", "y"]);
    let mut auditor = QueryAuditor::new(AuditPolicy {
        min_result_size: Some(3),
        ..Default::default()
    });
    let needle = to_values(&["target", "p", "q", "r", "s"]);
    let err = audited_query(&g, &mut auditor, &sender_set, &needle, 5).unwrap_err();
    assert!(matches!(
        err,
        AuditRefusal::ResultTooSmall {
            size: 1,
            minimum: 3
        }
    ));
    assert_eq!(auditor.answered(), 0);
}
