//! Regression tests for peer-supplied garbage: a protocol engine facing a
//! misbehaving peer must come back with a typed [`ProtocolError`], never a
//! panic. Each test plays one honest engine against a scripted "peer"
//! that injects truncated, corrupted, mistyped or unsorted frames
//! directly on the raw transport.

use minshare::prelude::*;
use minshare::wire::Message;
use minshare_bignum::UBig;
use minshare_net::Transport;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> QrGroup {
    let mut rng = StdRng::seed_from_u64(0xbadf);
    QrGroup::generate(&mut rng, 64).unwrap()
}

fn values(strs: &[&str]) -> Vec<Vec<u8>> {
    strs.iter().map(|s| s.as_bytes().to_vec()).collect()
}

/// Runs `intersection::run_receiver` against a scripted sender and
/// returns the receiver-side error.
fn receiver_vs_scripted_sender(
    g: &QrGroup,
    script: impl FnOnce(&mut dyn Transport, &QrGroup) -> Result<(), ProtocolError> + Send,
) -> ProtocolError {
    run_two_party(
        |t| {
            script(t, g)?;
            // Stay connected (draining frames) until the receiver exits,
            // so its own sends don't fail with Closed before it gets to
            // read the injected frame.
            while t.recv().is_ok() {}
            Ok(())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            intersection::run_receiver(t, g, &values(&["a", "b"]), &mut rng)
        },
    )
    .unwrap_err()
}

#[test]
fn receiver_rejects_truncated_frame() {
    let g = group();
    let err = receiver_vs_scripted_sender(&g, |t, g| {
        // A legitimate first message, cut short mid-codeword.
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.sample_element(&mut rng);
        let frame = Message::Codewords(vec![x]).encode(g)?;
        t.send(&frame[..frame.len() - 1])?;
        Ok(())
    });
    assert!(
        matches!(err, ProtocolError::MalformedMessage { .. }),
        "got {err:?}"
    );
}

#[test]
fn receiver_rejects_pure_garbage() {
    let g = group();
    let err = receiver_vs_scripted_sender(&g, |t, _| {
        t.send(&[0xff, 0x13, 0x37, 0x00, 0x01, 0x02, 0x03])?;
        Ok(())
    });
    assert!(
        matches!(err, ProtocolError::MalformedMessage { .. }),
        "got {err:?}"
    );
}

#[test]
fn receiver_rejects_empty_frame() {
    let g = group();
    let err = receiver_vs_scripted_sender(&g, |t, _| {
        t.send(&[])?;
        Ok(())
    });
    assert!(
        matches!(err, ProtocolError::MalformedMessage { .. }),
        "got {err:?}"
    );
}

#[test]
fn receiver_rejects_non_group_codewords() {
    let g = group();
    let err = receiver_vs_scripted_sender(&g, |t, g| {
        // Well-formed framing carrying a zero codeword (not a residue).
        let mut frame = vec![1u8, 0, 0, 0, 1];
        frame.extend(vec![0u8; g.codeword_bytes()]);
        t.send(&frame)?;
        Ok(())
    });
    assert!(matches!(err, ProtocolError::Crypto(_)), "got {err:?}");
}

#[test]
fn receiver_rejects_unsorted_z_s() {
    // The receiver checks Z_S arrives sorted (§3.2.2); an unsorted list
    // must surface as NotSorted, not be silently accepted.
    let g = group();
    let err = receiver_vs_scripted_sender(&g, |t, g| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut els: Vec<UBig> = (0..4).map(|_| g.sample_element(&mut rng)).collect();
        els.sort();
        els.reverse(); // strictly decreasing = definitely not sorted
        t.send(&Message::Codewords(els).encode(g)?)?;
        Ok(())
    });
    assert!(
        matches!(
            err,
            ProtocolError::NotSorted { .. } | ProtocolError::MalformedMessage { .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn receiver_rejects_wrong_message_kind() {
    // First flight of §3.2.2 is a Codewords list; a PayloadPairs message
    // in its place is a protocol violation.
    let g = group();
    let err = receiver_vs_scripted_sender(&g, |t, g| {
        let mut rng = StdRng::seed_from_u64(4);
        let x = g.sample_element(&mut rng);
        t.send(&Message::PayloadPairs(vec![(x, b"p".to_vec())]).encode(g)?)?;
        Ok(())
    });
    assert!(
        matches!(err, ProtocolError::UnexpectedMessage { .. }),
        "got {err:?}"
    );
}

#[test]
fn sender_survives_peer_hangup() {
    // The peer disappearing mid-protocol is a NetError, not a panic.
    let g = group();
    let err = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(5);
            intersection::run_sender(t, &g, &values(&["a", "b", "c"]), &mut rng)
        },
        |_t| -> Result<(), ProtocolError> { Ok(()) }, // hangs up immediately
    )
    .unwrap_err();
    assert!(matches!(err, ProtocolError::Net(_)), "got {err:?}");
}

#[test]
fn intersection_size_receiver_rejects_garbage_response() {
    let g = group();
    let err = run_two_party(
        |t| {
            // Read the receiver's first flight, reply with noise.
            let _ = t.recv()?;
            t.send(b"complete nonsense")?;
            Ok(())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(6);
            intersection_size::run_receiver(t, &g, &values(&["a", "b"]), &mut rng)
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ProtocolError::MalformedMessage { .. }),
        "got {err:?}"
    );
}
