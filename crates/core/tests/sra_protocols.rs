//! The protocol engines running over the **SRA** commutative cipher —
//! the paper's cited alternative instantiation of Definition 2 (mental
//! poker, [42]) — end to end, against the same clear-text oracles as the
//! primary QR/DDH instantiation.

use std::collections::BTreeSet;

use minshare::prelude::*;
use minshare_crypto::sra::SraContext;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sra() -> SraContext {
    let mut rng = StdRng::seed_from_u64(0x42a);
    SraContext::generate(&mut rng, 64).expect("SRA parameters")
}

fn to_values(strs: &[&str]) -> Vec<Vec<u8>> {
    strs.iter().map(|s| s.as_bytes().to_vec()).collect()
}

#[test]
fn intersection_over_sra() {
    let scheme = sra();
    let vs = to_values(&["alpha", "beta", "gamma", "delta"]);
    let vr = to_values(&["beta", "delta", "epsilon"]);
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(1);
            intersection::run_sender(t, &scheme, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(2);
            intersection::run_receiver(t, &scheme, &vr, &mut rng)
        },
    )
    .expect("run");
    assert_eq!(run.receiver.intersection, to_values(&["beta", "delta"]));
    assert_eq!(run.receiver.peer_set_size, 4);
    assert_eq!(run.sender.peer_set_size, 3);
    // §6.1 op accounting is instantiation-independent.
    assert_eq!(
        run.sender.ops.total_ce() + run.receiver.ops.total_ce(),
        2 * (4 + 3)
    );
}

#[test]
fn intersection_size_over_sra() {
    let scheme = sra();
    let vs = to_values(&["a", "b", "c"]);
    let vr = to_values(&["b", "c", "d", "e"]);
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(3);
            intersection_size::run_sender(t, &scheme, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(4);
            intersection_size::run_receiver(t, &scheme, &vr, &mut rng)
        },
    )
    .expect("run");
    assert_eq!(run.receiver.intersection_size, 2);
}

#[test]
fn equijoin_size_over_sra() {
    let scheme = sra();
    let vs = to_values(&["x", "x", "y", "z"]);
    let vr = to_values(&["x", "y", "y"]);
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(5);
            equijoin_size::run_sender(t, &scheme, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(6);
            equijoin_size::run_receiver(t, &scheme, &vr, &mut rng)
        },
    )
    .expect("run");
    // x: 2·1 + y: 1·2 = 4.
    assert_eq!(run.receiver.join_size, 4);
}

#[test]
fn sra_randomized_against_oracle() {
    use rand::RngExt as _;
    let scheme = sra();
    let vocab = ["p", "q", "r", "s", "t", "u"];
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..4u64 {
        let mut vs = Vec::new();
        let mut vr = Vec::new();
        for v in &vocab {
            if rng.random_bool(0.6) {
                vs.push(v.as_bytes().to_vec());
            }
            if rng.random_bool(0.5) {
                vr.push(v.as_bytes().to_vec());
            }
        }
        let run = run_two_party(
            |t| {
                let mut rng = StdRng::seed_from_u64(round * 2 + 100);
                intersection::run_sender(t, &scheme, &vs, &mut rng)
            },
            |t| {
                let mut rng = StdRng::seed_from_u64(round * 2 + 101);
                intersection::run_receiver(t, &scheme, &vr, &mut rng)
            },
        )
        .expect("run");
        let s: BTreeSet<&Vec<u8>> = vs.iter().collect();
        let r: BTreeSet<&Vec<u8>> = vr.iter().collect();
        let expect: Vec<Vec<u8>> = s.intersection(&r).map(|v| (*v).clone()).collect();
        assert_eq!(run.receiver.intersection, expect, "round={round}");
    }
}

#[test]
fn sra_codeword_width_differs_but_accounting_holds() {
    // SRA codewords are modulus-width; the wire accounting adapts.
    let scheme = sra();
    use minshare_crypto::CommutativeScheme;
    let k_bytes = scheme.codeword_len() as u64;
    let vs = to_values(&["1", "2", "3"]);
    let vr = to_values(&["2", "3", "4", "5"]);
    let run = run_two_party(
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            intersection::run_sender(t, &scheme, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(9);
            intersection::run_receiver(t, &scheme, &vr, &mut rng)
        },
    )
    .expect("run");
    // (|VS| + 2|VR|) codewords + 3 × 5-byte headers.
    let expect_bits = ((3 + 2 * 4) * k_bytes + 3 * 5) * 8;
    assert_eq!(run.total_bits(), expect_bits);
}
