//! Statistical checks on what actually crosses the wire.
//!
//! The security proofs (Statements 2, 4, 6) say each party's view is a
//! list of group elements indistinguishable from uniform. That is a
//! computational statement we cannot test directly — but its *statistical
//! shadow* is testable on a small group: over many protocol runs with
//! fresh keys, the codewords `S` receives in `Y_R` must be spread over
//! `QR_p` like uniform draws, with no bias toward the hash values of the
//! receiver's actual inputs.

use std::collections::BTreeMap;

use minshare::wire::Message;
use minshare::intersection;
use minshare_bignum::UBig;
use minshare_crypto::QrGroup;
use minshare_net::{duplex_pair, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// p = 2879 (q = 1439): small enough to enumerate the whole group.
fn tiny_group() -> QrGroup {
    QrGroup::new_unchecked(UBig::from(2879u64)).expect("safe prime")
}

/// Collects the raw `Y_R` frame a sender would see, across `runs`
/// protocol executions with fresh receiver keys.
fn collect_yr_codewords(runs: usize) -> Vec<u64> {
    let g = tiny_group();
    let vr: Vec<Vec<u8>> = (0..8u32).map(|i| format!("v{i}").into_bytes()).collect();
    let mut seen = Vec::new();
    for run_idx in 0..runs {
        let (mut fake_sender, mut r_end) = duplex_pair();
        let g2 = g.clone();
        let vr2 = vr.clone();
        let handle = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(run_idx as u64);
            // The receiver will fail when we hang up; that is fine — we
            // only need its first message.
            let _ = intersection::run_receiver(&mut r_end, &g2, &vr2, &mut rng);
        });
        let frame = fake_sender.recv().expect("Y_R frame");
        drop(fake_sender);
        handle.join().expect("receiver thread");
        match Message::decode(&frame, &g).expect("decode") {
            Message::Codewords(list) => {
                seen.extend(list.into_iter().map(|x| x.to_u64().expect("small group")))
            }
            other => panic!("unexpected message {other:?}"),
        }
    }
    seen
}

#[test]
fn yr_view_is_spread_over_the_whole_group() {
    // 300 runs × 8 values = 2400 draws over 1439 residues. Uniform draws
    // would hit ≈ 1160 distinct residues (coupon collector); a leaky
    // encoding that pinned each value to few codewords would hit ≤ ~8·300
    // duplicates concentrated on ≤ a few dozen residues.
    let draws = collect_yr_codewords(300);
    assert_eq!(draws.len(), 2400);
    let distinct: std::collections::BTreeSet<&u64> = draws.iter().collect();
    assert!(
        distinct.len() > 900,
        "only {} distinct codewords across 2400 draws — view looks non-uniform",
        distinct.len()
    );
}

#[test]
fn yr_view_chi_square_against_uniform() {
    // Bin the 2400 draws into 16 equal-probability buckets of QR_p and
    // chi-square against uniform. With 15 degrees of freedom the 99.9th
    // percentile is ≈ 37.7; allow generous slack (runs are seeded, so
    // this is deterministic — no flake risk).
    let g = tiny_group();
    // Enumerate the residues in order to build equal-size buckets.
    let mut residues: Vec<u64> = (1u64..2879)
        .filter(|&x| g.is_member(&UBig::from(x)))
        .collect();
    residues.sort();
    let bucket_of: BTreeMap<u64, usize> = residues
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i * 16 / residues.len()))
        .collect();

    let draws = collect_yr_codewords(300);
    let mut counts = [0f64; 16];
    for d in &draws {
        counts[bucket_of[d]] += 1.0;
    }
    let expected = draws.len() as f64 / 16.0;
    let chi2: f64 = counts
        .iter()
        .map(|c| (c - expected) * (c - expected) / expected)
        .sum();
    assert!(chi2 < 45.0, "chi-square {chi2:.1} too high — view biased");
}

#[test]
fn yr_never_contains_raw_hashes() {
    // The broken §3.1 protocol ships h(v) directly; the fixed protocol
    // must never ship a bare hash (that would let S dictionary-attack).
    let g = tiny_group();
    let vr: Vec<Vec<u8>> = (0..8u32).map(|i| format!("v{i}").into_bytes()).collect();
    let hashes: std::collections::BTreeSet<u64> = vr
        .iter()
        .map(|v| g.hash_to_group(v).to_u64().unwrap())
        .collect();
    let draws = collect_yr_codewords(200);
    let collisions = draws.iter().filter(|d| hashes.contains(d)).count();
    // A uniform draw hits the 8 hash values with probability 8/1439 per
    // draw → expect ≈ 8.9 of 1600; systematic leakage would give ≫ that.
    assert!(
        collisions < 40,
        "{collisions} of {} codewords equal raw hashes — encryption layer missing?",
        draws.len()
    );
}

#[test]
fn fresh_keys_give_fresh_views() {
    // Two runs over identical inputs must produce disjoint-looking views
    // (same Y_R twice would mean key reuse).
    let a = collect_yr_codewords(1);
    let b = collect_yr_codewords(2)[8..].to_vec(); // second run's batch
    assert_ne!(a, b, "two runs produced identical encrypted views");
}

#[test]
fn view_size_leaks_exactly_the_cardinality() {
    // |Y_R| must equal |V_R| — no padding, no truncation (the paper
    // declares the size disclosure; we verify it is exactly that).
    let draws = collect_yr_codewords(5);
    assert_eq!(draws.len(), 5 * 8);
}

/// Statement 2's simulator for `R`'s view, implemented literally: the
/// simulated `Y_S` contains `f_ẽS(h(v))` for `v` in the intersection plus
/// `|V_S − V_R|` random group elements, and the simulated step-4(b) reply
/// re-encrypts `Y_R` with the same simulated key `ẽS`.
mod simulator {
    use super::*;
    use minshare_bignum::random::random_range;

    pub struct SimulatedView {
        pub ys: Vec<UBig>,
        pub reencrypted_yr: Vec<UBig>,
    }

    /// Builds the simulation from exactly the inputs Statement 2 allows:
    /// `V_R`, `V_S ∩ V_R`, `|V_S|`, the hash, and `R`'s own key.
    pub fn simulate_r_view(
        g: &QrGroup,
        vr_sorted_yr: &[UBig], // R's own Y_R (R knows it)
        intersection_hashes: &[UBig],
        vs_size: usize,
        seed: u64,
    ) -> SimulatedView {
        let mut rng = StdRng::seed_from_u64(seed);
        let sim_key = g.gen_key(&mut rng);
        let mut ys: Vec<UBig> = intersection_hashes
            .iter()
            .map(|h| g.encrypt(&sim_key, h))
            .collect();
        while ys.len() < vs_size {
            // A fresh random group element for each v ∈ V_S − V_R.
            let t = random_range(&mut rng, &UBig::one(), g.modulus());
            ys.push(g.mul(&t, &t));
        }
        ys.sort();
        ys.dedup();
        let reencrypted_yr = vr_sorted_yr
            .iter()
            .map(|y| g.encrypt(&sim_key, y))
            .collect();
        SimulatedView { ys, reencrypted_yr }
    }
}

#[test]
fn statement2_simulator_is_output_consistent() {
    // Running R's final protocol steps on the SIMULATED view must produce
    // exactly the right intersection — the functional half of the
    // indistinguishability argument.
    let g = tiny_group();
    let mut rng = StdRng::seed_from_u64(0x51f);
    let vr: Vec<Vec<u8>> = (0..10u32).map(|i| format!("v{i}").into_bytes()).collect();
    let intersection: Vec<&Vec<u8>> = vr.iter().take(4).collect(); // v0..v3 match

    // R's own side: key, Y_R sorted with value tracking.
    let e_r = g.gen_key(&mut rng);
    let mut encrypted: Vec<(UBig, Vec<u8>)> = vr
        .iter()
        .map(|v| (g.encrypt(&e_r, &g.hash_to_group(v)), v.clone()))
        .collect();
    encrypted.sort_by(|a, b| a.0.cmp(&b.0));
    let yr: Vec<UBig> = encrypted.iter().map(|(y, _)| y.clone()).collect();

    let intersection_hashes: Vec<UBig> = intersection.iter().map(|v| g.hash_to_group(v)).collect();
    let sim = simulator::simulate_r_view(&g, &yr, &intersection_hashes, 7, 0xabc);

    // R's steps 5-6 on the simulated view.
    let zs: std::collections::BTreeSet<UBig> = sim.ys.iter().map(|y| g.encrypt(&e_r, y)).collect();
    let mut recovered: Vec<Vec<u8>> = encrypted
        .iter()
        .zip(&sim.reencrypted_yr)
        .filter(|(_, fes_y)| zs.contains(*fes_y))
        .map(|((_, v), _)| v.clone())
        .collect();
    recovered.sort();
    let mut expect: Vec<Vec<u8>> = intersection.iter().map(|v| (*v).clone()).collect();
    expect.sort();
    assert_eq!(
        recovered, expect,
        "simulated view must decode to the true answer"
    );
    assert_eq!(sim.ys.len(), 7, "simulated |Y_S| = |V_S|");
}

#[test]
fn statement2_simulator_marginals_look_like_real_views() {
    // The statistical half: the simulated Y_S codewords are spread over
    // QR_p like real ones (both ≈ uniform on the 1439 residues).
    let g = tiny_group();
    let mut draws_real = Vec::new();
    let mut draws_sim = Vec::new();
    for run in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(run);
        // Real Y_S: 8 hashed+encrypted values under a fresh key.
        let key = g.gen_key(&mut rng);
        for i in 0..8u32 {
            let h = g.hash_to_group(format!("r{run}-{i}").as_bytes());
            draws_real.push(g.encrypt(&key, &h).to_u64().unwrap());
        }
        // Simulated Y_S with a half-and-half intersection split.
        let hashes: Vec<UBig> = (0..4u32)
            .map(|i| g.hash_to_group(format!("s{run}-{i}").as_bytes()))
            .collect();
        let sim = simulator::simulate_r_view(&g, &[], &hashes, 8, run ^ 0xdead);
        draws_sim.extend(sim.ys.iter().map(|x| x.to_u64().unwrap()));
    }
    for (label, draws) in [("real", &draws_real), ("simulated", &draws_sim)] {
        let distinct: std::collections::BTreeSet<&u64> = draws.iter().collect();
        assert!(
            distinct.len() as f64 > draws.len() as f64 * 0.4,
            "{label}: only {} distinct of {}",
            distinct.len(),
            draws.len()
        );
    }
}
