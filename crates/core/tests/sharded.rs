//! Sharded-engine conformance: what the sharding layer promises beyond
//! "same answer".
//!
//! * **Wire identity at `--shards 1`** — a single-shard config must put
//!   *byte-identical frames* on the wire as the engine it delegates to,
//!   frame for frame, on both sides, for all four protocols. The shard
//!   layer at `B = 1` is a zero-cost wrapper, not a near-miss.
//! * **Typed rejection of malformed hellos** — a sender offered a
//!   corrupt, zero-bucket, oversized or truncated shard hello fails with
//!   a [`ProtocolError`], never a panic.
//! * **Leakage model ⇔ engine agreement** — the per-bucket
//!   `*_bucket_done` trace events of a real sharded run report exactly
//!   the per-bucket set sizes [`minshare::leakage`] predicts from the
//!   inputs, and the assembled [`BucketTrace`]s reconcile with the §6.1
//!   cost formulas bucket by bucket ([`reconcile_sharded`]).
//! * **Composition laws** (proptests) — per-bucket size disclosures
//!   partition the totals the unsharded protocols already reveal, and
//!   per-bucket §5.2 leak matrices sum cell-for-cell to the global
//!   matrix, for arbitrary multisets under the engine's real bucket
//!   assignment.

use std::sync::{Arc, Mutex, OnceLock};

use minshare::leakage::{
    bucket_multiset_disclosure, bucket_size_disclosure, bucketed_class_intersections,
    expected_class_intersections, merge_class_intersections,
};
use minshare::prelude::*;
use minshare::shard::{value_bucket, ShardConfig};
use minshare_costmodel::reconcile::{reconcile_sharded, BucketTrace};
use minshare_costmodel::section6::Protocol;
use minshare_net::{duplex_pair, NetError, Transport};
use minshare_trace::sink::RingSink;
use minshare_trace::{TraceSink, Tracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> &'static QrGroup {
    static GROUP: OnceLock<QrGroup> = OnceLock::new();
    GROUP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5a4d);
        QrGroup::generate(&mut rng, 64).expect("group")
    })
}

fn pool() -> &'static EncryptPool {
    static POOL: OnceLock<EncryptPool> = OnceLock::new();
    POOL.get_or_init(|| EncryptPool::new(2))
}

fn values(n: usize, offset: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("value-{:04}", i + offset).into_bytes())
        .collect()
}

fn pipe() -> PipelineConfig {
    PipelineConfig {
        chunk_size: 3,
        serial_below: 4,
    }
}

fn single_shard() -> ShardConfig {
    ShardConfig {
        shards: 1,
        ..ShardConfig::default()
    }
}

// ---------------------------------------------------------------------
// Wire identity at --shards 1
// ---------------------------------------------------------------------

/// Records every frame a party sends, in order (the conformance suite's
/// technique, reused for the shard layer's delegation claim).
struct RecordingTransport<T: Transport> {
    inner: T,
    sent: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl<T: Transport> RecordingTransport<T> {
    fn new(inner: T) -> (Self, Arc<Mutex<Vec<Vec<u8>>>>) {
        let sent = Arc::new(Mutex::new(Vec::new()));
        (
            RecordingTransport {
                inner,
                sent: sent.clone(),
            },
            sent,
        )
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.inner.send(frame)?;
        self.sent.lock().unwrap().push(frame.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.inner.recv()
    }
}

/// Two-party run with frame recording on both sides.
fn record_frames<SO: Send, RO: Send>(
    sender: impl FnOnce(&mut dyn Transport) -> Result<SO, ProtocolError> + Send,
    receiver: impl FnOnce(&mut dyn Transport) -> Result<RO, ProtocolError> + Send,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>, SO, RO) {
    let (s_end, r_end) = duplex_pair();
    let (mut s_t, s_frames) = RecordingTransport::new(s_end);
    let (mut r_t, r_frames) = RecordingTransport::new(r_end);
    let (s_out, r_out) = std::thread::scope(|scope| {
        let s = scope.spawn(move || sender(&mut s_t));
        let r = scope.spawn(move || receiver(&mut r_t));
        (s.join().unwrap(), r.join().unwrap())
    });
    let s_frames = Arc::try_unwrap(s_frames).unwrap().into_inner().unwrap();
    let r_frames = Arc::try_unwrap(r_frames).unwrap().into_inner().unwrap();
    (s_frames, r_frames, s_out.unwrap(), r_out.unwrap())
}

#[test]
fn single_shard_intersection_is_frame_identical_to_pipelined() {
    let g = group();
    let (vs, vr) = (values(9, 0), values(7, 5));
    let (base_s, base_r, _, base_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(3);
            pipeline::run_intersection_sender(t, g, &vs, &mut rng, pool(), pipe())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(4);
            pipeline::run_intersection_receiver(t, g, &vr, &mut rng, pool(), pipe())
        },
    );
    let (shard_s, shard_r, _, shard_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(3);
            shard::run_intersection_sender(t, g, &vs, &mut rng, pool(), pipe(), &single_shard())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(4);
            shard::run_intersection_receiver(t, g, &vr, &mut rng, pool(), pipe(), &single_shard())
        },
    );
    assert_eq!(base_s, shard_s, "sender frames diverge at --shards 1");
    assert_eq!(base_r, shard_r, "receiver frames diverge at --shards 1");
    assert_eq!(base_out.intersection, shard_out.intersection);
}

#[test]
fn single_shard_equijoin_is_frame_identical_to_pipelined() {
    let g = group();
    let cipher = HybridCipher::new(g.clone(), 24);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = values(8, 0)
        .into_iter()
        .map(|v| {
            let mut ext = b"ext:".to_vec();
            ext.extend_from_slice(&v);
            (v, ext)
        })
        .collect();
    let vr = values(6, 4);
    let (base_s, base_r, _, base_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(5);
            pipeline::run_equijoin_sender(t, g, &cipher, &entries, &mut rng, pool(), pipe())
        },
        |t| {
            let cipher = HybridCipher::new(g.clone(), 24);
            let mut rng = StdRng::seed_from_u64(6);
            pipeline::run_equijoin_receiver(t, g, &cipher, &vr, &mut rng, pool(), pipe())
        },
    );
    let (shard_s, shard_r, _, shard_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(5);
            shard::run_equijoin_sender(
                t,
                g,
                &cipher,
                &entries,
                &mut rng,
                pool(),
                pipe(),
                &single_shard(),
            )
        },
        |t| {
            let cipher = HybridCipher::new(g.clone(), 24);
            let mut rng = StdRng::seed_from_u64(6);
            shard::run_equijoin_receiver(
                t,
                g,
                &cipher,
                &vr,
                &mut rng,
                pool(),
                pipe(),
                &single_shard(),
            )
        },
    );
    assert_eq!(base_s, shard_s, "sender frames diverge at --shards 1");
    assert_eq!(base_r, shard_r, "receiver frames diverge at --shards 1");
    assert_eq!(base_out.matches, shard_out.matches);
}

#[test]
fn single_shard_size_protocols_are_frame_identical_to_serial() {
    let g = group();
    let (vs, vr) = (values(9, 0), values(7, 5));
    let (base_s, base_r, _, base_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(7);
            intersection_size::run_sender(t, g, &vs, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            intersection_size::run_receiver(t, g, &vr, &mut rng)
        },
    );
    let (shard_s, shard_r, _, shard_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(7);
            shard::run_intersection_size_sender(
                t,
                g,
                &vs,
                &mut rng,
                pool(),
                pipe(),
                &single_shard(),
            )
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(8);
            shard::run_intersection_size_receiver(
                t,
                g,
                &vr,
                &mut rng,
                pool(),
                pipe(),
                &single_shard(),
            )
        },
    );
    assert_eq!(base_s, shard_s, "sender frames diverge at --shards 1");
    assert_eq!(base_r, shard_r, "receiver frames diverge at --shards 1");
    assert_eq!(base_out.intersection_size, shard_out.intersection_size);

    // Equijoin size: multisets with duplicate classes.
    let mut ms = values(6, 0);
    ms.extend(values(3, 0)); // duplicates
    let mr = values(5, 2);
    let (base_s, base_r, _, base_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(9);
            equijoin_size::run_sender(t, g, &ms, &mut rng)
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(10);
            equijoin_size::run_receiver(t, g, &mr, &mut rng)
        },
    );
    let (shard_s, shard_r, _, shard_out) = record_frames(
        |t| {
            let mut rng = StdRng::seed_from_u64(9);
            shard::run_equijoin_size_sender(t, g, &ms, &mut rng, pool(), pipe(), &single_shard())
        },
        |t| {
            let mut rng = StdRng::seed_from_u64(10);
            shard::run_equijoin_size_receiver(t, g, &mr, &mut rng, pool(), pipe(), &single_shard())
        },
    );
    assert_eq!(base_s, shard_s, "sender frames diverge at --shards 1");
    assert_eq!(base_r, shard_r, "receiver frames diverge at --shards 1");
    assert_eq!(base_out.join_size, shard_out.join_size);
    assert_eq!(base_out.class_intersections, shard_out.class_intersections);
}

// ---------------------------------------------------------------------
// Malformed hello rejection
// ---------------------------------------------------------------------

/// Feeds a canned first frame to a sender engine; discards its sends.
struct ScriptedTransport {
    frames: Vec<Vec<u8>>,
}

impl Transport for ScriptedTransport {
    fn send(&mut self, _frame: &[u8]) -> Result<(), NetError> {
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        if self.frames.is_empty() {
            Err(NetError::Closed)
        } else {
            Ok(self.frames.remove(0))
        }
    }
}

#[test]
fn malformed_shard_hellos_are_typed_errors() {
    const TAG_SHARDED: u8 = 5;
    let g = group();
    let vs = values(4, 0);
    let cases: [&[u8]; 4] = [
        &[TAG_SHARDED, 9, 0, 0, 0, 2],       // unsupported version
        &[TAG_SHARDED, 1, 0, 0, 0, 0],       // zero buckets
        &[TAG_SHARDED, 1, 0, 1, 0, 1],       // 65537 > MAX_SHARDS
        &[TAG_SHARDED, 1, 0],                // truncated
    ];
    for (i, hello) in cases.iter().enumerate() {
        let mut t = ScriptedTransport {
            frames: vec![hello.to_vec()],
        };
        let mut rng = StdRng::seed_from_u64(11);
        let result = shard::run_intersection_sender(
            &mut t,
            g,
            &vs,
            &mut rng,
            pool(),
            pipe(),
            &single_shard(),
        );
        assert!(result.is_err(), "case {i}: malformed hello was accepted");
    }
}

// ---------------------------------------------------------------------
// Leakage model ⇔ engine agreement, and §6.1 reconciliation
// ---------------------------------------------------------------------

fn field(event: &minshare_trace::Event, name: &str) -> u64 {
    event
        .fields
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v.as_u64())
        .unwrap_or(0)
}

#[test]
fn bucket_events_match_leakage_model_and_reconcile() {
    let g = group();
    let shards = 5u32;
    let (vs, vr) = (values(21, 0), values(17, 9));
    let cfg = ShardConfig {
        shards,
        mem_budget: 1 << 12, // force some spill runs at 64-bit codewords
        ..ShardConfig::default()
    };
    let s_ring = Arc::new(RingSink::new(256));
    let r_ring = Arc::new(RingSink::new(256));
    let run = run_two_party(
        |t| {
            let _trace =
                minshare_trace::install(Tracer::to_sink(Arc::clone(&s_ring) as Arc<dyn TraceSink>));
            let mut rng = StdRng::seed_from_u64(12);
            shard::run_intersection_sender(t, g, &vs, &mut rng, pool(), pipe(), &cfg)
        },
        |t| {
            let _trace =
                minshare_trace::install(Tracer::to_sink(Arc::clone(&r_ring) as Arc<dyn TraceSink>));
            let mut rng = StdRng::seed_from_u64(13);
            shard::run_intersection_receiver(t, g, &vr, &mut rng, pool(), pipe(), &cfg)
        },
    )
    .expect("sharded run");

    // Assemble per-bucket traces from both parties' event streams.
    let mut traces = vec![BucketTrace { vs: 0, vr: 0, ce: 0 }; shards as usize];
    for event in s_ring.snapshot().iter().chain(r_ring.snapshot().iter()) {
        if event.scope != "shard" {
            continue;
        }
        let b = field(event, "bucket") as usize;
        match event.name {
            "sender_bucket_done" => {
                traces[b].vs += field(event, "own_items");
                traces[b].ce += field(event, "ce");
            }
            "receiver_bucket_done" => {
                traces[b].vr += field(event, "own_items");
                traces[b].ce += field(event, "ce");
            }
            _ => {}
        }
    }

    // The engine's per-bucket set sizes are exactly what the leakage
    // model predicts from the inputs under the real bucket assignment.
    let assign = |v: &[u8]| value_bucket(g, v, shards).expect("bucket");
    let predicted_vs = bucket_size_disclosure(&vs, shards, &assign);
    let predicted_vr = bucket_size_disclosure(&vr, shards, &assign);
    for (b, trace) in traces.iter().enumerate() {
        assert_eq!(trace.vs, predicted_vs[b], "sender bucket {b} size");
        assert_eq!(trace.vr, predicted_vr[b], "receiver bucket {b} size");
    }

    // And the assembled traces reconcile with §6.1 bucket by bucket,
    // including the counted wire traffic (hello + per-bucket frames all
    // fit in the same framing envelope).
    let k_bits = 8 * g.codeword_bytes() as u64;
    let reconciliation = reconcile_sharded(
        Protocol::Intersection,
        k_bits,
        0,
        &traces,
        run.sender_traffic.bytes_sent() + run.receiver_traffic.bytes_sent(),
        run.sender_traffic.frames_sent() + run.receiver_traffic.frames_sent(),
    );
    assert!(
        reconciliation.ok(),
        "sharded reconciliation failed: {}",
        reconciliation.to_json()
    );
}

// ---------------------------------------------------------------------
// Composition laws (proptests)
// ---------------------------------------------------------------------

/// Small multisets over a tiny alphabet, so duplicates and bucket
/// collisions actually happen.
fn multiset() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(0u8..24, 0..40)
        .prop_map(|ids| ids.into_iter().map(|i| format!("v-{i}").into_bytes()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Per-bucket disclosures partition the totals the unsharded
    // protocols already reveal: set sizes sum to the distinct count,
    // multiset sizes to the occurrence count — under the engine's real
    // bucket assignment.
    #[test]
    fn bucket_disclosures_partition_known_totals(vals in multiset(), shards in 1u32..9) {
        let g = group();
        let assign = |v: &[u8]| value_bucket(g, v, shards).expect("bucket");
        let set_sizes = bucket_size_disclosure(&vals, shards, &assign);
        prop_assert_eq!(set_sizes.len(), shards as usize);
        let distinct: std::collections::BTreeSet<&Vec<u8>> = vals.iter().collect();
        prop_assert_eq!(set_sizes.iter().sum::<u64>(), distinct.len() as u64);
        let multi_sizes = bucket_multiset_disclosure(&vals, shards, &assign);
        prop_assert_eq!(multi_sizes.iter().sum::<u64>(), vals.len() as u64);
    }

    // The per-bucket §5.2 leak matrices of a sharded equijoin-size run
    // sum cell-for-cell to the global matrix: sharding refines the
    // paper's leak by bucket, it never invents or destroys cells.
    #[test]
    fn bucketed_leak_matrices_sum_to_global(
        vr in multiset(),
        vs in multiset(),
        shards in 1u32..6,
    ) {
        let g = group();
        let assign = |v: &[u8]| value_bucket(g, v, shards).expect("bucket");
        let per_bucket = bucketed_class_intersections(&vr, &vs, shards, &assign);
        prop_assert_eq!(per_bucket.len(), shards as usize);
        prop_assert_eq!(
            merge_class_intersections(&per_bucket),
            expected_class_intersections(&vr, &vs)
        );
    }
}
