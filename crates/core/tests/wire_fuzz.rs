//! Decoder robustness: arbitrary bytes fed to every protocol-facing
//! parser must produce errors, never panics or bogus successes.

use minshare::wire::Message;
use minshare_crypto::QrGroup;
use minshare_hash::bloom::BloomFilter;
use minshare_privdb::rowcodec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn group() -> &'static QrGroup {
    static GROUP: OnceLock<QrGroup> = OnceLock::new();
    GROUP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xf022);
        QrGroup::generate(&mut rng, 64).expect("group")
    })
}

proptest! {
    #[test]
    fn message_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any outcome but a panic is acceptable; successes must re-encode
        // to the identical frame (canonical encoding).
        if let Ok(msg) = Message::decode(&bytes, group()) {
            let re = msg.encode(group()).expect("valid message re-encodes");
            prop_assert_eq!(re, bytes);
        }
    }

    #[test]
    fn bloom_from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Some(f) = BloomFilter::from_bytes(&bytes) {
            prop_assert_eq!(f.to_bytes(), bytes);
        }
    }

    #[test]
    fn rowcodec_value_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        if let Ok(v) = rowcodec::decode_value(&bytes) {
            prop_assert_eq!(rowcodec::encode_value(&v), bytes);
        }
    }

    #[test]
    fn rowcodec_rows_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..150)) {
        if let Ok(rows) = rowcodec::decode_rows(&bytes) {
            prop_assert_eq!(rowcodec::encode_rows(&rows), bytes);
        }
    }

    #[test]
    fn mutated_valid_frames_never_panic(
        n in 1usize..5,
        flip_at in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        // Take a valid frame and flip one bit anywhere.
        let g = group();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let elements: Vec<_> = (0..n).map(|_| g.sample_element(&mut rng)).collect();
        let mut frame = Message::Codewords(elements).encode(g).expect("encode");
        let idx = flip_at as usize % frame.len();
        frame[idx] ^= 1 << flip_bit;
        // Must not panic; may decode (e.g. count byte unchanged semantics)
        // or error — both fine.
        let _ = Message::decode(&frame, g);
    }
}
