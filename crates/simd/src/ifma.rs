//! AVX-512 IFMA lane kernel — the only `unsafe` module in the workspace.
//!
//! Eight Montgomery multiplications run in parallel, one per 64-bit slot of
//! a zmm register, using the 52x52->104-bit fused multiply-adds
//! (`vpmadd52luq` / `vpmadd52huq`). The algorithm is word-by-word CIOS in
//! radix-2^52 with a redundant (non-canonical) accumulator:
//!
//! For each of the k rounds i:
//!   t[j]   += lo52(a_i * b_j)        (all j, one vpmadd52luq each)
//!   t[j+1] += hi52(a_i * b_j)        (all j, one vpmadd52huq each)
//!   m       = lo52(t[0] * n0_inv)
//!   t[j]   += lo52(m * n_j), t[j+1] += hi52(m * n_j)
//!   t[1]   += t[0] >> 52             (t[0] is now divisible by 2^52)
//!   shift t down one digit
//!
//! Overflow safety: every vpmadd52 adds a value < 2^52 to a 64-bit
//! accumulator; a slot absorbs at most 4 such adds per round plus one carry,
//! so after k <= 10 rounds an accumulator is < 4*10*2^52 + 2^12 < 2^58 —
//! comfortably inside u64 with no lane crosstalk. The final normalization
//! propagates carries once and masks every digit back to canonical form.
//!
//! Bound discipline (almost-Montgomery): for inputs < 2n the output value is
//! (a*b + m*n)/R' < 4n^2/R' + n <= 2n whenever 4n <= R' = 2^(52k). With
//! k = ceil(64*S/52) for an S-limb modulus, 52k >= 64S + 3 for every
//! S in 1..=8, so the invariant always holds. `from_mont` (multiply by 1)
//! tightens the bound to <= n; the caller does the last conditional subtract.

#![allow(unsafe_code)]

use crate::{LaneBlock, DIGIT_MASK, MAX_DIGITS};

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Lane-parallel almost-Montgomery multiply, writing canonical radix-2^52
/// digits into `out`.
///
/// # Safety
/// The caller must have verified at runtime that the CPU supports
/// `avx512f` and `avx512ifma` (see [`crate::available`]); `IfmaCtx`
/// enforces this at construction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512ifma")]
pub unsafe fn mont_mul(
    k: usize,
    n: &[u64; MAX_DIGITS],
    n0_inv: u64,
    a: &LaneBlock,
    b: &LaneBlock,
    out: &mut LaneBlock,
) {
    debug_assert!(k >= 1 && k <= MAX_DIGITS);
    let zero = _mm512_setzero_si512();
    let mask = _mm512_set1_epi64(DIGIT_MASK as i64);
    let k0 = _mm512_set1_epi64(n0_inv as i64);

    let mut nv = [zero; MAX_DIGITS];
    let mut bv = [zero; MAX_DIGITS];
    for j in 0..k {
        nv[j] = _mm512_set1_epi64(n[j] as i64);
        bv[j] = _mm512_loadu_epi64(b.d[j].as_ptr() as *const i64);
    }

    // Redundant accumulator, one extra slot for the high half of the last
    // digit column. Slots hold values < 2^58 (see module docs).
    let mut t = [zero; MAX_DIGITS + 1];

    for i in 0..k {
        let ai = _mm512_loadu_epi64(a.d[i].as_ptr() as *const i64);
        for j in 0..k {
            t[j] = _mm512_madd52lo_epu64(t[j], ai, bv[j]);
            t[j + 1] = _mm512_madd52hi_epu64(t[j + 1], ai, bv[j]);
        }
        let t0 = _mm512_and_si512(t[0], mask);
        let m = _mm512_madd52lo_epu64(zero, t0, k0);
        for j in 0..k {
            t[j] = _mm512_madd52lo_epu64(t[j], m, nv[j]);
            t[j + 1] = _mm512_madd52hi_epu64(t[j + 1], m, nv[j]);
        }
        // t[0] is now 0 mod 2^52; fold its carry into t[1] and shift down.
        let carry = _mm512_srli_epi64(t[0], 52);
        t[1] = _mm512_add_epi64(t[1], carry);
        for j in 0..k {
            t[j] = t[j + 1];
        }
        t[k] = zero;
    }

    // Normalize the redundant digits to canonical radix-2^52. The value is
    // < 2n < 2^(52k), so the carry out of digit k-1 is always zero.
    let mut carry = zero;
    for j in 0..k {
        let v = _mm512_add_epi64(t[j], carry);
        carry = _mm512_srli_epi64(v, 52);
        let v = _mm512_and_si512(v, mask);
        _mm512_storeu_epi64(out.d[j].as_mut_ptr() as *mut i64, v);
    }
}
