//! SIMD backend for the multi-lane fixed-exponent Montgomery kernel.
//!
//! This crate is the one place in the workspace where `unsafe` is allowed:
//! every other crate carries `#![forbid(unsafe_code)]`, so the arch
//! intrinsics live here behind a small, safe, data-only API. The backend is
//! AVX-512 IFMA (`vpmadd52luq`/`vpmadd52huq`): eight independent Montgomery
//! lanes in radix-2^52, the same digit layout production RSA stacks use for
//! batched modexp. Runtime CPU detection gates construction — on hosts (or
//! architectures) without AVX-512 IFMA, [`IfmaCtx::new`] returns `None` and
//! callers fall back to the scalar interleaved kernel, so a `--features simd`
//! build is safe to ship anywhere.
//!
//! Security posture: this crate never sees key material. It operates on
//! public modulus constants (n, R^2 mod n, R mod n, -n^-1 mod 2^52) and on
//! group elements that are already hashed values or ciphertexts. Exponents —
//! the secret half of a commutative key — stay in `minshare-bignum`, which
//! drives the square/multiply schedule and only hands this crate individual
//! multiply operands. There is therefore nothing here to zeroize, and no
//! Debug impl exposes anything a wire observer could not already see.

pub mod ifma;

/// Number of parallel Montgomery lanes in one SIMD block (one zmm register
/// holds eight 64-bit digit slots).
pub const LANES: usize = 8;

/// Digits are radix-2^52 so the 52x52->104 bit IFMA multiplier applies.
pub const DIGIT_BITS: u32 = 52;

/// Low-52-bit mask for canonical digits.
pub const DIGIT_MASK: u64 = (1 << DIGIT_BITS) - 1;

/// Largest supported digit count: an 8-limb (512-bit) modulus needs
/// ceil(512/52) = 10 radix-2^52 digits.
pub const MAX_DIGITS: usize = 10;

/// Returns true when the running CPU supports the AVX-512 IFMA path
/// (detected once and cached). Always false off x86_64.
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512ifma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Eight residues in digit-major ("lanes of limbs") layout: `d[j][lane]` is
/// digit `j` of lane `lane`, so one unaligned 512-bit load fetches digit `j`
/// of all eight lanes at once. Digits are canonical radix-2^52 (< 2^52).
#[derive(Clone, Copy)]
pub struct LaneBlock {
    pub d: [[u64; LANES]; MAX_DIGITS],
}

impl LaneBlock {
    /// All-zero block (the additive identity in every lane).
    pub fn zero() -> Self {
        LaneBlock {
            d: [[0u64; LANES]; MAX_DIGITS],
        }
    }

    /// Block with the same `digits` value in every lane.
    pub fn broadcast(digits: &[u64]) -> Self {
        let mut b = Self::zero();
        for lane in 0..LANES {
            b.set_lane(lane, digits);
        }
        b
    }

    /// Writes `digits` (length <= MAX_DIGITS, canonical radix-2^52) into one
    /// lane, zero-padding the high digits.
    pub fn set_lane(&mut self, lane: usize, digits: &[u64]) {
        debug_assert!(lane < LANES && digits.len() <= MAX_DIGITS);
        for j in 0..MAX_DIGITS {
            self.d[j][lane] = digits.get(j).copied().unwrap_or(0);
        }
    }

    /// Reads the first `out.len()` digits of one lane.
    pub fn lane(&self, lane: usize, out: &mut [u64]) {
        debug_assert!(lane < LANES && out.len() <= MAX_DIGITS);
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = self.d[j][lane];
        }
    }
}

/// Per-modulus constants for the radix-2^52 Montgomery domain, R' = 2^(52k).
/// All fields are public parameters of the group; construction fails (returns
/// `None`) unless the CPU supports the IFMA path, so every method can assume
/// the intrinsics are safe to execute.
#[derive(Clone)]
pub struct IfmaCtx {
    k: usize,
    n: [u64; MAX_DIGITS],
    n0_inv: u64,
    rr: [u64; MAX_DIGITS],
    one: [u64; MAX_DIGITS],
}

impl std::fmt::Debug for IfmaCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The modulus is public, but a one-line summary keeps logs readable.
        f.debug_struct("IfmaCtx")
            .field("digits", &self.k)
            .field("backend", &"avx512-ifma")
            .finish()
    }
}

impl IfmaCtx {
    /// Builds the lane context from caller-computed public constants:
    /// `n` = modulus digits, `n0_inv` = -n^-1 mod 2^52, `rr` = R'^2 mod n,
    /// `one` = R' mod n (the Montgomery representation of 1), all canonical
    /// radix-2^52 of length `k`. Returns `None` when the CPU lacks AVX-512
    /// IFMA, `k` is out of range, or any input is non-canonical.
    pub fn new(k: usize, n: &[u64], n0_inv: u64, rr: &[u64], one: &[u64]) -> Option<Self> {
        if !available() || k == 0 || k > MAX_DIGITS {
            return None;
        }
        if n.len() != k || rr.len() != k || one.len() != k {
            return None;
        }
        let canonical =
            |d: &[u64]| d.iter().all(|&x| x <= DIGIT_MASK);
        if !canonical(n) || !canonical(rr) || !canonical(one) || n0_inv > DIGIT_MASK {
            return None;
        }
        if n[0] & 1 == 0 {
            return None; // Montgomery needs an odd modulus
        }
        let pad = |d: &[u64]| {
            let mut a = [0u64; MAX_DIGITS];
            a[..k].copy_from_slice(d);
            a
        };
        Some(IfmaCtx {
            k,
            n: pad(n),
            n0_inv,
            rr: pad(rr),
            one: pad(one),
        })
    }

    /// Digit count k (R' = 2^(52k)).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The Montgomery representation of 1 broadcast to all lanes — the
    /// starting accumulator for an exponentiation ladder.
    pub fn one_block(&self) -> LaneBlock {
        LaneBlock::broadcast(&self.one[..self.k])
    }

    /// Lane-parallel almost-Montgomery multiplication: each lane computes
    /// a*b*R'^-1 with the relaxed bound `< 2n`. Inputs must be canonical
    /// digits representing values `< 2n`; the output satisfies the same
    /// invariant, so products chain without intermediate reductions.
    pub fn mont_mul(&self, a: &LaneBlock, b: &LaneBlock) -> LaneBlock {
        let mut out = LaneBlock::zero();
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `IfmaCtx::new` returns `Some` only after runtime detection
        // of avx512f + avx512ifma on this CPU, so the target-feature gated
        // kernel is safe to call here.
        unsafe {
            ifma::mont_mul(self.k, &self.n, self.n0_inv, a, b, &mut out);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (a, b);
            unreachable!("IfmaCtx cannot be constructed off x86_64");
        }
        out
    }

    /// Lane-parallel Montgomery squaring (currently mont_mul(a, a); the
    /// IFMA port is the bottleneck either way).
    pub fn mont_sqr(&self, a: &LaneBlock) -> LaneBlock {
        self.mont_mul(a, a)
    }

    /// Converts residues (< n) into the Montgomery domain by multiplying
    /// with R'^2 mod n.
    pub fn to_mont(&self, x: &LaneBlock) -> LaneBlock {
        let rr = LaneBlock::broadcast(&self.rr[..self.k]);
        self.mont_mul(x, &rr)
    }

    /// Leaves the Montgomery domain (multiply by 1). The result is `<= n`;
    /// callers perform the final conditional subtract in their own integer
    /// domain.
    pub fn from_mont(&self, x: &LaneBlock) -> LaneBlock {
        let mut one_digits = [0u64; MAX_DIGITS];
        one_digits[0] = 1;
        let one = LaneBlock::broadcast(&one_digits[..self.k]);
        self.mont_mul(x, &one)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_roundtrip() {
        let mut b = LaneBlock::zero();
        let digits = [1u64, 2, 3, 4, 5];
        b.set_lane(3, &digits);
        let mut out = [0u64; 5];
        b.lane(3, &mut out);
        assert_eq!(out, digits);
        let mut other = [0u64; 5];
        b.lane(0, &mut other);
        assert_eq!(other, [0u64; 5]);
    }

    #[test]
    fn ctx_rejects_bad_inputs() {
        // Whatever the host supports, these must all be rejected.
        let n = [3u64, 1];
        assert!(IfmaCtx::new(0, &[], 0, &[], &[]).is_none());
        assert!(IfmaCtx::new(2, &n, 1 << 52, &n, &n).is_none()); // n0_inv too wide
        assert!(IfmaCtx::new(2, &[4, 1], 1, &n, &n).is_none()); // even modulus
        assert!(IfmaCtx::new(2, &n, 1, &n[..1], &n).is_none()); // length mismatch
        assert!(IfmaCtx::new(MAX_DIGITS + 1, &[0; 11], 1, &[0; 11], &[0; 11]).is_none());
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(available(), available());
    }

    // A tiny self-contained correctness check (k = 2, modulus 2^52 + 1 digit
    // arithmetic) so the crate has a reference test that does not depend on
    // minshare-bignum. Full differentials against the scalar oracle live in
    // the bignum proptest suite.
    #[test]
    fn mont_mul_small_reference() {
        if !available() {
            eprintln!("skipping: AVX-512 IFMA not available on this host");
            return;
        }
        // n = 0x0009_3afb_0000_0001_0003 (arbitrary odd < 2^80), k = 2 digits.
        let n_val: u128 = (0x93afbu128 << 52) | 0x0000_0001_0003;
        let k = 2usize;
        let rbits = 52 * k as u32;
        let r = 1u128 << rbits;
        let n_lo = (n_val & DIGIT_MASK as u128) as u64;
        let n_hi = ((n_val >> 52) & DIGIT_MASK as u128) as u64;
        // -n^-1 mod 2^52 by Newton iteration on 64-bit then masking.
        let mut inv: u64 = 1;
        let n0 = n_lo;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg() & DIGIT_MASK;
        let rr_val = {
            // R^2 mod n via u128 math: square by repeated doubling of R mod n.
            let rm = r % n_val;
            let mut acc = 0u128;
            let mut add = rm;
            let mut bits = rm;
            while bits > 0 {
                if bits & 1 == 1 {
                    acc = (acc + add) % n_val;
                }
                add = (add + add) % n_val;
                bits >>= 1;
            }
            acc
        };
        let one_val = r % n_val;
        let digits = |v: u128| [ (v & DIGIT_MASK as u128) as u64, ((v >> 52) & DIGIT_MASK as u128) as u64 ];
        let ctx = IfmaCtx::new(k, &[n_lo, n_hi], n0_inv, &digits(rr_val), &digits(one_val))
            .expect("host supports IFMA");
        // Check a * b mod n for a few values in every lane.
        let a_val: u128 = 0x1234_5678_9abc_def0_1234 % n_val;
        let b_val: u128 = 0x0fed_cba9_8765_4321_0fed % n_val;
        let expect = {
            let mut acc = 0u128;
            let mut add = a_val;
            let mut bits = b_val;
            while bits > 0 {
                if bits & 1 == 1 {
                    acc = (acc + add) % n_val;
                }
                add = (add + add) % n_val;
                bits >>= 1;
            }
            acc
        };
        let a = LaneBlock::broadcast(&digits(a_val));
        let b = LaneBlock::broadcast(&digits(b_val));
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let prod = ctx.mont_mul(&am, &bm);
        let norm = ctx.from_mont(&prod);
        for lane in 0..LANES {
            let mut out = [0u64; 2];
            norm.lane(lane, &mut out);
            let mut got = (out[0] as u128) | ((out[1] as u128) << 52);
            if got >= n_val {
                got -= n_val; // from_mont may return exactly n
            }
            assert_eq!(got, expect, "lane {lane}");
        }
    }
}
