//! The built-in sinks: bounded ring buffer with a determinism digest,
//! aggregating metrics, and JSON-lines export.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::Mutex;

use crate::{Event, FieldValue, TraceSink};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_u64(h: &mut u64, v: u64) {
    fnv_bytes(h, &v.to_be_bytes());
}

/// Folds one event into an FNV-1a digest state. Only deterministic
/// events contribute, and `DurationNs` fields are skipped, so the digest
/// is a pure function of protocol inputs and seeds. Sequence numbers are
/// also skipped: interleaved non-deterministic events must not shift the
/// digest.
fn fold_event(h: &mut u64, event: &Event) {
    fnv_bytes(h, event.scope.as_bytes());
    fnv_bytes(h, event.name.as_bytes());
    for (name, value) in &event.fields {
        let (tag, v) = match value {
            FieldValue::Count(v) => (1u64, *v),
            FieldValue::Size(v) => (2, *v),
            FieldValue::DurationNs(_) => continue,
            FieldValue::Flag(b) => (3, u64::from(*b)),
        };
        fnv_bytes(h, name.as_bytes());
        fnv_u64(h, tag);
        fnv_u64(h, v);
    }
}

struct RingInner {
    events: VecDeque<Event>,
    digest: u64,
    recorded: u64,
}

/// Keeps the last `capacity` events and an order-sensitive FNV-1a digest
/// of every *deterministic* event ever recorded (evicted or not). The
/// digest is the conformance harness's "same seed → same run" check for
/// the instrumentation layer, mirroring `SimTrace::digest`.
pub struct RingSink {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                digest: FNV_OFFSET,
                recorded: 0,
            }),
        }
    }

    /// Digest over all deterministic events recorded so far.
    pub fn digest(&self) -> u64 {
        self.inner.lock().map(|g| g.digest).unwrap_or(FNV_OFFSET)
    }

    /// Total events recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().map(|g| g.recorded).unwrap_or(0)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().map(|g| g.events.len()).unwrap_or(0)
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner
            .lock()
            .map(|g| g.events.iter().cloned().collect())
            .unwrap_or_default()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &Event) {
        let Ok(mut g) = self.inner.lock() else { return };
        g.recorded = g.recorded.saturating_add(1);
        if event.deterministic {
            let mut digest = g.digest;
            fold_event(&mut digest, event);
            g.digest = digest;
        }
        if g.events.len() == self.capacity {
            g.events.pop_front();
        }
        g.events.push_back(event.clone());
    }
}

/// Aggregation key: `(scope, name, field)`. The reserved field name
/// `"events"` counts occurrences of `(scope, name)`.
pub type MetricKey = (&'static str, &'static str, &'static str);

/// Sums every field of every event by `(scope, name, field)`. Sums are
/// order-independent, so one `MetricsSink` can be shared by both parties
/// of a run and still aggregate deterministically.
///
/// Fields registered via [`MetricsSink::register_gauge`] keep the *last*
/// value instead of a sum, and [`MetricsSink::snapshot_and_reset`]
/// starts a fresh accumulation epoch — together these keep a
/// long-running daemon's sums from growing monotonically forever.
#[derive(Default)]
pub struct MetricsSink {
    inner: Mutex<BTreeMap<MetricKey, u64>>,
    gauges: Mutex<std::collections::BTreeSet<MetricKey>>,
}

impl MetricsSink {
    /// An empty metrics sink.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Declares `(scope, name, field)` a gauge: later events overwrite
    /// its value instead of adding to it, and it survives
    /// [`MetricsSink::snapshot_and_reset`].
    pub fn register_gauge(&self, scope: &'static str, name: &'static str, field: &'static str) {
        if let Ok(mut g) = self.gauges.lock() {
            g.insert((scope, name, field));
        }
    }

    /// Returns all accumulated values, then resets: summed entries
    /// clear, gauge entries keep their last value. The reserved
    /// `"events"` occurrence counters reset with the sums.
    pub fn snapshot_and_reset(&self) -> Vec<(MetricKey, u64)> {
        // Lock order (gauges, then inner) matches `record`.
        let Ok(keep) = self.gauges.lock() else {
            return Vec::new();
        };
        let Ok(mut g) = self.inner.lock() else {
            return Vec::new();
        };
        let out: Vec<(MetricKey, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();
        g.retain(|k, _| keep.contains(k));
        out
    }

    /// The sum of `field` over all `(scope, name)` events, or 0.
    pub fn sum(&self, scope: &str, name: &str, field: &str) -> u64 {
        self.inner
            .lock()
            .map(|g| {
                g.iter()
                    .filter(|((s, n, f), _)| *s == scope && *n == name && *f == field)
                    .map(|(_, v)| *v)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The sum of `field` across every event name in `scope`.
    pub fn sum_field(&self, scope: &str, field: &str) -> u64 {
        self.inner
            .lock()
            .map(|g| {
                g.iter()
                    .filter(|((s, _, f), _)| *s == scope && *f == field)
                    .map(|(_, v)| *v)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// All accumulated sums, sorted by key.
    pub fn snapshot(&self) -> Vec<(MetricKey, u64)> {
        self.inner
            .lock()
            .map(|g| g.iter().map(|(k, v)| (*k, *v)).collect())
            .unwrap_or_default()
    }
}

impl TraceSink for MetricsSink {
    fn record(&self, event: &Event) {
        // Lock order (gauges, then inner) matches `snapshot_and_reset`.
        let Ok(gauges) = self.gauges.lock() else { return };
        let Ok(mut g) = self.inner.lock() else { return };
        let mut bump = |key: MetricKey, v: u64| {
            if gauges.contains(&key) {
                g.insert(key, v);
            } else {
                let slot = g.entry(key).or_insert(0);
                *slot = slot.saturating_add(v);
            }
        };
        bump((event.scope, event.name, "events"), 1);
        for (name, value) in &event.fields {
            bump((event.scope, event.name, name), value.as_u64());
        }
    }
}

/// Fans every event out to all wrapped sinks, in order. The daemon uses
/// this to give each session a private [`RingSink`] (per-session digest
/// for the conformance harness) while the same events also feed a shared
/// [`MetricsSink`] (fleet-wide reconciliation) — without the
/// instrumentation sites knowing about either.
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Tees onto `sinks`; an empty list is a valid null sink.
    pub fn new(sinks: Vec<std::sync::Arc<dyn TraceSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

/// Writes one JSON object per event to the wrapped writer:
///
/// ```json
/// {"seq":0,"scope":"intersection","name":"sender_done","det":true,
///  "fields":{"encryptions":24,"hashes":12}}
/// ```
///
/// Field values are numbers (flags render as `true`/`false`). Write
/// errors are swallowed — telemetry must never fail a protocol run.
pub struct JsonLinesSink {
    inner: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps any writer (a file, a `Vec<u8>`, a socket).
    pub fn new<W: Write + Send + 'static>(writer: W) -> JsonLinesSink {
        JsonLinesSink {
            inner: Mutex::new(Box::new(writer)),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        if let Ok(mut g) = self.inner.lock() {
            let _ = g.flush();
        }
    }
}

/// Renders one event as a single JSON line. Scope/name/field labels are
/// `&'static str` literals from the instrumentation sites and never
/// contain characters needing escapes, but escape quotes and backslashes
/// anyway so the output is valid JSON whatever a future site does.
pub fn event_to_json(event: &Event) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut line = format!(
        "{{\"seq\":{},\"scope\":\"{}\",\"name\":\"{}\",\"det\":{},\"fields\":{{",
        event.seq,
        esc(event.scope),
        esc(event.name),
        event.deterministic
    );
    for (i, (name, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":", esc(name)));
        match value {
            FieldValue::Flag(b) => line.push_str(if *b { "true" } else { "false" }),
            other => line.push_str(&other.as_u64().to_string()),
        }
    }
    line.push_str("}}");
    line
}

impl TraceSink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let line = event_to_json(event);
        if let Ok(mut g) = self.inner.lock() {
            let _ = writeln!(g, "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, duration_ns, flag, size};
    use std::sync::Arc;

    fn event(
        seq: u64,
        name: &'static str,
        deterministic: bool,
        fields: Vec<crate::Field>,
    ) -> Event {
        Event {
            seq,
            scope: "test",
            name,
            deterministic,
            fields,
        }
    }

    #[test]
    fn ring_digest_ignores_seq_durations_and_nondeterministic_events() {
        let a = RingSink::new(8);
        a.record(&event(0, "x", true, vec![count("n", 1)]));
        a.record(&event(1, "y", false, vec![count("n", 9)]));
        a.record(&event(2, "z", true, vec![duration_ns("t", 123), size("b", 7)]));

        let b = RingSink::new(8);
        b.record(&event(5, "x", true, vec![count("n", 1)]));
        b.record(&event(6, "z", true, vec![duration_ns("t", 999), size("b", 7)]));
        assert_eq!(a.digest(), b.digest());

        let c = RingSink::new(8);
        c.record(&event(0, "x", true, vec![count("n", 2)]));
        c.record(&event(1, "z", true, vec![size("b", 7)]));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn ring_digest_is_order_sensitive() {
        let a = RingSink::new(8);
        a.record(&event(0, "x", true, vec![]));
        a.record(&event(1, "y", true, vec![]));
        let b = RingSink::new(8);
        b.record(&event(0, "y", true, vec![]));
        b.record(&event(1, "x", true, vec![]));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn ring_digest_distinguishes_field_types() {
        let a = RingSink::new(8);
        a.record(&event(0, "x", true, vec![count("v", 5)]));
        let b = RingSink::new(8);
        b.record(&event(0, "x", true, vec![size("v", 5)]));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn ring_evicts_but_digest_survives() {
        let ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.record(&event(i, "x", true, vec![count("n", i)]));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 5);
        let full = RingSink::new(16);
        for i in 0..5u64 {
            full.record(&event(i, "x", true, vec![count("n", i)]));
        }
        assert_eq!(ring.digest(), full.digest());
        let names: Vec<u64> = ring
            .snapshot()
            .iter()
            .map(|e| e.fields[0].1.as_u64())
            .collect();
        assert_eq!(names, vec![3, 4]);
    }

    #[test]
    fn metrics_sum_and_event_counts() {
        let m = MetricsSink::new();
        m.record(&event(0, "frame_sent", true, vec![size("bytes", 10)]));
        m.record(&event(1, "frame_sent", true, vec![size("bytes", 32)]));
        m.record(&event(2, "frame_recv", true, vec![size("bytes", 5)]));
        assert_eq!(m.sum("test", "frame_sent", "bytes"), 42);
        assert_eq!(m.sum("test", "frame_sent", "events"), 2);
        assert_eq!(m.sum_field("test", "bytes"), 47);
        assert_eq!(m.sum("test", "missing", "bytes"), 0);
        assert_eq!(m.snapshot().len(), 4);
    }

    #[test]
    fn metrics_gauge_last_value_and_reset_epochs() {
        let m = MetricsSink::new();
        m.register_gauge("test", "queue", "depth");
        m.record(&event(0, "queue", false, vec![size("depth", 7)]));
        m.record(&event(1, "queue", false, vec![size("depth", 3)]));
        m.record(&event(2, "sent", true, vec![size("bytes", 10)]));
        // Gauge keeps the last value; the occurrence counter still sums.
        assert_eq!(m.sum("test", "queue", "depth"), 3);
        assert_eq!(m.sum("test", "queue", "events"), 2);

        let snap = m.snapshot_and_reset();
        assert!(snap.contains(&(("test", "sent", "bytes"), 10)));
        assert!(snap.contains(&(("test", "queue", "depth"), 3)));
        // Post-reset: sums cleared, gauge survives with its last value.
        assert_eq!(m.sum("test", "sent", "bytes"), 0);
        assert_eq!(m.sum("test", "queue", "events"), 0);
        assert_eq!(m.sum("test", "queue", "depth"), 3);
    }

    #[test]
    fn json_lines_schema() {
        let e = Event {
            seq: 3,
            scope: "pool",
            name: "submit",
            deterministic: false,
            fields: vec![count("items", 16), flag("inline", true)],
        };
        assert_eq!(
            event_to_json(&e),
            "{\"seq\":3,\"scope\":\"pool\",\"name\":\"submit\",\"det\":false,\
             \"fields\":{\"items\":16,\"inline\":true}}"
        );
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(&e);
        sink.flush();
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let ring = Arc::new(RingSink::new(8));
        let metrics = Arc::new(MetricsSink::new());
        let tee = TeeSink::new(vec![ring.clone(), metrics.clone()]);
        tee.record(&event(0, "x", true, vec![count("n", 3)]));
        tee.record(&event(1, "x", true, vec![count("n", 4)]));
        assert_eq!(ring.recorded(), 2);
        assert_eq!(metrics.sum("test", "x", "n"), 7);
        // An empty tee is a valid null sink.
        TeeSink::new(Vec::new()).record(&event(2, "x", true, vec![]));
    }

    #[test]
    fn sinks_are_shareable() {
        let ring = Arc::new(RingSink::new(64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = ring.clone();
                s.spawn(move || r.record(&event(0, "x", true, vec![])));
            }
        });
        assert_eq!(ring.recorded(), 4);
    }
}
