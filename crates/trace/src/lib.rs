//! # minshare-trace
//!
//! Structured, secret-safe tracing for the protocol stack.
//!
//! Every layer of a run — the protocol engines, the encrypt pool, the
//! transports — emits typed [`Event`]s through a thread-local [`Tracer`].
//! When no tracer is installed (the default) an emit site is a single
//! thread-local boolean read and the field closure is never evaluated, so
//! instrumentation costs nothing on the production path.
//!
//! ## Secret safety by construction
//!
//! A [`FieldValue`] can hold a count, a byte size, a duration or a flag —
//! nothing else. There is no string, byte-slice or `Debug` capture, so
//! key material, codewords and payloads *cannot* reach a sink through
//! this API. The `minshare-analyzer` OBS01 rule additionally rejects any
//! telemetry call site that mentions a registered secret type or
//! identifier.
//!
//! ## Determinism
//!
//! Each event carries a `deterministic` flag. Events marked deterministic
//! depend only on the protocol inputs and the (seeded) fault schedule —
//! never on wall-clock timing or cross-thread scheduling — so a
//! [`sink::RingSink`] digest over them reproduces exactly under a fixed
//! simnet seed. Timing-dependent events (pool dispatch decisions, ARQ
//! retransmits) are marked non-deterministic and excluded from digests,
//! as are `DurationNs` fields on deterministic events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod sink;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One typed value attached to an event. Deliberately closed over
/// numeric/boolean payloads: secrets cannot be captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldValue {
    /// A number of operations, items or occurrences.
    Count(u64),
    /// A size in bytes.
    Size(u64),
    /// An elapsed wall-clock duration in nanoseconds. Excluded from
    /// determinism digests.
    DurationNs(u64),
    /// A boolean condition.
    Flag(bool),
}

impl FieldValue {
    /// The value as a plain integer (flags as 0/1), for aggregation.
    pub fn as_u64(&self) -> u64 {
        match self {
            FieldValue::Count(v) | FieldValue::Size(v) | FieldValue::DurationNs(v) => *v,
            FieldValue::Flag(b) => u64::from(*b),
        }
    }
}

/// A named field: static label plus typed value.
pub type Field = (&'static str, FieldValue);

/// Shorthand for a [`FieldValue::Count`] field.
pub fn count(name: &'static str, v: u64) -> Field {
    (name, FieldValue::Count(v))
}

/// Shorthand for a [`FieldValue::Size`] field.
pub fn size(name: &'static str, v: u64) -> Field {
    (name, FieldValue::Size(v))
}

/// Shorthand for a [`FieldValue::DurationNs`] field.
pub fn duration_ns(name: &'static str, v: u64) -> Field {
    (name, FieldValue::DurationNs(v))
}

/// Shorthand for a [`FieldValue::Flag`] field.
pub fn flag(name: &'static str, v: bool) -> Field {
    (name, FieldValue::Flag(v))
}

/// One recorded occurrence: where it happened (`scope`/`name`), whether
/// it is reproducible under a fixed seed, and its typed fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Per-tracer sequence number, in emission order.
    pub seq: u64,
    /// Subsystem, e.g. `"intersection"`, `"pool"`, `"net"`.
    pub scope: &'static str,
    /// Event name within the scope, e.g. `"sender_done"`.
    pub name: &'static str,
    /// True when the event (identity, order and non-duration fields) is a
    /// pure function of protocol inputs and seeds.
    pub deterministic: bool,
    /// Typed fields.
    pub fields: Vec<Field>,
}

/// Receives events from a [`Tracer`]. Sinks must be thread-safe: a single
/// sink may be shared by both parties of a protocol run.
pub trait TraceSink: Send + Sync {
    /// Records one event. Must not panic; telemetry is best-effort.
    fn record(&self, event: &Event);
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    seq: AtomicU64,
}

/// A handle that routes events to a sink, or drops them (disabled).
///
/// Cloning shares the sequence counter, so events emitted through clones
/// of one tracer (e.g. both halves of a party's work) stay totally
/// ordered per tracer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that drops everything. Emitting through it is a no-op.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording into `sink`.
    pub fn to_sink(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// True when events reach a sink.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits one event.
    pub fn emit(&self, scope: &'static str, name: &'static str, deterministic: bool, fields: Vec<Field>) {
        if let Some(inner) = &self.inner {
            let event = Event {
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                scope,
                name,
                deterministic,
                fields,
            };
            inner.sink.record(&event);
        }
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Tracer> = RefCell::new(Tracer::disabled());
}

/// Restores the previously installed tracer when dropped.
pub struct Installed {
    previous: Option<Tracer>,
}

impl Drop for Installed {
    fn drop(&mut self) {
        let previous = self.previous.take().unwrap_or_default();
        let _ = ACTIVE.try_with(|a| a.set(previous.enabled()));
        let _ = CURRENT.try_with(|c| *c.borrow_mut() = previous);
    }
}

/// Installs `tracer` as this thread's tracer until the returned guard is
/// dropped. Installation is per-thread by design: each protocol party
/// installs its own tracer inside its own closure, so per-party event
/// streams never interleave.
#[must_use = "dropping the guard immediately uninstalls the tracer"]
pub fn install(tracer: Tracer) -> Installed {
    let enabled = tracer.enabled();
    let previous = CURRENT
        .try_with(|c| std::mem::replace(&mut *c.borrow_mut(), tracer))
        .ok();
    let _ = ACTIVE.try_with(|a| a.set(enabled));
    Installed { previous }
}

/// True when the current thread has an enabled tracer. A single
/// thread-local boolean read — the cost of instrumentation when tracing
/// is off.
#[inline]
pub fn is_enabled() -> bool {
    ACTIVE.try_with(Cell::get).unwrap_or(false)
}

/// Emits an event through the current thread's tracer. `fields` is only
/// evaluated when a tracer is installed.
#[inline]
pub fn emit<F: FnOnce() -> Vec<Field>>(
    scope: &'static str,
    name: &'static str,
    deterministic: bool,
    fields: F,
) {
    if !is_enabled() {
        return;
    }
    let _ = CURRENT.try_with(|c| {
        if let Ok(tracer) = c.try_borrow() {
            tracer.emit(scope, name, deterministic, fields());
        }
    });
}

/// An in-flight timed region. Created by [`span`]; emits one event with a
/// `duration_ns` field when finished (or dropped).
pub struct Span {
    scope: &'static str,
    name: &'static str,
    deterministic: bool,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span, attaching `fields` alongside the measured duration.
    pub fn finish(mut self, fields: Vec<Field>) {
        self.emit_now(fields);
    }

    fn emit_now(&mut self, mut fields: Vec<Field>) {
        if let Some(start) = self.start.take() {
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            fields.push(duration_ns("duration_ns", elapsed));
            emit(self.scope, self.name, self.deterministic, || fields);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit_now(Vec::new());
    }
}

/// Starts a timed region that emits `scope`/`name` with a `duration_ns`
/// field on finish. When tracing is disabled the span holds no timestamp
/// and finishing it is free.
///
/// `deterministic` describes the event's *identity and order*, not its
/// duration: duration fields are always excluded from digests.
pub fn span(scope: &'static str, name: &'static str, deterministic: bool) -> Span {
    Span {
        scope,
        name,
        deterministic,
        start: if is_enabled() { Some(Instant::now()) } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sink::{MetricsSink, RingSink};

    #[test]
    fn disabled_is_noop_and_skips_field_construction() {
        assert!(!is_enabled());
        let mut built = false;
        emit("t", "e", true, || {
            built = true;
            vec![count("n", 1)]
        });
        assert!(!built);
    }

    #[test]
    fn install_guard_restores_previous_tracer() {
        let outer = Arc::new(RingSink::new(16));
        let inner = Arc::new(RingSink::new(16));
        {
            let _g1 = install(Tracer::to_sink(outer.clone()));
            emit("t", "outer", true, || vec![]);
            {
                let _g2 = install(Tracer::to_sink(inner.clone()));
                emit("t", "inner", true, || vec![]);
            }
            emit("t", "outer", true, || vec![]);
        }
        assert!(!is_enabled());
        assert_eq!(outer.len(), 2);
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn events_are_sequenced_per_tracer() {
        let ring = Arc::new(RingSink::new(16));
        let _g = install(Tracer::to_sink(ring.clone()));
        emit("t", "a", true, || vec![]);
        emit("t", "b", true, || vec![]);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn span_records_duration_field() {
        let ring = Arc::new(RingSink::new(4));
        let _g = install(Tracer::to_sink(ring.clone()));
        span("t", "work", true).finish(vec![count("items", 3)]);
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert!(events[0]
            .fields
            .iter()
            .any(|(n, v)| *n == "duration_ns" && matches!(v, FieldValue::DurationNs(_))));
        assert!(events[0].fields.contains(&count("items", 3)));
    }

    #[test]
    fn span_disabled_emits_nothing() {
        let s = span("t", "work", true);
        s.finish(vec![]);
        let ring = Arc::new(RingSink::new(4));
        let _g = install(Tracer::to_sink(ring.clone()));
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn metrics_aggregate_across_shared_sink() {
        let sink = Arc::new(MetricsSink::new());
        let tracer = Tracer::to_sink(sink.clone());
        std::thread::scope(|s| {
            for _ in 0..2 {
                let t = tracer.clone();
                s.spawn(move || {
                    let _g = install(t);
                    for _ in 0..3 {
                        emit("net", "frame_sent", true, || vec![size("bytes", 10)]);
                    }
                });
            }
        });
        assert_eq!(sink.sum("net", "frame_sent", "bytes"), 60);
        assert_eq!(sink.sum("net", "frame_sent", "events"), 6);
    }

    #[test]
    fn field_value_as_u64() {
        assert_eq!(FieldValue::Count(4).as_u64(), 4);
        assert_eq!(FieldValue::Size(9).as_u64(), 9);
        assert_eq!(FieldValue::DurationNs(2).as_u64(), 2);
        assert_eq!(FieldValue::Flag(true).as_u64(), 1);
        assert_eq!(FieldValue::Flag(false).as_u64(), 0);
    }
}
