//! Live telemetry: a metrics registry fed by the secret-safe event
//! stream.
//!
//! [`MetricsRegistry`] turns the existing [`Event`](crate::Event) stream
//! into live series — counters, gauges and log-bucketed histograms —
//! without adding any new capture surface: the only way in is
//! [`RegistrySink`], a [`TraceSink`](crate::TraceSink), so everything the
//! registry can ever hold is a typed count/size/duration/flag. Key
//! material, codewords and payloads remain uncapturable by construction
//! (see the crate docs), and the OBS01 analyzer rule covers every emit
//! site that feeds it.
//!
//! ## Determinism
//!
//! Histogram bucket boundaries are *fixed powers of two* (bucket 0 holds
//! the value 0; bucket `k ≥ 1` holds `[2^(k-1), 2^k)`), never adapted to
//! the data. Counter sums and bucket counts over deterministic events are
//! therefore pure functions of protocol inputs and seeds: two runs under
//! the same simnet seed produce byte-identical snapshots of those series.
//! Duration-valued series and gauges are timing-dependent and excluded
//! from any reproducibility claim, exactly like `DurationNs` fields in
//! the ring digest.
//!
//! ## Cost
//!
//! Recording is one short-critical-section mutex acquisition per event:
//! label parsing and field classification happen outside any allocation
//! on the steady-state path (series slots allocate once, on first touch).
//! When no tracer is installed the emit sites never construct events at
//! all, so the registry's cost is strictly opt-in.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use crate::{Event, FieldValue, TraceSink};

/// Snapshot schema version, bumped on any incompatible change to the
/// JSON layout produced by [`MetricsRegistry::snapshot_json`].
pub const STATS_VERSION: u32 = 1;

/// Number of histogram buckets: bucket 0 for the value 0, then one
/// bucket per power of two up to `2^63 ..= u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Field names that act as label dimensions rather than measurements.
/// An event carrying `count("session", 3)` contributes its *other*
/// fields both to the aggregate series and to a `{session=3}` sub-series.
pub const LABEL_FIELDS: [&str; 2] = ["session", "peer"];

/// A fixed-boundary log-bucketed histogram over `u64` values.
///
/// Bucket boundaries are powers of two and never move, so two histograms
/// recording the same multiset of values are identical regardless of
/// arrival order — the property the merge proptests pin down.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("total", &self.total)
            .field("sum", &self.sum)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index holding `value`: 0 for the value 0, otherwise
    /// `k` such that `2^(k-1) <= value < 2^k`. Total over all of `u64`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `bucket`: 0, then `2^(bucket-1)`.
    ///
    /// For every value `v`, `lower_bound(bucket_of(v)) <= v`, and for
    /// nonzero `v` additionally `v < 2 * lower_bound(bucket_of(v))` —
    /// the round-trip the proptests check.
    pub fn lower_bound(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Histogram::bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count in bucket `bucket`.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    /// Folds `other` into `self`. Merging is commutative and
    /// associative, so per-session histograms can be combined in any
    /// order and reproduce the aggregate exactly.
    pub fn merge(&mut self, other: &Histogram) {
        for (slot, add) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += *add;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| (Histogram::lower_bound(b), *c))
            .collect()
    }
}

/// Static identity of a series class: `(scope, name, field)`. Kind
/// registration (gauge/histogram) keys off this, irrespective of labels.
pub type ClassKey = (&'static str, &'static str, &'static str);

/// Full series key: class plus an optional label dimension drawn from
/// [`LABEL_FIELDS`] (e.g. `{session=3}` or `{peer=1}`).
pub type SeriesKey = (ClassKey, Option<(&'static str, u64)>);

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, u64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
    gauge_classes: BTreeSet<ClassKey>,
    histogram_classes: BTreeSet<ClassKey>,
    epoch: u64,
}

impl RegistryInner {
    fn observe(&mut self, event: &Event) {
        // Occurrence counter, mirroring MetricsSink's reserved field.
        let labels: Vec<(&'static str, u64)> = event
            .fields
            .iter()
            .filter(|(n, _)| LABEL_FIELDS.contains(n))
            .map(|(n, v)| (*n, v.as_u64()))
            .collect();
        self.bump(event, "events", 1, false, &labels);
        for (name, value) in &event.fields {
            if LABEL_FIELDS.contains(name) {
                continue;
            }
            let is_duration = matches!(value, FieldValue::DurationNs(_));
            self.bump(event, name, value.as_u64(), is_duration, &labels);
        }
    }

    fn bump(
        &mut self,
        event: &Event,
        field: &'static str,
        value: u64,
        is_duration: bool,
        labels: &[(&'static str, u64)],
    ) {
        let class: ClassKey = (event.scope, event.name, field);
        let record_one = |inner: &mut RegistryInner, label: Option<(&'static str, u64)>| {
            let key: SeriesKey = (class, label);
            if is_duration || inner.histogram_classes.contains(&class) {
                inner.histograms.entry(key).or_default().record(value);
            } else if inner.gauge_classes.contains(&class) {
                inner.gauges.insert(key, value);
            } else {
                let slot = inner.counters.entry(key).or_insert(0);
                *slot = slot.saturating_add(value);
            }
        };
        record_one(self, None);
        for label in labels {
            record_one(self, Some(*label));
        }
    }
}

/// Live counters, gauges and histograms aggregated from the event
/// stream. See the module docs for the determinism and secrecy
/// arguments. Shareable: the daemon holds one registry per process and
/// hands clones of an `Arc<MetricsRegistry>` to every session thread.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry: every field records as a counter until its
    /// class is registered as a gauge or histogram (durations are always
    /// histograms).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Declares `(scope, name, field)` a gauge: the series keeps the
    /// last observed value instead of a monotonically growing sum.
    pub fn register_gauge(&self, scope: &'static str, name: &'static str, field: &'static str) {
        if let Ok(mut g) = self.inner.lock() {
            g.gauge_classes.insert((scope, name, field));
        }
    }

    /// Declares `(scope, name, field)` a histogram even though its
    /// values are not durations (e.g. a Ce-throughput figure).
    pub fn register_histogram(&self, scope: &'static str, name: &'static str, field: &'static str) {
        if let Ok(mut g) = self.inner.lock() {
            g.histogram_classes.insert((scope, name, field));
        }
    }

    /// Feeds one event into the registry.
    pub fn observe(&self, event: &Event) {
        if let Ok(mut g) = self.inner.lock() {
            g.observe(event);
        }
    }

    /// Aggregate (unlabeled) counter value, or 0. The reserved field
    /// `"events"` counts occurrences of `(scope, name)`.
    pub fn counter(&self, scope: &str, name: &str, field: &str) -> u64 {
        self.lookup(|g| &g.counters, scope, name, field, None)
            .unwrap_or(0)
    }

    /// Labeled counter value (e.g. `("leakage", "size_disclosure",
    /// "revealed")` under `{peer=1}`), or 0.
    pub fn counter_labeled(
        &self,
        scope: &str,
        name: &str,
        field: &str,
        label: &str,
        label_value: u64,
    ) -> u64 {
        self.lookup(|g| &g.counters, scope, name, field, Some((label, label_value)))
            .unwrap_or(0)
    }

    /// Aggregate gauge last-value, or `None` when never set.
    pub fn gauge(&self, scope: &str, name: &str, field: &str) -> Option<u64> {
        self.lookup(|g| &g.gauges, scope, name, field, None)
    }

    /// Aggregate histogram for a class, cloned, or `None` when empty.
    pub fn histogram(&self, scope: &str, name: &str, field: &str) -> Option<Histogram> {
        let g = self.inner.lock().ok()?;
        g.histograms
            .iter()
            .find(|(((s, n, f), label), _)| {
                *s == scope && *n == name && *f == field && label.is_none()
            })
            .map(|(_, h)| h.clone())
    }

    fn lookup(
        &self,
        map: impl Fn(&RegistryInner) -> &BTreeMap<SeriesKey, u64>,
        scope: &str,
        name: &str,
        field: &str,
        label: Option<(&str, u64)>,
    ) -> Option<u64> {
        let g = self.inner.lock().ok()?;
        map(&g)
            .iter()
            .find(|(((s, n, f), l), _)| {
                *s == scope
                    && *n == name
                    && *f == field
                    && match (l, label) {
                        (None, None) => true,
                        (Some((ln, lv)), Some((qn, qv))) => *ln == qn && *lv == qv,
                        _ => false,
                    }
            })
            .map(|(_, v)| *v)
    }

    /// Renders the full registry as one versioned JSON object (see
    /// [`STATS_VERSION`]); this is the payload of the daemon's `STATS`
    /// frame. Keys are `scope/name/field` with an optional
    /// `{label=value}` suffix, sorted, so the output is stable and
    /// grep-friendly.
    pub fn snapshot_json(&self) -> String {
        match self.inner.lock() {
            Ok(g) => render_json(&g),
            Err(_) => format!("{{\"stats_version\":{STATS_VERSION}}}"),
        }
    }

    /// Renders the current snapshot, then starts a fresh epoch: counters
    /// and histograms clear, gauges keep their last value (a queue depth
    /// does not become 0 because someone scraped), and `epoch`
    /// increments. Long-running daemons scrape-and-reset so sums never
    /// grow without bound.
    pub fn snapshot_and_reset(&self) -> String {
        match self.inner.lock() {
            Ok(mut g) => {
                let out = render_json(&g);
                g.counters.clear();
                g.histograms.clear();
                g.epoch += 1;
                out
            }
            Err(_) => format!("{{\"stats_version\":{STATS_VERSION}}}"),
        }
    }
}

fn series_label(key: &SeriesKey) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let ((scope, name, field), label) = key;
    match label {
        None => format!("{}/{}/{}", esc(scope), esc(name), esc(field)),
        Some((ln, lv)) => format!(
            "{}/{}/{}{{{}={}}}",
            esc(scope),
            esc(name),
            esc(field),
            esc(ln),
            lv
        ),
    }
}

fn render_json(g: &RegistryInner) -> String {
    let mut out = format!("{{\"stats_version\":{STATS_VERSION},\"epoch\":{},", g.epoch);
    out.push_str("\"counters\":{");
    for (i, (key, v)) in g.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", series_label(key), v));
    }
    out.push_str("},\"gauges\":{");
    for (i, (key, v)) in g.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", series_label(key), v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (key, h)) in g.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
            series_label(key),
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0)
        ));
        for (j, (lb, c)) in h.nonzero_buckets().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{lb}\":{c}"));
        }
        out.push_str("}}");
    }
    out.push_str("}}");
    out
}

/// The registry's only intake: a [`TraceSink`] forwarding every event to
/// a shared [`MetricsRegistry`]. Because this is the sole way data
/// enters the registry, the snapshot can only ever contain typed
/// numeric aggregates of the secret-safe event stream.
pub struct RegistrySink {
    registry: std::sync::Arc<MetricsRegistry>,
}

impl RegistrySink {
    /// A sink feeding `registry`.
    pub fn new(registry: std::sync::Arc<MetricsRegistry>) -> RegistrySink {
        RegistrySink { registry }
    }
}

impl TraceSink for RegistrySink {
    fn record(&self, event: &Event) {
        self.registry.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, duration_ns, size};
    use std::sync::Arc;

    fn event(name: &'static str, fields: Vec<crate::Field>) -> Event {
        Event {
            seq: 0,
            scope: "test",
            name,
            deterministic: true,
            fields,
        }
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::lower_bound(0), 0);
        assert_eq!(Histogram::lower_bound(1), 1);
        assert_eq!(Histogram::lower_bound(64), 1u64 << 63);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = Histogram::new();
        a.record(0);
        a.record(3);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1003);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.nonzero_buckets(), vec![(0, 1), (2, 1), (512, 1)]);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let r = MetricsRegistry::new();
        r.register_gauge("test", "queue", "depth");
        r.register_histogram("test", "done", "ce_per_sec");
        r.observe(&event("open", vec![count("session", 1)]));
        r.observe(&event("open", vec![count("session", 2)]));
        r.observe(&event("queue", vec![size("depth", 5)]));
        r.observe(&event("queue", vec![size("depth", 2)]));
        r.observe(&event(
            "done",
            vec![
                count("session", 1),
                duration_ns("duration_ns", 4096),
                count("ce_per_sec", 77),
            ],
        ));
        assert_eq!(r.counter("test", "open", "events"), 2);
        assert_eq!(r.counter_labeled("test", "open", "events", "session", 1), 1);
        assert_eq!(r.gauge("test", "queue", "depth"), Some(2));
        let h = r.histogram("test", "done", "duration_ns").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket_count(Histogram::bucket_of(4096)), 1);
        let t = r.histogram("test", "done", "ce_per_sec").unwrap();
        assert_eq!(t.sum(), 77);
        // Labeled histogram series exists alongside the aggregate.
        let g = r.inner.lock().unwrap();
        assert!(g
            .histograms
            .contains_key(&(("test", "done", "duration_ns"), Some(("session", 1)))));
    }

    #[test]
    fn snapshot_json_shape_and_reset_semantics() {
        let r = MetricsRegistry::new();
        r.register_gauge("test", "queue", "depth");
        r.observe(&event("open", vec![count("n", 2)]));
        r.observe(&event("queue", vec![size("depth", 9)]));
        r.observe(&event("lat", vec![duration_ns("duration_ns", 100)]));
        let json = r.snapshot_json();
        assert!(json.starts_with("{\"stats_version\":1,\"epoch\":0,"));
        assert!(json.contains("\"test/open/events\":1"));
        assert!(json.contains("\"test/open/n\":2"));
        assert!(json.contains("\"test/queue/depth\":9"));
        assert!(json.contains("\"test/lat/duration_ns\":{\"count\":1,\"sum\":100"));
        assert!(json.contains("\"buckets\":{\"64\":1}"));

        let first = r.snapshot_and_reset();
        assert_eq!(first, json);
        let fresh = r.snapshot_json();
        assert!(fresh.contains("\"epoch\":1"));
        // Counters and histograms cleared; the gauge keeps its value.
        assert_eq!(r.counter("test", "open", "n"), 0);
        assert!(r.histogram("test", "lat", "duration_ns").is_none());
        assert_eq!(r.gauge("test", "queue", "depth"), Some(9));
    }

    #[test]
    fn registry_sink_feeds_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = RegistrySink::new(registry.clone());
        crate::TraceSink::record(&sink, &event("x", vec![count("n", 3)]));
        assert_eq!(registry.counter("test", "x", "n"), 3);
    }

    #[test]
    fn label_fields_are_dimensions_not_measurements() {
        let r = MetricsRegistry::new();
        r.observe(&event(
            "disclosure",
            vec![count("peer", 7), size("revealed", 4)],
        ));
        // "peer" is a label: no counter sums its value.
        assert_eq!(r.counter("test", "disclosure", "peer"), 0);
        assert_eq!(r.counter("test", "disclosure", "revealed"), 4);
        assert_eq!(
            r.counter_labeled("test", "disclosure", "revealed", "peer", 7),
            4
        );
    }
}
