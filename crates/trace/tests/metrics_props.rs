//! Property tests for the live-telemetry layer: fixed histogram bucket
//! boundaries and order-independence of merged registries.

use std::sync::Arc;

use minshare_trace::metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
use minshare_trace::{count, duration_ns, size, Event};
use proptest::prelude::*;

fn event(scope: &'static str, name: &'static str, fields: Vec<minshare_trace::Field>) -> Event {
    Event {
        seq: 0,
        scope,
        name,
        deterministic: true,
        fields,
    }
}

proptest! {
    // Lower bounds are strictly increasing, so the bucket partition is
    // well-ordered.
    #[test]
    fn lower_bounds_are_monotone(b in 1usize..HISTOGRAM_BUCKETS) {
        prop_assert!(Histogram::lower_bound(b) > Histogram::lower_bound(b - 1));
    }

    // Every u64 lands in exactly one bucket, and the bucket's bounds
    // bracket the value: lower_bound(b) <= v, and (for the non-final
    // buckets) v < lower_bound(b + 1). Together: the buckets are total
    // over u64 and bucket_of/lower_bound round-trip.
    #[test]
    fn bucket_of_round_trips_with_lower_bound(v in any::<u64>()) {
        let b = Histogram::bucket_of(v);
        prop_assert!(b < HISTOGRAM_BUCKETS);
        prop_assert!(Histogram::lower_bound(b) <= v);
        if b + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < Histogram::lower_bound(b + 1));
        }
        // The lower bound itself maps back to the same bucket.
        prop_assert_eq!(Histogram::bucket_of(Histogram::lower_bound(b)), b);
    }

    // Bucket counts sum to the total count whatever is recorded.
    #[test]
    fn bucket_counts_sum_to_total(values in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let bucket_sum: u64 = (0..HISTOGRAM_BUCKETS).map(|b| h.bucket_count(b)).sum();
        prop_assert_eq!(bucket_sum, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    // Merging per-session histograms is order-independent: any
    // permutation of any partition of the values reproduces the
    // aggregate histogram exactly.
    #[test]
    fn histogram_merge_is_order_independent(
        values in proptest::collection::vec(any::<u64>(), 1..48),
        split in any::<u64>(),
    ) {
        let cut = (split % (values.len() as u64 + 1)) as usize;
        let (left, right) = values.split_at(cut);
        let part = |vals: &[u64]| {
            let mut h = Histogram::new();
            for v in vals {
                h.record(*v);
            }
            h
        };
        let mut ab = part(left);
        ab.merge(&part(right));
        let mut ba = part(right);
        ba.merge(&part(left));
        prop_assert_eq!(ab.clone(), ba);
        prop_assert_eq!(ab, part(&values));
    }

    // Two registries fed the same multiset of events in different
    // orders render identical snapshots: counters are sums, histograms
    // have fixed boundaries, and the snapshot sorts its keys.
    #[test]
    fn registry_snapshot_is_order_independent(
        sessions in proptest::collection::vec((1u64..5, 0u64..1000, 0u64..1 << 40), 1..24),
        perm in any::<u64>(),
    ) {
        let feed = |order: &[usize]| {
            let r = Arc::new(MetricsRegistry::new());
            for &i in order {
                let (sid, items, ns) = sessions[i];
                r.observe(&event("svc", "done", vec![
                    count("session", sid),
                    size("items", items),
                    duration_ns("duration_ns", ns),
                ]));
            }
            r.snapshot_json()
        };
        let forward: Vec<usize> = (0..sessions.len()).collect();
        // A seeded Fisher-Yates permutation of the same event multiset.
        let mut shuffled = forward.clone();
        let mut state = perm | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(feed(&forward), feed(&shuffled));
    }
}
