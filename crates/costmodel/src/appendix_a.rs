//! The Appendix-A circuit-baseline cost model and the A.2 comparison
//! tables.
//!
//! * **Input coding** — one Naor–Pinkas amortized OT per evaluator input
//!   bit: `Cot = Ce/l + (2^l/l)·C×`, `C'ot ≥ (2^l/l)·k₁` bits. With the
//!   paper's `Ce = 1000·C×` the best `l` is 8, giving `Cot = 0.157·Ce`
//!   and `C'ot ≥ 32·k₁` bits.
//! * **Circuit evaluation** — `2·Cr` per gate and a `4·k₀`-bit table per
//!   gate (`k₀ = 64`).
//! * **Comparison** — against our protocol's `≈ 4n·Ce` computation and
//!   `3n·k` bits (intersection with `|V_S| = |V_R| = n`).

use minshare_circuits::partition::optimal_split;
use serde::{Deserialize, Serialize};

use crate::constants::CostConstants;

/// Amortized Naor–Pinkas OT costs for a batching parameter `l`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtCost {
    /// Batching parameter.
    pub l: u32,
    /// Computation per transfer, in units of `Ce`.
    pub compute_ce_units: f64,
    /// Communication per transfer, in bits.
    pub bits: f64,
}

/// `Cot(l) = Ce/l + (2^l / l)·C×` expressed in `Ce` units given
/// `C× = cmult/ce`.
pub fn ot_cost(l: u32, consts: &CostConstants) -> OtCost {
    let cmult_ratio = consts.cmult_seconds / consts.ce_seconds;
    let pow = (1u64 << l) as f64;
    OtCost {
        l,
        compute_ce_units: 1.0 / l as f64 + pow / l as f64 * cmult_ratio,
        bits: pow / l as f64 * consts.k1_bits as f64,
    }
}

/// Finds the compute-optimal `l` (the paper gets `l = 8`).
pub fn optimal_ot(consts: &CostConstants) -> OtCost {
    (1..=20)
        .map(|l| ot_cost(l, consts))
        .min_by(|a, b| {
            a.compute_ce_units
                .partial_cmp(&b.compute_ce_units)
                .expect("finite")
        })
        .expect("nonempty range")
}

/// One row of the A.2 comparison (computation and communication) for
/// `|V_S| = |V_R| = n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Set size per side.
    pub n: f64,
    /// Optimal partitioning split `m`.
    pub m: u32,
    /// Partitioning-circuit gate count `f(n)`.
    pub circuit_gates: f64,
    /// Circuit input coding: `Ce`-unit operations (`w·n·Cot ≈ 5n`).
    pub circuit_input_ce: f64,
    /// Circuit evaluation: `Cr` operations (`2·f(n)`).
    pub circuit_eval_cr: f64,
    /// Our protocol: `Ce` operations (`≈ 4n` for intersection).
    pub ours_ce: f64,
    /// Circuit input coding bits (`w·n·C'ot`).
    pub circuit_input_bits: f64,
    /// Garbled-table bits (`4·k₀·f(n)`, `k₀ = 64` → `256·f(n)`).
    pub circuit_table_bits: f64,
    /// Our protocol bits (`3n·k`).
    pub ours_bits: f64,
}

/// Builds one comparison row.
pub fn comparison_row(n: f64, consts: &CostConstants) -> ComparisonRow {
    let w = consts.w_bits as f64;
    let ot = optimal_ot(consts);
    let (m, gates) = optimal_split(n, consts.w_bits as usize);
    ComparisonRow {
        n,
        m,
        circuit_gates: gates,
        circuit_input_ce: w * n * ot.compute_ce_units,
        circuit_eval_cr: 2.0 * gates,
        ours_ce: 4.0 * n,
        circuit_input_bits: w * n * ot.bits,
        circuit_table_bits: 4.0 * consts.k_prime_bits as f64 * gates,
        ours_bits: 3.0 * n * consts.k_bits as f64,
    }
}

/// The full A.2 table (`n ∈ {10⁴, 10⁶, 10⁸}` in the paper).
pub fn comparison_table(sizes: &[f64], consts: &CostConstants) -> Vec<ComparisonRow> {
    sizes.iter().map(|&n| comparison_row(n, consts)).collect()
}

/// The headline A.2 claim: wall-clock communication time at `n = 10⁶` —
/// "144 days (using a T1 line), versus 0.5 hours for our protocol".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineComparison {
    /// Circuit-baseline transfer time in days.
    pub circuit_days: f64,
    /// Our protocol's transfer time in hours.
    pub ours_hours: f64,
}

/// Computes the headline comparison for a given `n`.
pub fn headline(n: f64, consts: &CostConstants) -> HeadlineComparison {
    let row = comparison_row(n, consts);
    let circuit_bits = row.circuit_input_bits + row.circuit_table_bits;
    HeadlineComparison {
        circuit_days: consts.transfer_seconds(circuit_bits) / 86_400.0,
        ours_hours: consts.transfer_seconds(row.ours_bits) / 3600.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expect: f64, tol: f64) -> bool {
        (actual / expect - 1.0).abs() < tol
    }

    #[test]
    fn paper_ot_constants() {
        // l = 8 → Cot = 0.157·Ce, C'ot = 32·k₁ = 3200 bits.
        let c = CostConstants::paper();
        let ot = optimal_ot(&c);
        assert_eq!(ot.l, 8);
        assert!((ot.compute_ce_units - 0.157).abs() < 0.001);
        assert!((ot.bits - 3200.0).abs() < 1e-9);
    }

    #[test]
    fn input_coding_matches_5n_ce() {
        // Paper: 32 · n · 0.157·Ce ≈ 5n·Ce.
        let c = CostConstants::paper();
        let row = comparison_row(1e6, &c);
        assert!(
            close(row.circuit_input_ce, 5.0e6, 0.02),
            "{:.3e}",
            row.circuit_input_ce
        );
        assert_eq!(row.ours_ce, 4.0e6);
    }

    #[test]
    fn eval_cr_counts_match_paper() {
        // Paper table: 4.7e8 / 1.5e11 / 3.8e13 Cr for n = 1e4/1e6/1e8.
        let c = CostConstants::paper();
        let rows = comparison_table(&[1e4, 1e6, 1e8], &c);
        assert!(
            close(rows[0].circuit_eval_cr, 4.7e8, 0.05),
            "{:.3e}",
            rows[0].circuit_eval_cr
        );
        assert!(
            close(rows[1].circuit_eval_cr, 1.5e11, 0.05),
            "{:.3e}",
            rows[1].circuit_eval_cr
        );
        assert!(
            close(rows[2].circuit_eval_cr, 3.8e13, 0.05),
            "{:.3e}",
            rows[2].circuit_eval_cr
        );
    }

    #[test]
    fn communication_columns_match_paper() {
        // Paper: OT bits ≈ 1e9/1e11/1e13; table bits 6.0e10/1.8e13/4.9e15;
        // ours 3e7/3e9/3e11.
        let c = CostConstants::paper();
        let rows = comparison_table(&[1e4, 1e6, 1e8], &c);
        assert!(close(rows[0].circuit_input_bits, 1.024e9, 0.01));
        assert!(close(rows[1].circuit_input_bits, 1.024e11, 0.01));
        assert!(close(rows[2].circuit_input_bits, 1.024e13, 0.01));
        assert!(
            close(rows[0].circuit_table_bits, 6.0e10, 0.05),
            "{:.3e}",
            rows[0].circuit_table_bits
        );
        assert!(
            close(rows[1].circuit_table_bits, 1.8e13, 0.08),
            "{:.3e}",
            rows[1].circuit_table_bits
        );
        assert!(
            close(rows[2].circuit_table_bits, 4.9e15, 0.05),
            "{:.3e}",
            rows[2].circuit_table_bits
        );
        assert!(close(rows[1].ours_bits, 3.072e9, 0.01));
    }

    #[test]
    fn headline_144_days_vs_half_hour() {
        let c = CostConstants::paper();
        let h = headline(1e6, &c);
        // Our model gives ≈ 140 days (the paper rounds to 144) and
        // ≈ 0.55 hours (the paper rounds to 0.5).
        assert!(
            (130.0..150.0).contains(&h.circuit_days),
            "{}",
            h.circuit_days
        );
        assert!((0.4..0.7).contains(&h.ours_hours), "{}", h.ours_hours);
    }

    #[test]
    fn circuit_loses_by_orders_of_magnitude() {
        let c = CostConstants::paper();
        for row in comparison_table(&[1e4, 1e6, 1e8], &c) {
            let circuit_bits = row.circuit_input_bits + row.circuit_table_bits;
            assert!(
                circuit_bits / row.ours_bits > 1000.0,
                "n={}: ratio {}",
                row.n,
                circuit_bits / row.ours_bits
            );
        }
    }
}
