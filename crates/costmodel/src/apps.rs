//! The §6.2 application estimates.
//!
//! * **Selective document sharing** (§6.2.1): `|D_R| · |D_S|`
//!   intersection-size runs; computation `|D_R||D_S|(|d_R|+|d_S|)·2Ce`,
//!   communication `|D_R||D_S|(|d_R|+2|d_S|)·k`. With the paper's sizes
//!   (10 × 100 documents of 1000 words): ≈ 2 hours compute on `P = 10`,
//!   3 Gbit ≈ 35 minutes on a T1.
//! * **Medical research** (§6.2.2): four intersection sizes over the four
//!   id partitions; computation `2(|V_R|+|V_S|)·2Ce`, communication
//!   `2(|V_R|+|V_S|)·2k`. With 10⁶ ids per side: ≈ 4 hours compute,
//!   8 Gbit ≈ 1.5 hours transfer.

use serde::{Deserialize, Serialize};

use crate::constants::CostConstants;

/// An application-level estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppEstimate {
    /// Total `Ce` operations across all protocol runs.
    pub ce_ops: f64,
    /// Total wire bits across all runs.
    pub bits: f64,
    /// Computation wall-clock seconds (with parallelism).
    pub compute_seconds: f64,
    /// Transfer seconds.
    pub transfer_seconds: f64,
}

impl AppEstimate {
    fn from_ops(ce_ops: f64, bits: f64, consts: &CostConstants) -> Self {
        AppEstimate {
            ce_ops,
            bits,
            compute_seconds: consts.compute_seconds(ce_ops),
            transfer_seconds: consts.transfer_seconds(bits),
        }
    }

    /// Computation time in hours.
    pub fn compute_hours(&self) -> f64 {
        self.compute_seconds / 3600.0
    }

    /// Transfer time in minutes.
    pub fn transfer_minutes(&self) -> f64 {
        self.transfer_seconds / 60.0
    }

    /// Transfer time in hours.
    pub fn transfer_hours(&self) -> f64 {
        self.transfer_seconds / 3600.0
    }
}

/// §6.2.1: the document-sharing estimate.
///
/// `n_dr`, `n_ds`: number of documents per side; `dr_words`, `ds_words`:
/// significant words per document.
pub fn document_sharing(
    n_dr: u64,
    n_ds: u64,
    dr_words: u64,
    ds_words: u64,
    consts: &CostConstants,
) -> AppEstimate {
    let pairs = (n_dr * n_ds) as f64;
    let ce_ops = pairs * (dr_words + ds_words) as f64 * 2.0;
    let bits = pairs * (dr_words + 2 * ds_words) as f64 * consts.k_bits as f64;
    AppEstimate::from_ops(ce_ops, bits, consts)
}

/// §6.2.2: the medical-research estimate (four intersection sizes over
/// partitions of `|V_R|` and `|V_S|` ids).
pub fn medical_research(vr: u64, vs: u64, consts: &CostConstants) -> AppEstimate {
    // Paper: "The combined cost of the four intersections is
    // 2(|V_R|+|V_S|)·2Ce, and the data transferred is 2(|V_R|+|V_S|)·2k."
    let ce_ops = 2.0 * (vr + vs) as f64 * 2.0;
    let bits = 2.0 * (vr + vs) as f64 * 2.0 * consts.k_bits as f64;
    AppEstimate::from_ops(ce_ops, bits, consts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_sharing_reproduces_paper() {
        // |D_R|=10, |D_S|=100, |d|=1000 words:
        // computation 4·10⁶ Ce / P ≈ 2 hours; 3·10⁶ k ≈ 3 Gbit ≈ 35 min.
        let c = CostConstants::paper();
        let e = document_sharing(10, 100, 1000, 1000, &c);
        assert_eq!(e.ce_ops, 4.0e6);
        assert!((e.bits / 3.0e9 - 1.024).abs() < 0.01, "{:.3e}", e.bits);
        // 4e6 ops · 0.02 s / 10 = 8000 s ≈ 2.2 h ("≈ 2 hours").
        assert!(
            (e.compute_hours() - 2.22).abs() < 0.05,
            "{}",
            e.compute_hours()
        );
        // 3.072e9 bits / 1.544e6 bps ≈ 1990 s ≈ 33 min ("≈ 35 minutes").
        assert!(
            (e.transfer_minutes() - 33.2).abs() < 1.0,
            "{}",
            e.transfer_minutes()
        );
    }

    #[test]
    fn medical_research_reproduces_paper() {
        // |V_R| = |V_S| = 10⁶: 8·10⁶ Ce / P ≈ 4 hours; 8·10⁶ k ≈ 8 Gbit
        // ≈ 1.5 hours.
        let c = CostConstants::paper();
        let e = medical_research(1_000_000, 1_000_000, &c);
        assert_eq!(e.ce_ops, 8.0e6);
        assert!((e.bits / 8.0e9 - 1.024).abs() < 0.01);
        // 8e6 · 0.02 / 10 = 16000 s ≈ 4.4 h ("≈ 4 hours").
        assert!(
            (e.compute_hours() - 4.44).abs() < 0.05,
            "{}",
            e.compute_hours()
        );
        // 8.192e9 / 1.544e6 ≈ 5306 s ≈ 1.47 h ("≈ 1.5 hours").
        assert!(
            (e.transfer_hours() - 1.47).abs() < 0.05,
            "{}",
            e.transfer_hours()
        );
    }

    #[test]
    fn faster_hardware_shrinks_compute_only() {
        let paper = CostConstants::paper();
        let modern = CostConstants::with_measured_ce(0.0002);
        let a = medical_research(1_000_000, 1_000_000, &paper);
        let b = medical_research(1_000_000, 1_000_000, &modern);
        assert!(b.compute_seconds < a.compute_seconds / 50.0);
        assert_eq!(a.transfer_seconds, b.transfer_seconds);
    }
}
