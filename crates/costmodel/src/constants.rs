//! The cost environment of §6: unit costs and machine parameters.

use serde::{Deserialize, Serialize};

/// Cost constants parameterizing the model.
///
/// [`CostConstants::paper`] reproduces the paper's environment: a 2001
/// Pentium III doing a 1024-bit modular exponentiation in 0.02 s (from
/// Naor–Pinkas \[36\]), a T1 line (1.544 Mbit/s), and `P = 10` processors
/// for the trivially parallel encryption passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConstants {
    /// `Ce`: seconds per commutative encryption (k-bit modexp).
    pub ce_seconds: f64,
    /// `Cr`: seconds per pseudorandom-function evaluation (circuit
    /// baseline). The paper keeps this symbolic; the default is the
    /// `Ce/10⁴` breakeven it discusses.
    pub cr_seconds: f64,
    /// `C×`: seconds per modular multiplication; the paper assumes
    /// `Ce = 1000·C×`.
    pub cmult_seconds: f64,
    /// Line bandwidth in bits per second (T1 = 1.544·10⁶).
    pub bandwidth_bps: f64,
    /// `P`: processors available for the parallelizable passes.
    pub parallelism: f64,
    /// `k`: bits per encrypted codeword (1024).
    pub k_bits: u64,
    /// `k'`: bits of an encrypted `ext(v)` payload, and of a garbled-
    /// circuit wire key (the paper uses 64 for the circuit analysis).
    pub k_prime_bits: u64,
    /// `k₁`: bits of the keys inside the Naor–Pinkas OT (100).
    pub k1_bits: u64,
    /// `w`: input value width in bits for the circuit baseline (32).
    pub w_bits: u64,
}

impl CostConstants {
    /// The paper's environment (§6.2 and Appendix A).
    pub fn paper() -> Self {
        let ce = 0.02;
        CostConstants {
            ce_seconds: ce,
            cr_seconds: ce / 10_000.0,
            cmult_seconds: ce / 1000.0,
            bandwidth_bps: 1.544e6,
            parallelism: 10.0,
            k_bits: 1024,
            k_prime_bits: 64,
            k1_bits: 100,
            w_bits: 32,
        }
    }

    /// The paper's environment with `Ce` (and proportionally `C×`, `Cr`)
    /// measured on the current machine — used to re-evaluate the model
    /// with modern hardware.
    pub fn with_measured_ce(ce_seconds: f64) -> Self {
        CostConstants {
            ce_seconds,
            cr_seconds: ce_seconds / 10_000.0,
            cmult_seconds: ce_seconds / 1000.0,
            ..Self::paper()
        }
    }

    /// Seconds to perform `ops` exponentiations with `P`-way parallelism.
    pub fn compute_seconds(&self, ce_ops: f64) -> f64 {
        ce_ops * self.ce_seconds / self.parallelism
    }

    /// Seconds to move `bits` over the line.
    pub fn transfer_seconds(&self, bits: f64) -> f64 {
        bits / self.bandwidth_bps
    }

    /// Exponentiations per hour on one processor — the paper quotes
    /// "around 2·10⁵ exponentiations per hour".
    pub fn ce_per_hour(&self) -> f64 {
        3600.0 / self.ce_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_exponentiation_rate() {
        // 0.02 s/op → 1.8e5 ≈ "around 2·10⁵" per hour.
        let c = CostConstants::paper();
        assert!((c.ce_per_hour() - 180_000.0).abs() < 1.0);
    }

    #[test]
    fn compute_uses_parallelism() {
        let c = CostConstants::paper();
        assert!((c.compute_seconds(1000.0) - 1000.0 * 0.02 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_matches_t1() {
        let c = CostConstants::paper();
        // 1 Gbit over T1 ≈ 647.7 s.
        assert!((c.transfer_seconds(1e9) - 647.668).abs() < 0.01);
    }

    #[test]
    fn measured_rebase_scales_derived_costs() {
        let c = CostConstants::with_measured_ce(0.001);
        assert_eq!(c.ce_seconds, 0.001);
        assert_eq!(c.cmult_seconds, 0.001 / 1000.0);
        assert_eq!(c.k_bits, 1024);
    }

    #[test]
    fn copy_and_eq_semantics() {
        let a = CostConstants::paper();
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, CostConstants::with_measured_ce(0.5));
    }
}
