//! Reconciling *measured* protocol runs against the §6.1 predictions.
//!
//! The trace layer (`minshare-trace`) counts what a run actually did —
//! `Ce` operations from the engines' op counters, wire bytes and frames
//! from the counting transport. This module holds those measurements up
//! against the paper's formulas:
//!
//! * **Computation is exact.** The engines charge §6.1 units directly,
//!   so total measured `Ce` must equal [`Protocol::ce_ops`] to the
//!   operation — any drift is a bug, not noise.
//! * **Communication has a documented envelope.** The formulas count
//!   payload bits only (`(|V_S|+2|V_R|)·k` etc.); the wire adds a 5-byte
//!   header per frame and, for pipelined streams, a 10-byte chunked
//!   envelope header. Measured bytes must therefore lie in
//!   `[predicted, predicted + ENVELOPE_BYTES_PER_FRAME · frames]`.
//!
//! The report serializes to JSON for the profiler (`bench_protocols
//! --profile`) and the CLI's `--trace` summary line.

use serde::{Deserialize, Serialize};

use crate::constants::CostConstants;
use crate::section6::Protocol;

/// Upper bound on framing overhead per wire frame: a plain frame costs a
/// 5-byte `[tag, count: u32]` header, a chunked stream additionally one
/// 10-byte envelope header — so 10 bytes per observed frame bounds both.
pub const ENVELOPE_BYTES_PER_FRAME: u64 = 10;

/// Which side of the protocol a measurement was taken on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Party {
    /// `S` — contributes `V_S`, learns only `|V_R|`.
    Sender,
    /// `R` — contributes `V_R`, learns the result.
    Receiver,
}

impl Party {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Party::Sender => "sender",
            Party::Receiver => "receiver",
        }
    }
}

/// The §6.1 `Ce` total split to one party.
///
/// Intersection and both size protocols: each party encrypts its own set
/// and re-encrypts (or double-encrypts) the peer's, so each side spends
/// `|V_S| + |V_R|` of the `2(|V_S| + |V_R|)` total. The equijoin is
/// asymmetric: `S` answers `Y_R` under two keys and builds the payload
/// table (`2|V_S| + 2|V_R|`), while `R` encrypts `V_R` once and strips
/// its layer from both halves of each answer (`3|V_R|`).
pub fn party_ce_ops(protocol: Protocol, party: Party, vs: u64, vr: u64) -> u64 {
    match (protocol, party) {
        (Protocol::Equijoin, Party::Sender) => 2 * vs + 2 * vr,
        (Protocol::Equijoin, Party::Receiver) => 3 * vr,
        (_, _) => vs + vr,
    }
}

/// What the trace layer measured for one full protocol run (both
/// directions of traffic, both parties' operation counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// Which protocol ran.
    pub protocol: Protocol,
    /// `|V_S|` (sender set size after dedup).
    pub vs: u64,
    /// `|V_R|`.
    pub vr: u64,
    /// Actual codeword width in bits (`8·⌈k/8⌉` for the group in use).
    pub k_bits: u64,
    /// Actual encrypted-payload width in bits (equijoin only; the wire
    /// cost of one `K(κ(v), ext(v))` entry including its length prefix).
    pub k_prime_bits: u64,
    /// Total `Ce` operations both parties charged (§6.1 units).
    pub measured_ce: u64,
    /// Total wire bytes, both directions.
    pub measured_bytes: u64,
    /// Total frames that produced those bytes.
    pub frames: u64,
}

/// A measured run held against the §6.1 predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reconciliation {
    /// The measurements being judged.
    pub run: MeasuredRun,
    /// [`Protocol::ce_ops`] at the run's sizes.
    pub predicted_ce: u64,
    /// §6.1 communication bits / 8, evaluated at the run's actual
    /// codeword and payload widths.
    pub predicted_bytes: u64,
    /// Measured minus predicted bytes (framing overhead).
    pub overhead_bytes: u64,
    /// Exponentiation count matches the formula exactly.
    pub ce_exact: bool,
    /// Byte count lies within the documented framing envelope.
    pub bytes_within_envelope: bool,
}

/// Judges one measured run against the model.
pub fn reconcile(run: MeasuredRun) -> Reconciliation {
    let consts = CostConstants {
        k_bits: run.k_bits,
        k_prime_bits: run.k_prime_bits,
        ..CostConstants::paper()
    };
    let predicted_ce = run.protocol.ce_ops(run.vs, run.vr);
    let predicted_bits = run.protocol.communication_bits(run.vs, run.vr, &consts);
    let predicted_bytes = predicted_bits.div_ceil(8);
    let ce_exact = run.measured_ce == predicted_ce;
    let bytes_within_envelope = run.measured_bytes >= predicted_bytes
        && run.measured_bytes - predicted_bytes <= ENVELOPE_BYTES_PER_FRAME * run.frames;
    Reconciliation {
        run,
        predicted_ce,
        predicted_bytes,
        overhead_bytes: run.measured_bytes.saturating_sub(predicted_bytes),
        ce_exact,
        bytes_within_envelope,
    }
}

impl Reconciliation {
    /// Both checks pass.
    pub fn ok(&self) -> bool {
        self.ce_exact && self.bytes_within_envelope
    }

    /// One-line JSON object (no external JSON dependency in this
    /// workspace; every field is a number, bool, or fixed identifier, so
    /// no escaping is needed).
    pub fn to_json(&self) -> String {
        let r = &self.run;
        format!(
            concat!(
                "{{\"protocol\":\"{}\",\"vs\":{},\"vr\":{},",
                "\"k_bits\":{},\"k_prime_bits\":{},",
                "\"measured_ce\":{},\"predicted_ce\":{},\"ce_exact\":{},",
                "\"measured_bytes\":{},\"predicted_bytes\":{},",
                "\"overhead_bytes\":{},\"frames\":{},",
                "\"bytes_within_envelope\":{},\"ok\":{}}}"
            ),
            protocol_slug(r.protocol),
            r.vs,
            r.vr,
            r.k_bits,
            r.k_prime_bits,
            r.measured_ce,
            self.predicted_ce,
            self.ce_exact,
            r.measured_bytes,
            self.predicted_bytes,
            self.overhead_bytes,
            r.frames,
            self.bytes_within_envelope,
            self.ok(),
        )
    }
}

/// One bucket of a sharded run, as reported by the per-bucket trace
/// events (`shard` scope): the bucket's set sizes and the `Ce` total
/// both parties charged while processing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketTrace {
    /// `|V_S ∩ bucket|`.
    pub vs: u64,
    /// `|V_R ∩ bucket|`.
    pub vr: u64,
    /// Total `Ce` operations both parties charged for this bucket.
    pub ce: u64,
}

/// A sharded run held against the model: the per-bucket linearity check
/// plus the aggregate [`Reconciliation`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedReconciliation {
    /// The aggregate judgment at the summed sizes.
    pub total: Reconciliation,
    /// `protocol.ce_ops(vs_b, vr_b)` per bucket.
    pub predicted_bucket_ce: Vec<u64>,
    /// Every bucket's measured `Ce` equals its own §6.1 formula — the
    /// linearity that makes per-bucket traces sum to the paper's totals.
    pub buckets_exact: bool,
}

/// Judges a sharded run: every §6.1 `Ce` formula is linear in
/// `(|V_S|, |V_R|)`, so each bucket must satisfy the formula *at its own
/// sizes* and the bucket sums must reconcile exactly like an unsharded
/// run of the total sizes. The byte envelope is unchanged — the 6-byte
/// shard hello and any empty-bucket frames both fit under the same
/// [`ENVELOPE_BYTES_PER_FRAME`] bound per observed frame.
pub fn reconcile_sharded(
    protocol: Protocol,
    k_bits: u64,
    k_prime_bits: u64,
    buckets: &[BucketTrace],
    measured_bytes: u64,
    frames: u64,
) -> ShardedReconciliation {
    let mut predicted_bucket_ce = Vec::with_capacity(buckets.len());
    let mut buckets_exact = true;
    let (mut vs, mut vr, mut ce) = (0u64, 0u64, 0u64);
    for b in buckets {
        let predicted = protocol.ce_ops(b.vs, b.vr);
        buckets_exact &= b.ce == predicted;
        predicted_bucket_ce.push(predicted);
        vs += b.vs;
        vr += b.vr;
        ce += b.ce;
    }
    let total = reconcile(MeasuredRun {
        protocol,
        vs,
        vr,
        k_bits,
        k_prime_bits,
        measured_ce: ce,
        measured_bytes,
        frames,
    });
    ShardedReconciliation {
        total,
        predicted_bucket_ce,
        buckets_exact,
    }
}

impl ShardedReconciliation {
    /// Aggregate and per-bucket checks all pass.
    pub fn ok(&self) -> bool {
        self.buckets_exact && self.total.ok()
    }

    /// One-line JSON object extending [`Reconciliation::to_json`] with
    /// the bucket verdict.
    pub fn to_json(&self) -> String {
        let inner = self.total.to_json();
        let body = inner.strip_suffix('}').unwrap_or(&inner);
        format!(
            "{},\"buckets\":{},\"buckets_exact\":{},\"sharded_ok\":{}}}",
            body,
            self.predicted_bucket_ce.len(),
            self.buckets_exact,
            self.ok(),
        )
    }
}

/// Machine-friendly protocol name (no spaces, unlike
/// [`Protocol::name`]).
pub fn protocol_slug(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Intersection => "intersection",
        Protocol::Equijoin => "equijoin",
        Protocol::IntersectionSize => "intersection_size",
        Protocol::EquijoinSize => "equijoin_size",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_splits_sum_to_totals() {
        for protocol in Protocol::all() {
            for (vs, vr) in [(0u64, 0u64), (1, 1), (7, 3), (100, 250)] {
                let split = party_ce_ops(protocol, Party::Sender, vs, vr)
                    + party_ce_ops(protocol, Party::Receiver, vs, vr);
                assert_eq!(split, protocol.ce_ops(vs, vr), "{protocol:?} {vs},{vr}");
            }
        }
    }

    #[test]
    fn exact_run_reconciles() {
        // Intersection of 7 vs 3 at 64-bit codewords: predicted
        // (7 + 2·3)·64 bits = 104 bytes over 3 frames.
        let run = MeasuredRun {
            protocol: Protocol::Intersection,
            vs: 7,
            vr: 3,
            k_bits: 64,
            k_prime_bits: 0,
            measured_ce: 20,
            measured_bytes: 104 + 3 * 5,
            frames: 3,
        };
        let r = reconcile(run);
        assert!(r.ce_exact);
        assert!(r.bytes_within_envelope);
        assert!(r.ok());
        assert_eq!(r.predicted_ce, 20);
        assert_eq!(r.predicted_bytes, 104);
        assert_eq!(r.overhead_bytes, 15);
    }

    #[test]
    fn wrong_ce_fails() {
        let run = MeasuredRun {
            protocol: Protocol::IntersectionSize,
            vs: 4,
            vr: 4,
            k_bits: 64,
            k_prime_bits: 0,
            measured_ce: 15, // should be 16
            measured_bytes: (4 + 8) * 8 + 15,
            frames: 3,
        };
        let r = reconcile(run);
        assert!(!r.ce_exact);
        assert!(!r.ok());
    }

    #[test]
    fn bytes_outside_envelope_fail_both_ways() {
        let base = MeasuredRun {
            protocol: Protocol::Intersection,
            vs: 2,
            vr: 2,
            k_bits: 64,
            k_prime_bits: 0,
            measured_ce: 8,
            measured_bytes: 0,
            frames: 3,
        };
        let predicted = (2 + 4) * 8u64; // 48 bytes
        // Under the prediction: a frame went missing.
        let r = reconcile(MeasuredRun {
            measured_bytes: predicted - 1,
            ..base
        });
        assert!(!r.bytes_within_envelope);
        // Over the envelope: unaccounted traffic.
        let r = reconcile(MeasuredRun {
            measured_bytes: predicted + ENVELOPE_BYTES_PER_FRAME * 3 + 1,
            ..base
        });
        assert!(!r.bytes_within_envelope);
        // At the exact envelope edge: fine.
        let r = reconcile(MeasuredRun {
            measured_bytes: predicted + ENVELOPE_BYTES_PER_FRAME * 3,
            ..base
        });
        assert!(r.bytes_within_envelope);
    }

    #[test]
    fn equijoin_uses_k_prime() {
        let run = MeasuredRun {
            protocol: Protocol::Equijoin,
            vs: 3,
            vr: 2,
            k_bits: 64,
            k_prime_bits: 80,
            measured_ce: 2 * 3 + 5 * 2,
            measured_bytes: ((3 + 6) * 64 + 3 * 80) / 8 + 3 * 5,
            frames: 3,
        };
        let r = reconcile(run);
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn sharded_buckets_sum_to_the_global_reconciliation() {
        // Intersection over 3 buckets: (vs, vr) = (3,1), (2,4), (2,1);
        // per-bucket ce = vs_b + vr_b doubled across both parties.
        let buckets = [
            BucketTrace { vs: 3, vr: 1, ce: 8 },
            BucketTrace { vs: 2, vr: 4, ce: 12 },
            BucketTrace { vs: 2, vr: 1, ce: 6 },
        ];
        // Totals: vs=7, vr=6 → predicted (7 + 12)·64 bits = 152 bytes.
        let r = reconcile_sharded(Protocol::Intersection, 64, 0, &buckets, 152 + 20, 4);
        assert!(r.buckets_exact);
        assert!(r.total.ce_exact);
        assert!(r.ok(), "{r:?}");
        assert_eq!(r.predicted_bucket_ce, vec![8, 12, 6]);
        let json = r.to_json();
        assert!(json.contains("\"buckets\":3"));
        assert!(json.contains("\"sharded_ok\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn one_bad_bucket_fails_even_when_totals_balance() {
        // Ce shifted between buckets: totals still sum to the formula,
        // but bucket-level linearity is violated.
        let buckets = [
            BucketTrace { vs: 2, vr: 2, ce: 10 },
            BucketTrace { vs: 2, vr: 2, ce: 6 },
        ];
        let r = reconcile_sharded(Protocol::Intersection, 64, 0, &buckets, 8 * 12, 4);
        assert!(r.total.ce_exact, "totals were constructed to balance");
        assert!(!r.buckets_exact);
        assert!(!r.ok());
        assert!(r.to_json().contains("\"buckets_exact\":false"));
    }

    #[test]
    fn json_shape_is_stable() {
        let run = MeasuredRun {
            protocol: Protocol::Equijoin,
            vs: 1,
            vr: 1,
            k_bits: 64,
            k_prime_bits: 80,
            measured_ce: 7,
            measured_bytes: 47,
            frames: 3,
        };
        let json = reconcile(run).to_json();
        assert!(json.starts_with("{\"protocol\":\"equijoin\","));
        assert!(json.contains("\"ce_exact\":true"));
        assert!(json.ends_with('}'));
        // Balanced braces and quotes (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }
}
