//! The §6.1 protocol cost formulas.
//!
//! Computation (exact forms, then the dominant-term approximations the
//! paper uses for its estimates):
//!
//! * intersection / intersection size / join size:
//!   `(Ch + 2Ce)(|V_S| + |V_R|) + sorting ≈ 2Ce(|V_S| + |V_R|)`
//! * equijoin:
//!   `Ch(|V_S|+|V_R|) + 2Ce|V_S| + 5Ce|V_R| + CK(|V_S|+|V_S∩V_R|) + …
//!    ≈ 2Ce|V_S| + 5Ce|V_R|`
//!
//! Communication:
//!
//! * intersection (and both size protocols): `(|V_S| + 2|V_R|)·k` bits
//! * equijoin: `(|V_S| + 3|V_R|)·k + |V_S|·k'` bits

use serde::{Deserialize, Serialize};

use crate::constants::CostConstants;

/// Which of the four protocols a formula refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// §3 intersection.
    Intersection,
    /// §4 equijoin.
    Equijoin,
    /// §5.1 intersection size.
    IntersectionSize,
    /// §5.2 equijoin size.
    EquijoinSize,
}

impl Protocol {
    /// All four, in paper order.
    pub fn all() -> [Protocol; 4] {
        [
            Protocol::Intersection,
            Protocol::Equijoin,
            Protocol::IntersectionSize,
            Protocol::EquijoinSize,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Intersection => "intersection",
            Protocol::Equijoin => "equijoin",
            Protocol::IntersectionSize => "intersection size",
            Protocol::EquijoinSize => "equijoin size",
        }
    }

    /// Total `Ce` operations across both parties (the paper's
    /// approximation — `Ce` dominates hashing and sorting).
    pub fn ce_ops(&self, vs: u64, vr: u64) -> u64 {
        match self {
            Protocol::Equijoin => 2 * vs + 5 * vr,
            _ => 2 * (vs + vr),
        }
    }

    /// Total hash (`Ch`) operations.
    pub fn hash_ops(&self, vs: u64, vr: u64) -> u64 {
        vs + vr
    }

    /// Total payload-cipher (`CK`) operations; only the join uses `K`.
    pub fn ck_ops(&self, vs: u64, intersection: u64) -> u64 {
        match self {
            Protocol::Equijoin => vs + intersection,
            _ => 0,
        }
    }

    /// Wire bits, per the §6.1 communication formulas.
    pub fn communication_bits(&self, vs: u64, vr: u64, consts: &CostConstants) -> u64 {
        let k = consts.k_bits;
        match self {
            Protocol::Equijoin => (vs + 3 * vr) * k + vs * consts.k_prime_bits,
            _ => (vs + 2 * vr) * k,
        }
    }
}

/// A complete §6.1 estimate for one protocol instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolEstimate {
    /// Which protocol.
    pub protocol: Protocol,
    /// `|V_S|`.
    pub vs: u64,
    /// `|V_R|`.
    pub vr: u64,
    /// Total `Ce` operations.
    pub ce_ops: u64,
    /// Wire bits.
    pub bits: u64,
    /// Computation wall-clock seconds (with `P`-way parallelism).
    pub compute_seconds: f64,
    /// Transfer seconds on the modeled line.
    pub transfer_seconds: f64,
}

/// Evaluates the model for one protocol instance.
pub fn estimate(protocol: Protocol, vs: u64, vr: u64, consts: &CostConstants) -> ProtocolEstimate {
    let ce_ops = protocol.ce_ops(vs, vr);
    let bits = protocol.communication_bits(vs, vr, consts);
    ProtocolEstimate {
        protocol,
        vs,
        vr,
        ce_ops,
        bits,
        compute_seconds: consts.compute_seconds(ce_ops as f64),
        transfer_seconds: consts.transfer_seconds(bits as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_formulas() {
        let c = CostConstants::paper();
        let e = estimate(Protocol::Intersection, 1000, 500, &c);
        assert_eq!(e.ce_ops, 2 * 1500);
        assert_eq!(e.bits, (1000 + 2 * 500) * 1024);
    }

    #[test]
    fn join_formulas() {
        let c = CostConstants::paper();
        let e = estimate(Protocol::Equijoin, 1000, 500, &c);
        assert_eq!(e.ce_ops, 2 * 1000 + 5 * 500);
        assert_eq!(e.bits, (1000 + 3 * 500) * 1024 + 1000 * 64);
    }

    #[test]
    fn size_protocols_match_intersection_cost() {
        let c = CostConstants::paper();
        let a = estimate(Protocol::Intersection, 7, 3, &c);
        let b = estimate(Protocol::IntersectionSize, 7, 3, &c);
        let d = estimate(Protocol::EquijoinSize, 7, 3, &c);
        assert_eq!(a.ce_ops, b.ce_ops);
        assert_eq!(a.bits, b.bits);
        assert_eq!(a.ce_ops, d.ce_ops);
        assert_eq!(a.bits, d.bits);
    }

    #[test]
    fn ck_only_for_join() {
        assert_eq!(Protocol::Equijoin.ck_ops(10, 4), 14);
        assert_eq!(Protocol::Intersection.ck_ops(10, 4), 0);
    }

    #[test]
    fn times_scale_linearly() {
        let c = CostConstants::paper();
        let small = estimate(Protocol::Intersection, 100, 100, &c);
        let large = estimate(Protocol::Intersection, 1000, 1000, &c);
        assert!((large.compute_seconds / small.compute_seconds - 10.0).abs() < 1e-9);
        assert!((large.transfer_seconds / small.transfer_seconds - 10.0).abs() < 1e-9);
    }
}
