//! Plain-text table rendering for the `paper_tables` binary.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float in compact scientific notation (`2.3e8`).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let exp = x.abs().log10().floor() as i32;
    let mantissa = x / 10f64.powi(exp);
    format!("{mantissa:.1}e{exp}")
}

/// Formats seconds as a human-readable duration.
pub fn duration(seconds: f64) -> String {
    if seconds < 1.0 {
        format!("{:.1} ms", seconds * 1000.0)
    } else if seconds < 120.0 {
        format!("{seconds:.1} s")
    } else if seconds < 7200.0 {
        format!("{:.1} min", seconds / 60.0)
    } else if seconds < 86_400.0 * 2.0 {
        format!("{:.1} h", seconds / 3600.0)
    } else {
        format!("{:.1} days", seconds / 86_400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["n", "value"]);
        t.row(&["10".to_string(), "short".to_string()]);
        t.row(&["100000".to_string(), "x".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("value"));
        // Right-aligned numbers line up at the end of the column.
        assert!(lines[2].starts_with("    10"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1".to_string()]);
    }

    #[test]
    fn sci_format() {
        assert_eq!(sci(2.3e8), "2.3e8");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(7.25e10), "7.2e10");
        assert_eq!(sci(1.0), "1.0e0");
    }

    #[test]
    fn duration_format() {
        assert_eq!(duration(0.5), "500.0 ms");
        assert_eq!(duration(90.0), "90.0 s");
        assert_eq!(duration(1800.0), "30.0 min");
        assert_eq!(duration(7200.0), "2.0 h");
        assert_eq!(duration(86_400.0 * 144.0), "144.0 days");
    }
}
