#!/usr/bin/env bash
# Regenerates the committed benchmark snapshot (BENCH_protocols.json) and
# runs the criterion perf suite for eyeballing. Run from the repo root.
#
# With --check, no snapshot is written: the e2e rows are re-measured and
# compared against the committed BENCH_protocols.json, failing (exit 1)
# if any optimized/serial ratio regressed by more than 10%. verify.sh
# runs this as its perf-regression smoke step.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--check" ]; then
    echo "== bench_protocols --check vs BENCH_protocols.json" >&2
    exec cargo run --release -q -p minshare-bench --features simd --bin bench_protocols -- \
        --check BENCH_protocols.json
fi

echo "== bench_protocols -> BENCH_protocols.json" >&2
cargo run --release -q -p minshare-bench --features simd --bin bench_protocols | tee BENCH_protocols.json

echo "== criterion perf suite (pipeline)" >&2
cargo bench -q -p minshare-bench --features simd --bench pipeline
