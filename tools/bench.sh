#!/usr/bin/env bash
# Regenerates the committed benchmark snapshot (BENCH_protocols.json) and
# runs the criterion perf suite for eyeballing. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench_protocols -> BENCH_protocols.json" >&2
cargo run --release -q -p minshare-bench --bin bench_protocols | tee BENCH_protocols.json

echo "== criterion perf suite (pipeline)" >&2
cargo bench -q -p minshare-bench --bench pipeline
