#!/usr/bin/env sh
# Tier-1 verification gate: build, test, then lint with the repo-local
# static analyzer against the checked-in findings baseline.
#
# Run from anywhere; operates on the repo this script lives in.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

cargo build --release
cargo test -q
# SIMD feature matrix: the AVX-512 IFMA backend must build and its
# differential suites pass alongside the default (scalar) configuration
# just tested above. On a host without the CPU feature the runtime
# detection keeps the scalar fallback active, so this still exercises
# the dispatch seam.
cargo build --release -p minshare-bench --features simd
cargo test -q -p minshare-simd
cargo test -q -p minshare-bignum --features simd
cargo test -q -p minshare-crypto --features simd
# The analyzer's own unit + fixture suite: every rule must prove both
# detection (seeded-bug fixtures flagged at the expected lines) and the
# clean pass before its verdict on the workspace means anything.
cargo test -q -p minshare-analyzer
# Gate the workspace against the findings baseline, and report how long
# the full scan takes (it runs on every commit, so its cost is watched).
t0=$(date +%s%N)
cargo run -q --release -p minshare-analyzer -- --baseline analyzer.baseline.toml
t1=$(date +%s%N)
echo "analyzer wall-time: $(( (t1 - t0) / 1000000 )) ms"
# The zero-count ratchet anchors record that the paper's minimal-sharing
# invariant (WIRE01) and the pool/transport liveness invariant (LOCK01)
# hold everywhere in scope. Deleting an anchor would let findings creep
# back in silently, so their absence fails the gate.
for anchor in WIRE01 LOCK01; do
    if ! grep -q "rule = \"$anchor\"" analyzer.baseline.toml; then
        echo "verify: missing $anchor ratchet anchor in analyzer.baseline.toml" >&2
        exit 1
    fi
done
# Protocol conformance under network faults: the fixed-seed suite runs
# as part of `cargo test` above; re-run it by name so a registration
# slip (e.g. the [[test]] entry disappearing) fails loudly, then sweep a
# reduced schedule count through the fault_sweep binary as a smoke test
# (the full 60×4 sweep is the default when run by hand).
cargo test -q --test conformance
cargo run -q --release -p minshare-bench --bin fault_sweep -- --schedules 10
# Cost-model reconciliation smoke: the profiler replays all four
# protocols with tracing on and judges the measured counters against the
# §6.1 formulas. The binary exits non-zero unless every protocol
# reconciles; the greps additionally pin the report shape — it must
# parse as the expected JSON and show exactly four ce_exact:true entries
# (measured encryption counts equal to the predictions, not merely
# close).
profile_json=$(cargo run -q --release -p minshare-bench --bin bench_protocols -- --profile smoke)
echo "$profile_json" | grep -q '"profile": *"smoke"'
[ "$(echo "$profile_json" | grep -o '"ce_exact":true' | wc -l)" -eq 4 ]
# Smoke-run the perf suite (one pass per routine, no timing loops) so a
# bench that stops compiling or panics fails the gate.
cargo bench -q -p minshare-bench --bench pipeline -- --test
# Perf-regression smoke: re-measure the end-to-end rows and compare the
# optimized/serial ratios against the committed BENCH_protocols.json
# (10% tolerance; ratios, not wall times, so background load and host
# speed cancel out).
bash tools/bench.sh --check
