#!/usr/bin/env sh
# Tier-1 verification gate: build, test, then lint with the repo-local
# static analyzer against the checked-in findings baseline.
#
# Run from anywhere; operates on the repo this script lives in.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

cargo build --release
cargo test -q
# SIMD feature matrix: the AVX-512 IFMA backend must build and its
# differential suites pass alongside the default (scalar) configuration
# just tested above. On a host without the CPU feature the runtime
# detection keeps the scalar fallback active, so this still exercises
# the dispatch seam.
cargo build --release -p minshare-bench --features simd
cargo test -q -p minshare-simd
cargo test -q -p minshare-bignum --features simd
cargo test -q -p minshare-crypto --features simd
# The analyzer's own unit + fixture suite: every rule must prove both
# detection (seeded-bug fixtures flagged at the expected lines) and the
# clean pass before its verdict on the workspace means anything.
cargo test -q -p minshare-analyzer
# Gate the workspace against the findings baseline, and report how long
# the full scan takes (it runs on every commit, so its cost is watched).
t0=$(date +%s%N)
cargo run -q --release -p minshare-analyzer -- --baseline analyzer.baseline.toml
t1=$(date +%s%N)
echo "analyzer wall-time: $(( (t1 - t0) / 1000000 )) ms"
# The zero-count ratchet anchors record that the paper's minimal-sharing
# invariant (WIRE01), the pool/transport liveness invariant (LOCK01) and
# the telemetry secrecy invariant (OBS01 — nothing but typed counters in
# the trace/metrics layer) hold everywhere in scope. Deleting an anchor
# would let findings creep back in silently, so their absence fails the
# gate.
for anchor in WIRE01 LOCK01 OBS01; do
    if ! grep -q "rule = \"$anchor\"" analyzer.baseline.toml; then
        echo "verify: missing $anchor ratchet anchor in analyzer.baseline.toml" >&2
        exit 1
    fi
done
# Protocol conformance under network faults: the fixed-seed suite runs
# as part of `cargo test` above; re-run it by name so a registration
# slip (e.g. the [[test]] entry disappearing) fails loudly, then sweep a
# reduced schedule count through the fault_sweep binary as a smoke test
# (the full 60×4 sweep is the default when run by hand).
cargo test -q --test conformance
cargo run -q --release -p minshare-bench --bin fault_sweep -- --schedules 10
# Cost-model reconciliation smoke: the profiler replays all four
# protocols with tracing on and judges the measured counters against the
# §6.1 formulas. The binary exits non-zero unless every protocol
# reconciles; the greps additionally pin the report shape — it must
# parse as the expected JSON and show exactly four ce_exact:true entries
# (measured encryption counts equal to the predictions, not merely
# close).
profile_json=$(cargo run -q --release -p minshare-bench --bin bench_protocols -- --profile smoke)
echo "$profile_json" | grep -q '"profile": *"smoke"'
[ "$(echo "$profile_json" | grep -o '"ce_exact":true' | wc -l)" -eq 4 ]
# Multi-session daemon conformance: N concurrent sessions × seeded
# fault schedules through the real server path, asserting per-session
# isolation against solo baselines (answers, trace digests, byte
# counters), typed Busy shedding, and graceful-shutdown draining.
cargo test -q --test multisession
# Daemon smoke over real loopback TCP: one `minshare serve` process;
# two concurrent `minshare client` sessions (intersection + equijoin),
# then a *sharded size-variant* session (intersection-size over 3
# client-elected buckets), then a live `minshare stats` scrape whose
# counters must equal the leakage-model ground truth, then a fourth
# session to trip `--shutdown-after 4` — which doubles as the
# graceful-shutdown check: the daemon must drain and exit 0 by itself.
# A zero-capacity daemon afterwards proves typed Busy shedding.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
printf 'apple\text:apple\ngrape\text:grape\nmelon\text:melon\npeach\text:peach\n' > "$smoke_dir/server.txt"
printf 'grape\nmelon\npear\n' > "$smoke_dir/c1.txt"
printf 'apple\nkiwi\n' > "$smoke_dir/c2.txt"
printf 'grape\nmelon\npear\napple\n' > "$smoke_dir/c3.txt"
minshare=target/release/minshare
"$minshare" serve --listen 127.0.0.1:0 --values "$smoke_dir/server.txt" \
    --max-sessions 4 --shutdown-after 4 --seed 7 \
    --port-file "$smoke_dir/port.txt" > "$smoke_dir/serve.out" 2> "$smoke_dir/serve.err" &
serve_pid=$!
i=0
while [ ! -s "$smoke_dir/port.txt" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "verify: daemon never wrote its port" >&2; exit 1; }
    sleep 0.1
done
port=$(cat "$smoke_dir/port.txt")
"$minshare" client --connect "127.0.0.1:$port" --protocol intersection \
    --values "$smoke_dir/c1.txt" --seed 1 > "$smoke_dir/c1.out" 2>&1 &
c1_pid=$!
"$minshare" client --connect "127.0.0.1:$port" --protocol equijoin \
    --values "$smoke_dir/c2.txt" --seed 2 > "$smoke_dir/c2.out" 2>&1 &
c2_pid=$!
wait "$c1_pid"
wait "$c2_pid"
# Sharded size variant: the client elects 3 buckets, the daemon adopts
# them, and the answer is a bare cardinality (grape, melon, apple → 3).
"$minshare" client --connect "127.0.0.1:$port" --protocol intersection-size \
    --values "$smoke_dir/c3.txt" --seed 3 --shards 3 > "$smoke_dir/c3.out" 2>&1
grep -q '^3$' "$smoke_dir/c3.out"
grep -q 'status=ok' "$smoke_dir/c3.out"
# Live telemetry scrape. Ground truth from the harness: 3 sessions so
# far, each disclosing the daemon's 4 distinct values (3 × 4 = 12
# revealed), learning |V_R| = 3 + 2 + 4 = 9 distinct client values; the
# third connection (the sharded size variant, deterministic peer id 3)
# accounts for 4 of each; and the size-variant run left a populated
# latency histogram. The pause lets the last handler's telemetry tail
# land before the snapshot is taken.
sleep 1
"$minshare" stats "127.0.0.1:$port" > "$smoke_dir/stats.out" 2> /dev/null
grep -q '"stats_version":1' "$smoke_dir/stats.out"
grep -q '"server/session_open/events":3' "$smoke_dir/stats.out"
grep -q '"leakage/size_disclosure/revealed":12' "$smoke_dir/stats.out"
grep -q '"leakage/size_disclosure/learned":9' "$smoke_dir/stats.out"
grep -q '"leakage/size_disclosure/revealed{peer=3}":4' "$smoke_dir/stats.out"
grep -q '"leakage/size_disclosure/learned{peer=3}":4' "$smoke_dir/stats.out"
grep -q '"protocol/intersection-size/duration_ns":{"count":1' "$smoke_dir/stats.out"
# Fourth session outcome trips --shutdown-after 4: the daemon drains and
# exits 0 on its own — a hung or crashed daemon fails here.
"$minshare" client --connect "127.0.0.1:$port" --protocol intersection \
    --values "$smoke_dir/c1.txt" --seed 4 > "$smoke_dir/c4.out" 2>&1
wait "$serve_pid"
grep -q '^grape$' "$smoke_dir/c1.out"
grep -q '^melon$' "$smoke_dir/c1.out"
grep -q 'apple	ext:apple' "$smoke_dir/c2.out"
# Per-session reconciliation lines on both sides of the wire.
[ "$(grep -c 'status=ok' "$smoke_dir/serve.out")" -eq 4 ]
grep -q 'protocol=intersection' "$smoke_dir/serve.out"
grep -q 'protocol=equijoin' "$smoke_dir/serve.out"
grep -q 'protocol=intersection-size' "$smoke_dir/serve.out"
grep -q 'status=ok' "$smoke_dir/c1.out"
grep -q 'status=ok' "$smoke_dir/c2.out"
grep -q 'status=ok' "$smoke_dir/c4.out"
# Typed Busy load-shedding: a zero-capacity daemon refuses the session
# with the typed error (the client says "busy", not a protocol failure)
# and the rejection itself counts as the outcome that shuts it down.
rm -f "$smoke_dir/port.txt"
"$minshare" serve --listen 127.0.0.1:0 --values "$smoke_dir/server.txt" \
    --max-sessions 0 --shutdown-after 1 \
    --port-file "$smoke_dir/port.txt" > /dev/null 2>&1 &
busy_pid=$!
i=0
while [ ! -s "$smoke_dir/port.txt" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "verify: busy daemon never wrote its port" >&2; exit 1; }
    sleep 0.1
done
port=$(cat "$smoke_dir/port.txt")
if "$minshare" client --connect "127.0.0.1:$port" --protocol intersection \
    --values "$smoke_dir/c1.txt" > "$smoke_dir/busy.out" 2>&1; then
    echo "verify: zero-capacity daemon admitted a session" >&2
    exit 1
fi
grep -q 'busy' "$smoke_dir/busy.out"
wait "$busy_pid"
# Bounded-memory smoke: a sharded intersection at 10^5 elements under a
# deliberately tiny 64 KiB sort budget. The binary exits non-zero unless
# the answer is exact, the per-bucket trace events reconcile with the
# §6.1 formulas (reconcile_sharded), the external sorter genuinely
# spilled to disk (--require-spill), and peak RSS stayed under the cap —
# i.e. memory is bounded by the bucket working set, not the input size.
cargo run -q --release -p minshare-bench --bin shard_smoke -- \
    --elements 100000 --shards 16 --mem-budget 65536 --group-bits 64 \
    --require-spill --rss-cap-kb 131072 > /dev/null
# Smoke-run the perf suite (one pass per routine, no timing loops) so a
# bench that stops compiling or panics fails the gate.
cargo bench -q -p minshare-bench --bench pipeline -- --test
# Perf-regression smoke: re-measure the end-to-end rows and compare the
# optimized/serial ratios against the committed BENCH_protocols.json
# (10% tolerance; ratios, not wall times, so background load and host
# speed cancel out).
bash tools/bench.sh --check
