#!/usr/bin/env sh
# Tier-1 verification gate: build, test, then lint with the repo-local
# static analyzer against the checked-in findings baseline.
#
# Run from anywhere; operates on the repo this script lives in.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

cargo build --release
cargo test -q
cargo run -p minshare-analyzer -- --baseline analyzer.baseline.toml
# Smoke-run the perf suite (one pass per routine, no timing loops) so a
# bench that stops compiling or panics fails the gate.
cargo bench -q -p minshare-bench --bench pipeline -- --test
